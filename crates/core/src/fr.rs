//! The exact filtering–refinement engine (Section 5).

use crate::exec::Executor;
use crate::obs::{Counter, Histogram, ObsReport};
use crate::sub::{AnswerDelta, SubId, Subscription, SubscriptionTable};
use crate::wal::{open_checkpoint, seal_checkpoint, RecoverError};
use crate::{
    classify_cells, dh_optimistic, refine_region, CellClass, Classification, DenseThreshold,
    PdrQuery, RangeIndex,
};
use pdr_geometry::{CellId, GridSpec, Point, Rect, RegionSet};
use pdr_histogram::{DensityHistogram, PrefixSum2d};
use pdr_mobject::{MotionState, ObjectId, TimeHorizon, Timestamp, Update, UpdateKind};
use pdr_storage::{
    ByteReader, ByteWriter, CostModel, FaultPlan, FaultStats, IoStats, StorageError,
};
use pdr_tprtree::{TprConfig, TprTree};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, RwLock};
use std::time::{Duration, Instant};

/// Configuration of an [`FrEngine`].
#[derive(Clone, Copy, Debug)]
pub struct FrConfig {
    /// Side length `L` of the monitored square region.
    pub extent: f64,
    /// Histogram cells per side (`m`; paper default m² = 10 000).
    pub m: u32,
    /// Time horizon `U / W / H`.
    pub horizon: TimeHorizon,
    /// TPR-tree buffer pool size in pages (paper: 10 % of the data).
    pub buffer_pages: usize,
    /// Refinement parallelism width; `0` means one chunk per available
    /// core. Candidate cells are split into this many chunks and run as
    /// one task group on the shared [`Executor`] (chunks execute on the
    /// pool's workers plus the querying thread — no threads are spawned
    /// per query); the answer is bit-identical for every width and
    /// every pool size.
    pub threads: usize,
}

impl FrConfig {
    /// The paper's default setup on the 1000-mile plane.
    pub fn paper_default() -> Self {
        FrConfig {
            extent: 1000.0,
            m: 100,
            horizon: TimeHorizon::PAPER_DEFAULT,
            buffer_pages: 1024,
            threads: 0,
        }
    }
}

/// Answer and cost breakdown of one FR query.
#[derive(Clone, Debug)]
pub struct FrAnswer {
    /// The exact dense region.
    pub regions: RegionSet,
    /// Cells proven dense by the filter (no refinement needed).
    pub accepts: usize,
    /// Cells proven sparse by the filter.
    pub rejects: usize,
    /// Cells refined by range query + plane sweep.
    pub candidates: usize,
    /// Objects retrieved from the TPR-tree across all candidate cells.
    pub objects_retrieved: usize,
    /// Buffer-pool I/O incurred by the refinement range queries.
    pub io: IoStats,
    /// Wall-clock CPU time of the whole query.
    pub cpu: Duration,
}

impl FrAnswer {
    /// Total query cost in milliseconds under `model`:
    /// `CPU + random-I/O charge` (the paper's Figure 10 metric).
    pub fn total_ms(&self, model: &CostModel) -> f64 {
        self.cpu.as_secs_f64() * 1e3 + model.io_ms(&self.io)
    }
}

/// Counters for the per-timestamp classification cache: how many times
/// the engine actually rebuilt derived state (as opposed to serving it
/// from cache). Exposed so tests can assert cache behavior — e.g. an
/// interval query over `n` distinct timestamps performs exactly `n`
/// prefix-sum builds, not one per snapshot re-visit.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FrCacheCounters {
    /// `prefix_sums_at` invocations that hit the histogram.
    pub sums_recomputes: u64,
    /// `classify_cells` invocations that walked all `m²` cells.
    pub classify_recomputes: u64,
}

/// Derived per-timestamp state, valid for exactly one histogram epoch:
/// any [`DensityHistogram::apply`] or advance bumps the epoch and the
/// next lookup drops everything. Prefix sums depend only on `q_t`;
/// classifications additionally depend on the query's `(ρ, l)` (keyed
/// by their bit patterns, so `0.05` and `0.05000…1` are distinct).
struct ClassificationCache {
    epoch: u64,
    sums: HashMap<Timestamp, Arc<PrefixSum2d>>,
    classes: HashMap<(Timestamp, u64, u64), Arc<Classification>>,
    counters: FrCacheCounters,
}

/// Bound on distinct `(q_t, ρ, l)` classification entries kept; beyond
/// this the map is cleared (ad-hoc query mixes should not grow memory
/// without bound, while any realistic monitoring loop stays far below).
const MAX_CLASS_ENTRIES: usize = 256;

impl ClassificationCache {
    fn new() -> Self {
        ClassificationCache {
            epoch: 0,
            sums: HashMap::new(),
            classes: HashMap::new(),
            counters: FrCacheCounters::default(),
        }
    }

    /// Drops every cached entry when the histogram has mutated since
    /// the entries were built. Counters survive invalidation.
    fn sync_epoch(&mut self, epoch: u64) {
        if self.epoch != epoch {
            self.sums.clear();
            self.classes.clear();
            self.epoch = epoch;
        }
    }
}

/// FR-side instrumentation: per-stage latency (filter classification,
/// per-cell range queries, plane sweeps, final merge/coalesce) and cell
/// accounting. Histograms record through `&self` with atomics, so the
/// refinement workers — which share the engine across scoped threads —
/// feed the same histograms without synchronization beyond the atomic
/// adds. Recording never changes any answer.
#[derive(Debug, Default)]
struct FrObs {
    enabled: AtomicBool,
    queries: Counter,
    candidate_cells: Counter,
    accepted_cells: Counter,
    rejected_cells: Counter,
    objects_retrieved: Counter,
    /// Capacity-growth events of the reused refinement buffers (hit and
    /// position scratch). The hot loop allocates only when a cell yields
    /// more objects than any earlier cell in the chunk, so this stays
    /// logarithmic in the largest cell population — not linear in the
    /// number of candidate cells (the old code paid two fresh vectors
    /// per cell).
    refine_allocs: Counter,
    /// Candidate cells actually re-refined by subscription maintenance
    /// (the dirty set after dilation — the work the incremental path
    /// could not reuse from its group cache).
    dirty_cells: Counter,
    /// Subscription patches emitted by maintenance passes.
    deltas_emitted: Counter,
    classify_time: Histogram,
    range_time: Histogram,
    sweep_time: Histogram,
    merge_time: Histogram,
    query_time: Histogram,
    /// Wall-clock latency of whole subscription-maintenance passes.
    sub_latency: Histogram,
}

impl FrObs {
    fn on() -> Self {
        FrObs {
            enabled: AtomicBool::new(true),
            ..FrObs::default()
        }
    }

    fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    fn report(&self) -> ObsReport {
        ObsReport {
            counters: vec![
                ("queries", self.queries.get()),
                ("candidate_cells", self.candidate_cells.get()),
                ("accepted_cells", self.accepted_cells.get()),
                ("rejected_cells", self.rejected_cells.get()),
                ("objects_retrieved", self.objects_retrieved.get()),
                ("refine_allocs", self.refine_allocs.get()),
                ("dirty_cells", self.dirty_cells.get()),
                ("deltas_emitted", self.deltas_emitted.get()),
            ],
            stages: vec![
                ("classify", self.classify_time.snapshot()),
                ("range", self.range_time.snapshot()),
                ("sweep", self.sweep_time.snapshot()),
                ("merge", self.merge_time.snapshot()),
                ("query", self.query_time.snapshot()),
                ("sub_latency", self.sub_latency.snapshot()),
            ],
        }
    }
}

/// How many missed deletes are reported on stderr before the engine
/// goes quiet and only counts (the counter in
/// [`missed_deletes`](FrEngine::missed_deletes) never stops).
const MISSED_DELETE_LOG_LIMIT: u64 = 8;

/// The exact PDR query engine: density histogram for filtering, a
/// pluggable [`RangeIndex`] (TPR-tree by default) plus plane sweep for
/// refinement.
///
/// Queries take `&self`: the per-timestamp classification cache lives
/// behind an `RwLock`, so any number of threads can query one shared
/// engine concurrently (cache hits take the read lock only; the first
/// visit of a timestamp computes under the write lock, exactly once).
/// Updates still take `&mut self`, which statically excludes them from
/// overlapping with in-flight queries.
pub struct FrEngine<I: RangeIndex = TprTree> {
    cfg: FrConfig,
    histogram: DensityHistogram,
    /// The refinement index, shared with the executor's `'static` task
    /// closures during a query's refinement fan-out. Outside a query
    /// the engine holds the only strong reference ([`Executor::scope`]
    /// drops every task clone before returning), so `&mut self` paths
    /// mutate it through [`Arc::get_mut`].
    tree: Arc<I>,
    /// Shadow of the refinement index's contents (the ObjectTable view
    /// of this engine) — what a checkpoint serializes, and what a
    /// restore bulk-loads the rebuilt index from.
    motions: HashMap<ObjectId, MotionState>,
    /// The timestamp the refinement index was anchored at; restores
    /// re-anchor the rebuilt index here so extrapolation arithmetic —
    /// and therefore every query answer — is bit-identical.
    t_start: Timestamp,
    cache: RwLock<ClassificationCache>,
    updates_applied: u64,
    missed_deletes: u64,
    rejected_updates: u64,
    obs: Arc<FrObs>,
    /// Standing subscriptions (engine-plane state: never checkpointed,
    /// preserved across restores so maintenance emits catch-up deltas).
    subs: SubscriptionTable,
    /// Incremental-maintenance cache, one entry per distinct
    /// `(ρ, l, q_t)` group of standing queries (see [`GroupCache`]).
    sub_cache: HashMap<(u64, u64, Timestamp), GroupCache>,
}

/// Cached incremental-maintenance state of one standing-query group:
/// the histogram epoch it was computed at, every candidate cell's
/// refined rectangles (keyed by linear cell index), and the assembled
/// canonical full-domain answer. A maintenance pass at an unchanged
/// epoch reuses `full` outright; otherwise only candidate cells inside
/// the dilated dirty set are re-refined and the rest reuse their cached
/// rectangles bit-for-bit.
struct GroupCache {
    epoch: u64,
    cell_rects: HashMap<usize, Vec<Rect>>,
    full: RegionSet,
}

impl FrEngine<TprTree> {
    /// Creates an empty engine whose horizon starts at `t_start`,
    /// refining through the paper's TPR-tree.
    pub fn new(cfg: FrConfig, t_start: Timestamp) -> Self {
        let tree = TprTree::new(
            TprConfig {
                buffer_pages: cfg.buffer_pages,
                min_fill_ratio: 0.4,
                horizon: cfg.horizon.h() as f64,
                integral_metrics: true,
            },
            t_start,
        );
        FrEngine::with_index(cfg, tree, t_start)
    }
}

impl<I: RangeIndex> FrEngine<I> {
    /// Creates an engine refining through any [`RangeIndex`] — the
    /// paper's "we can adopt [other indexes] in our framework".
    ///
    /// # Panics
    ///
    /// Panics when `index` is not empty.
    pub fn with_index(cfg: FrConfig, index: I, t_start: Timestamp) -> Self {
        assert!(index.is_empty(), "refinement index must start empty");
        let histogram = DensityHistogram::new(cfg.extent, cfg.m, cfg.horizon, t_start);
        FrEngine {
            cfg,
            histogram,
            tree: Arc::new(index),
            motions: HashMap::new(),
            t_start,
            cache: RwLock::new(ClassificationCache::new()),
            updates_applied: 0,
            missed_deletes: 0,
            rejected_updates: 0,
            obs: Arc::new(FrObs::on()),
            subs: SubscriptionTable::new(),
            sub_cache: HashMap::new(),
        }
    }

    /// Restores an engine from a checkpointed histogram plus the
    /// current motion table: the histogram (which would otherwise take
    /// up to `U + W` timestamps to refill) comes from
    /// [`DensityHistogram::serialize`], while the refinement index is
    /// rebuilt from the live motions — the standard restart recipe,
    /// since indexes rebuild in one bulk load but horizon counters
    /// cannot be reconstructed without replaying history.
    ///
    /// # Panics
    ///
    /// Panics when the histogram's geometry or horizon disagrees with
    /// `cfg`, or when `index` is not empty.
    pub fn restore(
        cfg: FrConfig,
        histogram: DensityHistogram,
        mut index: I,
        objects: &[(ObjectId, MotionState)],
    ) -> Self {
        assert!(index.is_empty(), "refinement index must start empty");
        assert_eq!(
            histogram.grid().cells_per_side(),
            cfg.m,
            "histogram grid disagrees with config"
        );
        assert_eq!(
            histogram.horizon(),
            cfg.horizon,
            "histogram horizon disagrees with config"
        );
        let t_now = histogram.t_base();
        index.load(objects, t_now);
        FrEngine {
            cfg,
            histogram,
            tree: Arc::new(index),
            motions: objects.iter().copied().collect(),
            t_start: t_now,
            cache: RwLock::new(ClassificationCache::new()),
            updates_applied: 0,
            missed_deletes: 0,
            rejected_updates: 0,
            obs: Arc::new(FrObs::on()),
            subs: SubscriptionTable::new(),
            sub_cache: HashMap::new(),
        }
    }

    /// Snapshot of the engine's instrumentation (stage latencies, cell
    /// accounting). The `queries` counter always runs; every other
    /// value stays zero while observability is disabled.
    pub fn obs_report(&self) -> ObsReport {
        self.obs.report()
    }

    /// Snapshot queries answered over the engine's lifetime.
    pub fn queries_served(&self) -> u64 {
        self.obs.queries.get()
    }

    /// Turns instrumentation on or off (on by default). Disabling skips
    /// even the clock reads; answers are identical either way.
    pub fn set_obs_enabled(&mut self, on: bool) {
        self.obs.enabled.store(on, Ordering::Relaxed);
    }

    /// The engine configuration.
    pub fn config(&self) -> &FrConfig {
        &self.cfg
    }

    /// The underlying density histogram (for DH-only baselines and
    /// memory accounting).
    pub fn histogram(&self) -> &DensityHistogram {
        &self.histogram
    }

    /// The underlying refinement index.
    pub fn tree(&mut self) -> &mut I {
        self.tree_mut()
    }

    /// Exclusive access to the shared refinement index. Sound because
    /// every query's [`Executor::scope`] reclaims its task closures —
    /// and their `Arc` clones — before returning, and `&mut self`
    /// excludes in-flight queries; a failure here would mean the
    /// executor leaked a task.
    fn tree_mut(&mut self) -> &mut I {
        Arc::get_mut(&mut self.tree).expect("refinement index aliased outside a query")
    }

    /// Number of indexed objects.
    pub fn len(&self) -> usize {
        self.tree.len()
    }

    /// `true` when no objects are indexed.
    pub fn is_empty(&self) -> bool {
        self.tree.is_empty()
    }

    /// Loads an initial population in bulk (histogram via protocol
    /// inserts, tree via STR packing). The engine must be empty.
    pub fn bulk_load(&mut self, objects: &[(ObjectId, MotionState)], t_now: Timestamp) {
        assert!(self.is_empty(), "bulk_load requires an empty engine");
        for (id, m) in objects {
            self.histogram.apply(&Update::insert(*id, t_now, *m));
            // Store exactly what the index receives (the *unrebased*
            // motion), so a restore rebuilds bit-identical leaf entries.
            self.motions.insert(*id, *m);
        }
        self.tree_mut().load(objects, t_now);
        self.updates_applied += objects.len() as u64;
    }

    /// Applies one protocol update to both structures.
    ///
    /// A deletion whose object is missing from the refinement index is
    /// a tree-vs-histogram desync anomaly. It is *counted* (see
    /// [`missed_deletes`](Self::missed_deletes) and `EngineStats`) and
    /// logged for the first few occurrences, never silently dropped —
    /// release builds previously lost the signal entirely behind a
    /// `debug_assert!`.
    pub fn apply(&mut self, update: &Update) {
        self.updates_applied += 1;
        self.histogram.apply(update);
        match update.kind {
            UpdateKind::Insert { motion } => {
                self.motions.insert(update.id, motion);
                self.tree_mut().insert(update.id, &motion, update.t_now)
            }
            UpdateKind::Delete { .. } => {
                self.motions.remove(&update.id);
                let removed = self.tree_mut().remove(update.id);
                if !removed {
                    self.missed_deletes += 1;
                    if self.missed_deletes <= MISSED_DELETE_LOG_LIMIT {
                        eprintln!(
                            "pdr-core[fr]: anomaly #{}: delete of unindexed object {:?} at t={} \
                             (histogram and refinement index may now disagree)",
                            self.missed_deletes, update.id, update.t_now
                        );
                    }
                }
            }
        }
    }

    /// Advances current time, recycling expired histogram slots.
    pub fn advance_to(&mut self, t_now: Timestamp) {
        self.histogram.advance_to(t_now);
    }

    /// Deletions that did not find their object in the refinement index
    /// (cumulative). Nonzero values indicate an update-protocol
    /// violation upstream; the histogram side of such a delete was
    /// still applied, so answers may under-count until the motion ages
    /// out of the horizon.
    pub fn missed_deletes(&self) -> u64 {
        self.missed_deletes
    }

    /// Protocol updates applied so far (inserts + deletes, including
    /// the bulk-load inserts).
    pub fn updates_applied(&self) -> u64 {
        self.updates_applied
    }

    /// Reports rejected by input screening (non-finite motions,
    /// duplicate ids in one batch, timestamps outside the horizon),
    /// counted by the batch ingest path instead of asserting.
    pub fn rejected_updates(&self) -> u64 {
        self.rejected_updates
    }

    /// Adds `n` to the rejected-reports counter (called by the batch
    /// ingest path after screening).
    pub fn note_rejected(&mut self, n: u64) {
        self.rejected_updates += n;
    }

    /// Cumulative cache-miss counters of the classification cache.
    pub fn cache_counters(&self) -> FrCacheCounters {
        self.cache.read().expect("cache lock poisoned").counters
    }

    /// Filter-step classification for `q`, cached per histogram epoch
    /// and `(q_t, ρ, l)`; prefix sums are cached per `(epoch, q_t)`.
    ///
    /// Double-checked locking: the fast path takes the read lock only,
    /// so concurrent cache hits never serialize. On a miss the write
    /// lock is taken and the cache re-checked before computing, which
    /// guarantees **at most one** prefix-sum build and one
    /// classification walk per distinct key, no matter how many threads
    /// race on the first visit. Updates go through `&mut self`, so the
    /// histogram cannot mutate (and the epoch cannot move) while any
    /// query holds `&self`.
    fn cached_classification(&self, q: &PdrQuery) -> Arc<Classification> {
        let epoch = self.histogram.epoch();
        let key = (q.q_t, q.rho.to_bits(), q.l.to_bits());
        {
            let cache = self.cache.read().expect("cache lock poisoned");
            if cache.epoch == epoch {
                if let Some(c) = cache.classes.get(&key) {
                    return Arc::clone(c);
                }
            }
        }
        let mut cache = self.cache.write().expect("cache lock poisoned");
        cache.sync_epoch(epoch);
        if let Some(c) = cache.classes.get(&key) {
            return Arc::clone(c);
        }
        let sums = match cache.sums.get(&q.q_t) {
            Some(s) => Arc::clone(s),
            None => {
                cache.counters.sums_recomputes += 1;
                let s = Arc::new(self.histogram.prefix_sums_at(q.q_t));
                cache.sums.insert(q.q_t, Arc::clone(&s));
                s
            }
        };
        cache.counters.classify_recomputes += 1;
        let cls = Arc::new(classify_cells(self.histogram.grid(), &sums, q));
        if cache.classes.len() >= MAX_CLASS_ENTRIES {
            cache.classes.clear();
        }
        cache.classes.insert(key, Arc::clone(&cls));
        cls
    }

    /// Number of refinement workers for a query with `candidates`
    /// candidate cells.
    fn worker_count(&self, candidates: usize) -> usize {
        let configured = if self.cfg.threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            self.cfg.threads
        };
        configured.min(candidates).max(1)
    }

    /// Evaluates a snapshot PDR query exactly (Algorithms 1–3).
    ///
    /// The filter step is served from the per-timestamp classification
    /// cache when the histogram has not mutated since it was built; the
    /// refinement step fans candidate cells out across
    /// [`FrConfig::threads`] workers. Chunks are contiguous runs of the
    /// row-major candidate list and are merged back in chunk order, so
    /// the rectangle sequence — and therefore the canonical answer — is
    /// identical for every worker count.
    ///
    /// Takes `&self`: any number of threads may query one shared
    /// engine concurrently, and every answer is bit-identical to the
    /// single-threaded result (the cache serves clones of immutable
    /// `Arc`ed state; refinement chunking is deterministic).
    ///
    /// # Panics
    ///
    /// Panics when `q.q_t` is outside the current horizon window or the
    /// histogram grid is too coarse for `q.l` (cell edge must be ≤ l/2),
    /// and on storage faults — callers that want to handle faults use
    /// [`try_query`](FrEngine::try_query).
    pub fn query(&self, q: &PdrQuery) -> FrAnswer {
        self.try_query(q)
            .unwrap_or_else(|e| panic!("unhandled storage fault: {e}"))
    }

    /// Fallible [`query`](FrEngine::query): refinement range queries go
    /// through the index's fallible read path, so an injected or real
    /// storage fault surfaces as a typed [`StorageError`] instead of a
    /// panic. The filter step never touches the disk (the histogram is
    /// in memory), so errors can only originate in refinement.
    pub fn try_query(&self, q: &PdrQuery) -> Result<FrAnswer, StorageError> {
        let enabled = self.obs.enabled();
        let _qt = self.obs.query_time.timer(enabled);
        let start = Instant::now();
        let grid = self.histogram.grid();
        let cls = {
            let _t = self.obs.classify_time.timer(enabled);
            self.cached_classification(q)
        };
        let threshold = DenseThreshold::of(q);

        let mut regions = RegionSet::new();
        for cell in cls.cells_of(CellClass::Accept) {
            regions.push(grid.cell_rect(cell));
        }

        self.tree.reset_io_stats();
        let candidates: Vec<CellId> = cls.cells_of(CellClass::Candidate).collect();
        let workers = self.worker_count(candidates.len());
        let obs = enabled.then_some(&*self.obs);
        let (rects, objects_retrieved, io) = if workers <= 1 {
            refine_chunk(&*self.tree, grid, &candidates, q, threshold, obs)?
        } else {
            // Chunking is a pure function of (workers, candidates), and
            // the executor returns chunk results in index order, so the
            // merged rectangle sequence is identical at every pool size
            // — including zero workers, where the scope runs inline.
            let chunk_len = candidates.len().div_ceil(workers);
            let chunks = candidates.len().div_ceil(chunk_len);
            let tree = Arc::clone(&self.tree);
            let obs = Arc::clone(&self.obs);
            let cells = Arc::new(candidates);
            let q = *q;
            let per_chunk: Vec<RefineResult> = Executor::global().scope(chunks, move |k| {
                let lo = k * chunk_len;
                let hi = (lo + chunk_len).min(cells.len());
                let chunk_obs = obs.enabled().then_some(&*obs);
                refine_chunk(&*tree, grid, &cells[lo..hi], &q, threshold, chunk_obs)
            });
            let mut rects = Vec::new();
            let mut retrieved = 0usize;
            let mut io = IoStats::default();
            for chunk in per_chunk {
                let (r, n, i) = chunk?;
                rects.extend(r);
                retrieved += n;
                io += i;
            }
            (rects, retrieved, io)
        };
        {
            let _t = self.obs.merge_time.timer(enabled);
            for r in rects {
                regions.push(r);
            }
            // Canonical (exact) compaction, not the ε-tolerant coalesce:
            // the exact answer must be a pure function of the dense point
            // set so that a sharded plane reproduces it rect-for-rect.
            regions.canonicalize();
        }
        self.obs.queries.inc();
        if enabled {
            self.obs.accepted_cells.add(cls.accept_count() as u64);
            self.obs.rejected_cells.add(cls.reject_count() as u64);
            self.obs.candidate_cells.add(cls.candidate_count() as u64);
            self.obs.objects_retrieved.add(objects_retrieved as u64);
        }
        Ok(FrAnswer {
            regions,
            accepts: cls.accept_count(),
            rejects: cls.reject_count(),
            candidates: cls.candidate_count(),
            objects_retrieved,
            io,
            cpu: start.elapsed(),
        })
    }

    /// Filter-only degraded answer for `q`: the optimistic DH answer
    /// (accept ∪ candidate cells, coalesced) computed purely from the
    /// in-memory histogram. Never touches the index, so it succeeds even
    /// when the storage plane is persistently failing. The answer is a
    /// superset of the exact one (no false negatives) but may include
    /// candidate cells that refinement would have trimmed.
    pub fn degraded_query(&self, q: &PdrQuery) -> FrAnswer {
        let start = Instant::now();
        let cls = self.cached_classification(q);
        let regions = dh_optimistic(&cls);
        FrAnswer {
            regions,
            accepts: cls.accept_count(),
            rejects: cls.reject_count(),
            candidates: cls.candidate_count(),
            objects_retrieved: 0,
            io: IoStats::default(),
            cpu: start.elapsed(),
        }
    }

    /// Interval PDR query (Definition 5): the union of snapshot answers
    /// over `q_t ∈ [from, to]`.
    ///
    /// Snapshot rectangles accumulate in one reused scratch buffer and
    /// are folded into the result with an incremental coalesce every
    /// [`INTERVAL_COALESCE_EVERY`] timestamps, keeping the working set
    /// proportional to a few snapshots instead of the whole interval.
    /// The per-timestamp classification cache makes the repeated filter
    /// passes O(1) after the first visit of each timestamp.
    pub fn interval_query(&self, rho: f64, l: f64, from: Timestamp, to: Timestamp) -> RegionSet {
        assert!(from <= to, "empty interval");
        let mut out = RegionSet::new();
        let mut scratch: Vec<Rect> = Vec::new();
        let mut pending = 0u32;
        for t in from..=to {
            let ans = self.query(&PdrQuery::new(rho, l, t));
            scratch.extend_from_slice(ans.regions.rects());
            pending += 1;
            if pending == INTERVAL_COALESCE_EVERY {
                for r in scratch.drain(..) {
                    out.push(r);
                }
                out.canonicalize();
                pending = 0;
            }
        }
        for r in scratch.drain(..) {
            out.push(r);
        }
        out.canonicalize();
        out
    }

    /// Serializes the engine's durable state into a sealed, checksummed
    /// checkpoint: the density histogram, the horizon anchor, the
    /// update counters, and the motion table *exactly as the index
    /// received it* (unrebased reports), so
    /// [`restore_from_bytes`](FrEngine::restore_from_bytes) rebuilds
    /// bit-identical leaf entries and therefore bit-identical answers.
    pub fn checkpoint_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_bytes(b"FRCK");
        w.put_u16(2);
        w.put_u64(self.t_start);
        w.put_u64(self.updates_applied);
        w.put_u64(self.missed_deletes);
        w.put_u64(self.rejected_updates);
        let mut motions: Vec<(u64, MotionState)> =
            self.motions.iter().map(|(id, m)| (id.0, *m)).collect();
        motions.sort_unstable_by_key(|(id, _)| *id);
        crate::colcodec::put_motion_table(&mut w, &motions);
        // Histogram bytes go last: they are self-delimiting via their
        // own header, so the reader just hands over the remainder.
        w.put_bytes(&self.histogram.serialize());
        seal_checkpoint(&w.into_bytes())
    }

    /// Restores the engine in place from [`checkpoint_bytes`]
    /// (FrEngine::checkpoint_bytes) output: the histogram is swapped
    /// in, the refinement index is reset onto a *fresh* simulated
    /// device (discarding any fault plan along with the failed one) and
    /// re-loaded from the checkpointed motion table, and the
    /// classification cache is dropped. Afterwards every query answer
    /// is bit-identical to the pre-crash engine's.
    pub fn restore_from_bytes(&mut self, bytes: &[u8]) -> Result<(), RecoverError> {
        let payload = open_checkpoint(bytes)?;
        let mut r = ByteReader::new(payload);
        r.expect_magic(b"FRCK")?;
        let version = r.get_u16()?;
        if version != 1 && version != 2 {
            return Err(RecoverError::Unsupported);
        }
        let t_start = r.get_u64()?;
        let updates_applied = r.get_u64()?;
        let missed_deletes = r.get_u64()?;
        let rejected_updates = r.get_u64()?;
        let mut motions: Vec<(ObjectId, MotionState)>;
        if version == 1 {
            // Row-major legacy layout: one fixed-width record per motion.
            let count = r.get_u64()? as usize;
            motions = Vec::with_capacity(count);
            for _ in 0..count {
                let id = ObjectId(r.get_u64()?);
                let origin = Point::new(r.get_f64()?, r.get_f64()?);
                let velocity = Point::new(r.get_f64()?, r.get_f64()?);
                let t_ref = r.get_u64()?;
                let m = MotionState::try_new(id, origin, velocity, t_ref)
                    .map_err(|_| RecoverError::Mismatch("non-finite motion in checkpoint"))?;
                motions.push((id, m));
            }
        } else {
            // Columnar layout: raw rows come back bit-exact; re-validate
            // finiteness here since the codec does not.
            let rows = crate::colcodec::get_motion_table(&mut r)?;
            motions = Vec::with_capacity(rows.len());
            for (id, m) in rows {
                let id = ObjectId(id);
                let m = MotionState::try_new(id, m.origin, m.velocity, m.t_ref)
                    .map_err(|_| RecoverError::Mismatch("non-finite motion in checkpoint"))?;
                motions.push((id, m));
            }
        }
        let hist_bytes = &payload[payload.len() - r.remaining()..];
        let histogram = DensityHistogram::deserialize(hist_bytes)?;
        if histogram.grid().cells_per_side() != self.cfg.m {
            return Err(RecoverError::Mismatch(
                "histogram grid disagrees with config",
            ));
        }
        if histogram.horizon() != self.cfg.horizon {
            return Err(RecoverError::Mismatch(
                "histogram horizon disagrees with config",
            ));
        }
        let tree = self.tree_mut();
        tree.reset(t_start);
        tree.load(&motions, histogram.t_base());
        self.histogram = histogram;
        self.motions = motions.into_iter().collect();
        self.t_start = t_start;
        self.updates_applied = updates_applied;
        self.missed_deletes = missed_deletes;
        self.rejected_updates = rejected_updates;
        self.cache = RwLock::new(ClassificationCache::new());
        // The restored histogram restarts its epoch at zero, so cached
        // group evaluations are meaningless; subscriptions themselves
        // survive (the next maintenance recomputes and emits exact
        // catch-up deltas against their preserved answers).
        self.sub_cache.clear();
        Ok(())
    }

    /// Installs a fault-injection plan beneath the refinement index's
    /// storage (filter-step answers are in-memory and never fault).
    pub fn set_fault_plan(&self, plan: FaultPlan) {
        self.tree.set_fault_plan(plan);
    }

    /// Injected-fault / checksum-failure counters of the refinement
    /// index's storage plane.
    pub fn fault_stats(&self) -> FaultStats {
        self.tree.fault_stats()
    }

    /// The standing-subscription registry.
    pub fn subs(&self) -> &SubscriptionTable {
        &self.subs
    }

    /// Mutable access to the standing-subscription registry.
    pub fn subs_mut(&mut self) -> &mut SubscriptionTable {
        &mut self.subs
    }

    /// Incremental subscription maintenance (the tentpole path).
    ///
    /// Standing queries are grouped by `(ρ, l, resolved q_t)` and each
    /// group is evaluated once. Per group, the histogram's dirty-cell
    /// marks ([`DensityHistogram::dirty_cells_since`]) identify exactly
    /// the cells whose classification or refinement can differ from the
    /// group's cached evaluation; only candidate cells inside the dirty
    /// set (dilated by the query's cell reach) are re-refined — through
    /// the same scratch/refinement machinery and executor fan-out as a
    /// from-scratch query — while every clean candidate reuses its
    /// cached rectangles bit-for-bit. The assembled answer is
    /// canonicalized, so each subscription's committed answer — and
    /// therefore every emitted [`AnswerDelta`] — is bit-identical to
    /// clipping a from-scratch [`query`](Self::query).
    ///
    /// On a storage fault the affected group's subscriptions are marked
    /// degraded (their previous answers stay authoritative but stale)
    /// and the cache entry is kept so the next pass retries.
    pub fn maintain_subs(&mut self, now: Timestamp) -> Vec<AnswerDelta> {
        if self.subs.is_empty() {
            self.sub_cache.clear();
            return Vec::new();
        }
        let enabled = self.obs.enabled();
        let obs = Arc::clone(&self.obs);
        let _t = obs.sub_latency.timer(enabled);
        let mut groups: BTreeMap<(u64, u64, Timestamp), Vec<SubId>> = BTreeMap::new();
        let specs: Vec<Subscription> = self.subs.subs().copied().collect();
        for s in &specs {
            let q_t = s.policy.resolve(now);
            groups
                .entry((s.rho.to_bits(), s.l.to_bits(), q_t))
                .or_default()
                .push(s.id);
        }
        // Drop cache entries of groups no subscription targets anymore
        // (unregistered, or a sliding q_t moved on).
        self.sub_cache.retain(|k, _| groups.contains_key(k));
        let mut deltas = Vec::new();
        for (key, ids) in groups {
            let q = PdrQuery::new(f64::from_bits(key.0), f64::from_bits(key.1), key.2);
            match self.eval_sub_group(&q) {
                Ok(full) => {
                    for id in ids {
                        let region = self.subs.get(id).expect("grouped sub vanished").region;
                        let clipped = SubscriptionTable::clip(&full, region);
                        if let Some(d) = self.subs.commit(id, clipped, now, key.2) {
                            deltas.push(d);
                        }
                    }
                }
                Err(_) => {
                    for id in ids {
                        if let Some(d) = self.subs.mark_degraded(id, now, key.2) {
                            deltas.push(d);
                        }
                    }
                }
            }
        }
        if enabled {
            obs.deltas_emitted.add(deltas.len() as u64);
        }
        deltas
    }

    /// Evaluates one standing-query group's full-domain canonical
    /// answer through the epoch-tagged incremental cache.
    fn eval_sub_group(&mut self, q: &PdrQuery) -> Result<RegionSet, StorageError> {
        let key = (q.rho.to_bits(), q.l.to_bits(), q.q_t);
        let epoch = self.histogram.epoch();
        if let Some(c) = self.sub_cache.get(&key) {
            if c.epoch == epoch {
                return Ok(c.full.clone());
            }
        }
        let enabled = self.obs.enabled();
        let grid = self.histogram.grid();
        let cls = self.cached_classification(q);
        let threshold = DenseThreshold::of(q);
        let old = self.sub_cache.remove(&key);
        // Cells whose classification or refinement may differ from the
        // cached evaluation: everything within Chebyshev distance
        // η_h + 1 of a cell some update dirtied since the cache epoch
        // (η_h = ⌈l / 2l_c⌉ covers both the classification windows and
        // the l/2 range-query reach; +1 absorbs the clamped marking of
        // out-of-grid trajectory segments).
        let dirty_mask: Option<Vec<bool>> = old.as_ref().map(|c| {
            let m = grid.cells_per_side() as i64;
            let mut mask = vec![false; grid.cell_count()];
            let eta = (q.l / (2.0 * grid.cell_edge())).ceil() as i64 + 1;
            for cell in self.histogram.dirty_cells_since(c.epoch) {
                let (col, row) = (cell.col as i64, cell.row as i64);
                for r in (row - eta).max(0)..=(row + eta).min(m - 1) {
                    for c_ in (col - eta).max(0)..=(col + eta).min(m - 1) {
                        mask[(r * m + c_) as usize] = true;
                    }
                }
            }
            mask
        });
        let mut regions = RegionSet::new();
        for cell in cls.cells_of(CellClass::Accept) {
            regions.push(grid.cell_rect(cell));
        }
        let candidates: Vec<CellId> = cls.cells_of(CellClass::Candidate).collect();
        let mut cell_rects: HashMap<usize, Vec<Rect>> = HashMap::with_capacity(candidates.len());
        let mut to_refine: Vec<CellId> = Vec::new();
        for &cell in &candidates {
            let li = grid.linear_index(cell);
            let cached = match (&old, &dirty_mask) {
                (Some(c), Some(mask)) if !mask[li] => c.cell_rects.get(&li),
                _ => None,
            };
            match cached {
                Some(r) => {
                    cell_rects.insert(li, r.clone());
                }
                None => to_refine.push(cell),
            }
        }
        if enabled {
            self.obs.dirty_cells.add(to_refine.len() as u64);
        }
        let workers = self.worker_count(to_refine.len());
        let refined = if workers <= 1 {
            let obs = enabled.then_some(&*self.obs);
            refine_cells(&*self.tree, grid, &to_refine, q, threshold, obs).map(|(r, _, _)| r)
        } else {
            let chunk_len = to_refine.len().div_ceil(workers);
            let chunks = to_refine.len().div_ceil(chunk_len);
            let tree = Arc::clone(&self.tree);
            let obs = Arc::clone(&self.obs);
            let cells = Arc::new(to_refine);
            let q2 = *q;
            let per_chunk = Executor::global().scope(chunks, move |k| {
                let lo = k * chunk_len;
                let hi = (lo + chunk_len).min(cells.len());
                let chunk_obs = obs.enabled().then_some(&*obs);
                refine_cells(&*tree, grid, &cells[lo..hi], &q2, threshold, chunk_obs)
            });
            per_chunk
                .into_iter()
                .try_fold(Vec::new(), |mut acc, chunk| {
                    acc.extend(chunk?.0);
                    Ok(acc)
                })
        };
        let refined = match refined {
            Ok(r) => r,
            Err(e) => {
                // Keep the previous cache entry so the next (post-
                // recovery) maintenance pass retries from it instead of
                // falling back to a full recompute.
                if let Some(c) = old {
                    self.sub_cache.insert(key, c);
                }
                return Err(e);
            }
        };
        for (li, rects) in refined {
            cell_rects.insert(li, rects);
        }
        for &cell in &candidates {
            if let Some(rs) = cell_rects.get(&grid.linear_index(cell)) {
                for r in rs {
                    regions.push(*r);
                }
            }
        }
        regions.canonicalize();
        self.sub_cache.insert(
            key,
            GroupCache {
                epoch,
                cell_rects,
                full: regions.clone(),
            },
        );
        Ok(regions)
    }
}

/// How many snapshots an interval query buffers before folding them
/// into the running union: large enough to amortize the coalesce, small
/// enough that the scratch buffer never holds more than a handful of
/// snapshots' rectangles.
pub const INTERVAL_COALESCE_EVERY: u32 = 4;

/// Refines one contiguous chunk of candidate cells: per cell, a range
/// query over the `l/2`-inflated cell followed by the plane sweep.
/// One refinement chunk's yield: dense rectangles, objects retrieved,
/// and the chunk's own I/O — or the storage fault that aborted it.
type RefineResult = Result<(Vec<Rect>, usize, IoStats), StorageError>;

/// Self-contained per chunk (own I/O collector, own rectangle list) so
/// chunks can run on separate threads and still merge deterministically.
/// When `obs` is set, each cell's range query and plane sweep record
/// into the shared (atomic) stage histograms.
fn refine_chunk<I: RangeIndex>(
    tree: &I,
    grid: GridSpec,
    cells: &[CellId],
    q: &PdrQuery,
    threshold: DenseThreshold,
    obs: Option<&FrObs>,
) -> RefineResult {
    let mut rects = Vec::new();
    let mut retrieved = 0usize;
    let mut io = IoStats::default();
    // Scratch reused across every cell of the chunk: the range query
    // refills `hits`, the sweep sorts `positions` in place. Neither is
    // reallocated unless a cell yields more objects than any earlier
    // one; growth events feed the `refine_allocs` counter, which tests
    // pin to a logarithmic bound.
    let mut hits: Vec<(ObjectId, Point)> = Vec::new();
    let mut positions: Vec<Point> = Vec::new();
    for &cell in cells {
        let target = grid.cell_rect(cell);
        let s = target.inflate(q.l / 2.0);
        let caps = (hits.capacity(), positions.capacity());
        {
            let _t = obs.map(|o| o.range_time.timer(true));
            tree.try_range_at_into(&s, q.q_t, &mut io, &mut hits)?;
        }
        retrieved += hits.len();
        let _t = obs.map(|o| o.sweep_time.timer(true));
        positions.clear();
        positions.extend(hits.iter().map(|&(_, p)| p));
        if let Some(o) = obs {
            o.refine_allocs.add(
                u64::from(hits.capacity() != caps.0) + u64::from(positions.capacity() != caps.1),
            );
        }
        rects.extend(refine_region(&target, &mut positions, threshold, q.l));
    }
    Ok((rects, retrieved, io))
}

/// One maintenance chunk's yield: each cell's rectangles separately
/// (keyed by linear cell index) so they can be cached and reused while
/// the cell stays clean.
type RefineCellsResult = Result<(Vec<(usize, Vec<Rect>)>, usize, IoStats), StorageError>;

/// Per-cell variant of [`refine_chunk`] for subscription maintenance:
/// identical range-query + plane-sweep pipeline (same scratch reuse),
/// but the rectangles are *not* flattened across cells — the group
/// cache needs per-cell attribution to reuse clean cells.
fn refine_cells<I: RangeIndex>(
    tree: &I,
    grid: GridSpec,
    cells: &[CellId],
    q: &PdrQuery,
    threshold: DenseThreshold,
    obs: Option<&FrObs>,
) -> RefineCellsResult {
    let mut out = Vec::with_capacity(cells.len());
    let mut retrieved = 0usize;
    let mut io = IoStats::default();
    let mut hits: Vec<(ObjectId, Point)> = Vec::new();
    let mut positions: Vec<Point> = Vec::new();
    for &cell in cells {
        let target = grid.cell_rect(cell);
        let s = target.inflate(q.l / 2.0);
        {
            let _t = obs.map(|o| o.range_time.timer(true));
            tree.try_range_at_into(&s, q.q_t, &mut io, &mut hits)?;
        }
        retrieved += hits.len();
        let _t = obs.map(|o| o.sweep_time.timer(true));
        positions.clear();
        positions.extend(hits.iter().map(|&(_, p)| p));
        let rects: Vec<Rect> = refine_region(&target, &mut positions, threshold, q.l);
        out.push((grid.linear_index(cell), rects));
    }
    Ok((out, retrieved, io))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{accuracy, ExactOracle};
    use pdr_geometry::Rect;

    fn cfg() -> FrConfig {
        FrConfig {
            extent: 200.0,
            m: 20, // l_c = 10
            horizon: TimeHorizon::new(3, 3),
            buffer_pages: 64,
            threads: 1,
        }
    }

    struct Lcg(u64);
    impl Lcg {
        fn next(&mut self) -> f64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (self.0 >> 33) as f64 / (1u64 << 31) as f64
        }
    }

    fn clustered_population(n: usize, seed: u64) -> Vec<(ObjectId, MotionState)> {
        let mut rng = Lcg(seed);
        (0..n)
            .map(|i| {
                let p = if i % 2 == 0 {
                    Point::new(60.0 + rng.next() * 40.0, 60.0 + rng.next() * 40.0)
                } else {
                    Point::new(rng.next() * 200.0, rng.next() * 200.0)
                };
                let v = Point::new(rng.next() * 2.0 - 1.0, rng.next() * 2.0 - 1.0);
                (ObjectId(i as u64), MotionState::new(p, v, 0))
            })
            .collect()
    }

    #[test]
    fn fr_matches_exact_oracle() {
        let pop = clustered_population(400, 3);
        let mut fr = FrEngine::new(cfg(), 0);
        fr.bulk_load(&pop, 0);
        for q_t in [0u64, 2, 5] {
            let q = PdrQuery::new(0.05, 20.0, q_t); // threshold = 20 objects
            let ans = fr.query(&q);
            let oracle = ExactOracle::new(
                Rect::new(0.0, 0.0, 200.0, 200.0),
                pop.iter().map(|(_, m)| m.position_at(q_t)).collect(),
            );
            let truth = oracle.dense_regions(&q);
            let acc = accuracy(&truth, &ans.regions);
            assert!(
                acc.r_fp < 1e-9 && acc.r_fn < 1e-9,
                "FR not exact at t={q_t}: {acc:?} (accepts {} candidates {})",
                ans.accepts,
                ans.candidates
            );
        }
    }

    #[test]
    fn fr_exact_after_updates() {
        let pop = clustered_population(300, 11);
        let mut fr = FrEngine::new(cfg(), 0);
        fr.bulk_load(&pop, 0);
        // Re-report a third of the objects at t=2 with fresh motions.
        let mut rng = Lcg(77);
        // `pop` is not needed again after bulk_load — move it.
        let mut table: Vec<(ObjectId, MotionState)> = pop;
        fr.advance_to(2);
        for (id, m) in table.iter_mut().take(100) {
            let new_m = MotionState::new(
                Point::new(rng.next() * 200.0, rng.next() * 200.0),
                Point::new(rng.next() * 2.0 - 1.0, 0.0),
                2,
            );
            fr.apply(&Update::delete(*id, 2, *m));
            fr.apply(&Update::insert(*id, 2, new_m));
            *m = new_m;
        }
        let q = PdrQuery::new(0.05, 20.0, 4);
        let ans = fr.query(&q);
        let oracle = ExactOracle::new(
            Rect::new(0.0, 0.0, 200.0, 200.0),
            table.iter().map(|(_, m)| m.position_at(4)).collect(),
        );
        let truth = oracle.dense_regions(&q);
        let acc = accuracy(&truth, &ans.regions);
        assert!(
            acc.r_fp < 1e-9 && acc.r_fn < 1e-9,
            "FR not exact after updates: {acc:?}"
        );
    }

    /// The refinement loop must not allocate per candidate cell: with a
    /// wide candidate front, the reused scratch buffers may only grow a
    /// logarithmic number of times (amortized doubling), never once per
    /// cell as the old hits/positions vectors did.
    #[test]
    fn refinement_reuses_buffers_across_cells() {
        let pop = clustered_population(900, 27);
        let mut fr = FrEngine::new(cfg(), 0); // threads: 1 — one chunk
        fr.bulk_load(&pop, 0);
        let q = PdrQuery::new(0.02, 20.0, 1); // threshold = 8 objects
        let ans = fr.query(&q);
        assert!(
            ans.candidates >= 50,
            "test needs a wide candidate front, got {}",
            ans.candidates
        );
        let report = fr.obs_report();
        let allocs = report
            .counters
            .iter()
            .find(|(name, _)| *name == "refine_allocs")
            .map(|(_, v)| *v)
            .expect("refine_allocs counter reported");
        assert!(
            (allocs as usize) < ans.candidates && allocs <= 24,
            "{allocs} buffer growths across {} candidate cells — the \
             scratch is being reallocated per cell",
            ans.candidates
        );
    }

    #[test]
    fn filter_prunes_most_cells() {
        let pop = clustered_population(400, 5);
        let mut fr = FrEngine::new(cfg(), 0);
        fr.bulk_load(&pop, 0);
        let ans = fr.query(&PdrQuery::new(0.05, 20.0, 0));
        let total = 400; // 20x20 cells
        assert_eq!(ans.accepts + ans.rejects + ans.candidates, total);
        assert!(
            ans.rejects > total / 2,
            "expected most cells rejected, got {} rejects",
            ans.rejects
        );
    }

    #[test]
    fn io_counted_only_for_candidates() {
        let pop = clustered_population(400, 9);
        let mut fr = FrEngine::new(cfg(), 0);
        fr.bulk_load(&pop, 0);
        // Impossible threshold: everything rejected, no refinement I/O.
        let ans = fr.query(&PdrQuery::new(10.0, 20.0, 0));
        assert_eq!(ans.candidates, 0);
        assert_eq!(ans.io.logical_reads, 0);
        assert!(ans.regions.is_empty());
    }

    #[test]
    fn interval_query_unions_snapshots() {
        let pop = clustered_population(300, 21);
        let mut fr = FrEngine::new(cfg(), 0);
        fr.bulk_load(&pop, 0);
        let union = fr.interval_query(0.05, 20.0, 0, 3);
        for t in 0..=3u64 {
            let snap = fr.query(&PdrQuery::new(0.05, 20.0, t)).regions;
            assert!(
                snap.difference_area(&union) < 1e-9,
                "snapshot t={t} not contained in interval union"
            );
        }
    }

    #[test]
    fn checkpoint_restore_preserves_answers() {
        let pop = clustered_population(300, 41);
        let mut fr = FrEngine::new(cfg(), 0);
        fr.bulk_load(&pop, 0);
        fr.advance_to(2);
        let q = PdrQuery::new(0.05, 20.0, 4);
        let before = fr.query(&q).regions;

        // Simulated restart: checkpoint the histogram, rebuild the
        // index from the motion table.
        let bytes = fr.histogram().serialize();
        let restored_hist = DensityHistogram::deserialize(&bytes).unwrap();
        let fresh_tree = TprTree::new(
            TprConfig {
                buffer_pages: 64,
                min_fill_ratio: 0.4,
                horizon: cfg().horizon.h() as f64,
                integral_metrics: true,
            },
            0,
        );
        let restored = FrEngine::restore(cfg(), restored_hist, fresh_tree, &pop);
        let after = restored.query(&q).regions;
        assert!(
            before.symmetric_difference_area(&after) < 1e-9,
            "restored engine answers differ"
        );
    }

    /// Version-1 checkpoints (row-major motion table) written before the
    /// columnar codec must keep restoring bit-identically.
    #[test]
    fn v1_checkpoint_still_restores() {
        let pop = clustered_population(250, 43);
        let mut fr = FrEngine::new(cfg(), 0);
        fr.bulk_load(&pop, 0);
        fr.advance_to(1);
        let q = PdrQuery::new(0.05, 20.0, 3);
        let want = fr.query(&q).regions;

        // Hand-roll the legacy layout from live state.
        let mut w = ByteWriter::new();
        w.put_bytes(b"FRCK");
        w.put_u16(1);
        w.put_u64(fr.t_start);
        w.put_u64(fr.updates_applied);
        w.put_u64(fr.missed_deletes);
        w.put_u64(fr.rejected_updates);
        let mut motions: Vec<(ObjectId, MotionState)> =
            fr.motions.iter().map(|(id, m)| (*id, *m)).collect();
        motions.sort_unstable_by_key(|(id, _)| *id);
        w.put_u64(motions.len() as u64);
        for (id, m) in &motions {
            w.put_u64(id.0);
            w.put_f64(m.origin.x);
            w.put_f64(m.origin.y);
            w.put_f64(m.velocity.x);
            w.put_f64(m.velocity.y);
            w.put_u64(m.t_ref);
        }
        w.put_bytes(&fr.histogram.serialize());
        let v1 = seal_checkpoint(&w.into_bytes());

        let mut restored = FrEngine::new(cfg(), 0);
        restored.restore_from_bytes(&v1).expect("v1 restores");
        let got = restored.query(&q).regions;
        assert_eq!(want.rects(), got.rects(), "v1 restore diverged");

        // The columnar v2 container is strictly smaller on the same state.
        let v2 = fr.checkpoint_bytes();
        assert!(
            v2.len() < v1.len(),
            "v2 checkpoint ({}) not smaller than v1 ({})",
            v2.len(),
            v1.len()
        );
    }

    #[test]
    fn empty_engine_returns_empty() {
        let fr = FrEngine::new(cfg(), 0);
        let ans = fr.query(&PdrQuery::new(0.5, 20.0, 0));
        assert!(ans.regions.is_empty());
        assert_eq!(ans.accepts, 0);
    }

    /// The tentpole determinism guarantee: the parallel pipeline must be
    /// rectangle-for-rectangle identical to the serial oracle, for any
    /// worker count, including the merged I/O attribution.
    #[test]
    fn parallel_answer_identical_to_serial_oracle() {
        let pop = clustered_population(2000, 13);
        let mut serial = FrEngine::new(
            FrConfig {
                threads: 1,
                ..cfg()
            },
            0,
        );
        serial.bulk_load(&pop, 0);
        let q = PdrQuery::new(0.05, 20.0, 2);
        let base = serial.query(&q);
        assert!(
            base.candidates >= 2,
            "need several candidate cells to exercise the fan-out, got {}",
            base.candidates
        );
        for threads in [2usize, 8] {
            let mut fr = FrEngine::new(FrConfig { threads, ..cfg() }, 0);
            fr.bulk_load(&pop, 0);
            let ans = fr.query(&q);
            assert_eq!(
                ans.regions.rects(),
                base.regions.rects(),
                "answer diverged at threads = {threads}"
            );
            assert_eq!(ans.objects_retrieved, base.objects_retrieved);
            assert_eq!(ans.candidates, base.candidates);
            assert_eq!(
                ans.io, base.io,
                "merged per-thread I/O diverged at threads = {threads}"
            );
        }
    }

    /// An update between two queries at the same `q_t` must invalidate
    /// the classification cache: the second answer reflects the update.
    #[test]
    fn cache_invalidated_by_updates() {
        let pop = clustered_population(300, 55);
        let mut fr = FrEngine::new(cfg(), 0);
        fr.bulk_load(&pop, 0);
        let q = PdrQuery::new(0.05, 20.0, 1); // threshold = 20 objects
        let before = fr.query(&q);

        // A repeat of the same query is served from cache...
        let counters = fr.cache_counters();
        let repeat = fr.query(&q);
        assert_eq!(fr.cache_counters(), counters, "repeat query recomputed");
        assert_eq!(repeat.regions.rects(), before.regions.rects());

        // ...but a burst of inserts at one spot invalidates it and the
        // new mass shows up in the answer at the same q_t.
        let spot = Point::new(170.0, 30.0);
        assert!(!before.regions.contains(spot), "spot dense too early");
        for i in 0..40u64 {
            fr.apply(&Update::insert(
                ObjectId(1_000_000 + i),
                0,
                MotionState::stationary(spot, 0),
            ));
        }
        let after = fr.query(&q);
        assert!(
            fr.cache_counters().sums_recomputes > counters.sums_recomputes,
            "update did not invalidate the cache"
        );
        assert!(
            after.regions.contains(spot),
            "post-update query missed the new cluster"
        );
    }

    /// An interval query over 16 distinct timestamps builds prefix sums
    /// and classifications exactly once per timestamp, and a repeat of
    /// the same interval recomputes nothing at all.
    #[test]
    fn interval_query_computes_each_timestamp_once() {
        let pop = clustered_population(400, 7);
        let cfg16 = FrConfig {
            horizon: TimeHorizon::new(8, 8), // covers q_t in [0, 16]
            ..cfg()
        };
        let mut fr = FrEngine::new(cfg16, 0);
        fr.bulk_load(&pop, 0);
        let c0 = fr.cache_counters();
        let first = fr.interval_query(0.05, 20.0, 0, 15);
        let c1 = fr.cache_counters();
        assert_eq!(c1.sums_recomputes - c0.sums_recomputes, 16);
        assert_eq!(c1.classify_recomputes - c0.classify_recomputes, 16);

        let second = fr.interval_query(0.05, 20.0, 0, 15);
        assert_eq!(fr.cache_counters(), c1, "repeat interval recomputed");
        assert!(first.symmetric_difference_area(&second) < 1e-9);
    }
}
