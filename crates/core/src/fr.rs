//! The exact filtering–refinement engine (Section 5).

use crate::{classify_cells, refine_region, CellClass, DenseThreshold, PdrQuery, RangeIndex};
use pdr_geometry::{Point, RegionSet};
use pdr_histogram::DensityHistogram;
use pdr_mobject::{MotionState, ObjectId, TimeHorizon, Timestamp, Update, UpdateKind};
use pdr_storage::{CostModel, IoStats};
use pdr_tprtree::{TprConfig, TprTree};
use std::time::{Duration, Instant};

/// Configuration of an [`FrEngine`].
#[derive(Clone, Copy, Debug)]
pub struct FrConfig {
    /// Side length `L` of the monitored square region.
    pub extent: f64,
    /// Histogram cells per side (`m`; paper default m² = 10 000).
    pub m: u32,
    /// Time horizon `U / W / H`.
    pub horizon: TimeHorizon,
    /// TPR-tree buffer pool size in pages (paper: 10 % of the data).
    pub buffer_pages: usize,
}

impl FrConfig {
    /// The paper's default setup on the 1000-mile plane.
    pub fn paper_default() -> Self {
        FrConfig {
            extent: 1000.0,
            m: 100,
            horizon: TimeHorizon::PAPER_DEFAULT,
            buffer_pages: 1024,
        }
    }
}

/// Answer and cost breakdown of one FR query.
#[derive(Clone, Debug)]
pub struct FrAnswer {
    /// The exact dense region.
    pub regions: RegionSet,
    /// Cells proven dense by the filter (no refinement needed).
    pub accepts: usize,
    /// Cells proven sparse by the filter.
    pub rejects: usize,
    /// Cells refined by range query + plane sweep.
    pub candidates: usize,
    /// Objects retrieved from the TPR-tree across all candidate cells.
    pub objects_retrieved: usize,
    /// Buffer-pool I/O incurred by the refinement range queries.
    pub io: IoStats,
    /// Wall-clock CPU time of the whole query.
    pub cpu: Duration,
}

impl FrAnswer {
    /// Total query cost in milliseconds under `model`:
    /// `CPU + random-I/O charge` (the paper's Figure 10 metric).
    pub fn total_ms(&self, model: &CostModel) -> f64 {
        self.cpu.as_secs_f64() * 1e3 + model.io_ms(&self.io)
    }
}

/// The exact PDR query engine: density histogram for filtering, a
/// pluggable [`RangeIndex`] (TPR-tree by default) plus plane sweep for
/// refinement.
pub struct FrEngine<I: RangeIndex = TprTree> {
    cfg: FrConfig,
    histogram: DensityHistogram,
    tree: I,
}

impl FrEngine<TprTree> {
    /// Creates an empty engine whose horizon starts at `t_start`,
    /// refining through the paper's TPR-tree.
    pub fn new(cfg: FrConfig, t_start: Timestamp) -> Self {
        let tree = TprTree::new(
            TprConfig {
                buffer_pages: cfg.buffer_pages,
                min_fill_ratio: 0.4,
                horizon: cfg.horizon.h() as f64,
                integral_metrics: true,
            },
            t_start,
        );
        FrEngine::with_index(cfg, tree, t_start)
    }
}

impl<I: RangeIndex> FrEngine<I> {
    /// Creates an engine refining through any [`RangeIndex`] — the
    /// paper's "we can adopt [other indexes] in our framework".
    ///
    /// # Panics
    ///
    /// Panics when `index` is not empty.
    pub fn with_index(cfg: FrConfig, index: I, t_start: Timestamp) -> Self {
        assert!(index.is_empty(), "refinement index must start empty");
        let histogram = DensityHistogram::new(cfg.extent, cfg.m, cfg.horizon, t_start);
        FrEngine {
            cfg,
            histogram,
            tree: index,
        }
    }

    /// Restores an engine from a checkpointed histogram plus the
    /// current motion table: the histogram (which would otherwise take
    /// up to `U + W` timestamps to refill) comes from
    /// [`DensityHistogram::serialize`], while the refinement index is
    /// rebuilt from the live motions — the standard restart recipe,
    /// since indexes rebuild in one bulk load but horizon counters
    /// cannot be reconstructed without replaying history.
    ///
    /// # Panics
    ///
    /// Panics when the histogram's geometry or horizon disagrees with
    /// `cfg`, or when `index` is not empty.
    pub fn restore(
        cfg: FrConfig,
        histogram: DensityHistogram,
        mut index: I,
        objects: &[(ObjectId, MotionState)],
    ) -> Self {
        assert!(index.is_empty(), "refinement index must start empty");
        assert_eq!(
            histogram.grid().cells_per_side(),
            cfg.m,
            "histogram grid disagrees with config"
        );
        assert_eq!(
            histogram.horizon(),
            cfg.horizon,
            "histogram horizon disagrees with config"
        );
        let t_now = histogram.t_base();
        index.load(objects, t_now);
        FrEngine {
            cfg,
            histogram,
            tree: index,
        }
    }

    /// The engine configuration.
    pub fn config(&self) -> &FrConfig {
        &self.cfg
    }

    /// The underlying density histogram (for DH-only baselines and
    /// memory accounting).
    pub fn histogram(&self) -> &DensityHistogram {
        &self.histogram
    }

    /// The underlying refinement index.
    pub fn tree(&mut self) -> &mut I {
        &mut self.tree
    }

    /// Number of indexed objects.
    pub fn len(&self) -> usize {
        self.tree.len()
    }

    /// `true` when no objects are indexed.
    pub fn is_empty(&self) -> bool {
        self.tree.is_empty()
    }

    /// Loads an initial population in bulk (histogram via protocol
    /// inserts, tree via STR packing). The engine must be empty.
    pub fn bulk_load(&mut self, objects: &[(ObjectId, MotionState)], t_now: Timestamp) {
        assert!(self.is_empty(), "bulk_load requires an empty engine");
        for (id, m) in objects {
            self.histogram
                .apply(&Update::insert(*id, t_now, *m));
        }
        self.tree.load(objects, t_now);
    }

    /// Applies one protocol update to both structures.
    pub fn apply(&mut self, update: &Update) {
        self.histogram.apply(update);
        match update.kind {
            UpdateKind::Insert { motion } => self.tree.insert(update.id, &motion, update.t_now),
            UpdateKind::Delete { .. } => {
                let removed = self.tree.remove(update.id);
                debug_assert!(removed, "delete of unindexed object {:?}", update.id);
            }
        }
    }

    /// Advances current time, recycling expired histogram slots.
    pub fn advance_to(&mut self, t_now: Timestamp) {
        self.histogram.advance_to(t_now);
    }

    /// Evaluates a snapshot PDR query exactly (Algorithms 1–3).
    ///
    /// # Panics
    ///
    /// Panics when `q.q_t` is outside the current horizon window or the
    /// histogram grid is too coarse for `q.l` (cell edge must be ≤ l/2).
    pub fn query(&mut self, q: &PdrQuery) -> FrAnswer {
        let start = Instant::now();
        let grid = self.histogram.grid();
        let sums = self.histogram.prefix_sums_at(q.q_t);
        let cls = classify_cells(grid, &sums, q);
        let threshold = DenseThreshold::of(q);

        let mut regions = RegionSet::new();
        for cell in cls.cells_of(CellClass::Accept) {
            regions.push(grid.cell_rect(cell));
        }

        self.tree.reset_io_stats();
        let mut objects_retrieved = 0usize;
        for cell in cls.cells_of(CellClass::Candidate) {
            let target = grid.cell_rect(cell);
            let s = target.inflate(q.l / 2.0);
            let hits = self.tree.range_at(&s, q.q_t);
            objects_retrieved += hits.len();
            let positions: Vec<Point> = hits.into_iter().map(|(_, p)| p).collect();
            for r in refine_region(&target, &positions, threshold, q.l) {
                regions.push(r);
            }
        }
        regions.coalesce();
        FrAnswer {
            regions,
            accepts: cls.accept_count(),
            rejects: cls.reject_count(),
            candidates: cls.candidate_count(),
            objects_retrieved,
            io: self.tree.io_stats(),
            cpu: start.elapsed(),
        }
    }

    /// Interval PDR query (Definition 5): the union of snapshot answers
    /// over `q_t ∈ [from, to]`.
    pub fn interval_query(&mut self, rho: f64, l: f64, from: Timestamp, to: Timestamp) -> RegionSet {
        assert!(from <= to, "empty interval");
        let mut out = RegionSet::new();
        for t in from..=to {
            let ans = self.query(&PdrQuery::new(rho, l, t));
            out.extend_from(&ans.regions);
        }
        out.coalesce();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{accuracy, ExactOracle};
    use pdr_geometry::Rect;

    fn cfg() -> FrConfig {
        FrConfig {
            extent: 200.0,
            m: 20, // l_c = 10
            horizon: TimeHorizon::new(3, 3),
            buffer_pages: 64,
        }
    }

    struct Lcg(u64);
    impl Lcg {
        fn next(&mut self) -> f64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (self.0 >> 33) as f64 / (1u64 << 31) as f64
        }
    }

    fn clustered_population(n: usize, seed: u64) -> Vec<(ObjectId, MotionState)> {
        let mut rng = Lcg(seed);
        (0..n)
            .map(|i| {
                let p = if i % 2 == 0 {
                    Point::new(60.0 + rng.next() * 40.0, 60.0 + rng.next() * 40.0)
                } else {
                    Point::new(rng.next() * 200.0, rng.next() * 200.0)
                };
                let v = Point::new(rng.next() * 2.0 - 1.0, rng.next() * 2.0 - 1.0);
                (ObjectId(i as u64), MotionState::new(p, v, 0))
            })
            .collect()
    }

    #[test]
    fn fr_matches_exact_oracle() {
        let pop = clustered_population(400, 3);
        let mut fr = FrEngine::new(cfg(), 0);
        fr.bulk_load(&pop, 0);
        for q_t in [0u64, 2, 5] {
            let q = PdrQuery::new(0.05, 20.0, q_t); // threshold = 20 objects
            let ans = fr.query(&q);
            let oracle = ExactOracle::new(
                Rect::new(0.0, 0.0, 200.0, 200.0),
                pop.iter().map(|(_, m)| m.position_at(q_t)).collect(),
            );
            let truth = oracle.dense_regions(&q);
            let acc = accuracy(&truth, &ans.regions);
            assert!(
                acc.r_fp < 1e-9 && acc.r_fn < 1e-9,
                "FR not exact at t={q_t}: {acc:?} (accepts {} candidates {})",
                ans.accepts,
                ans.candidates
            );
        }
    }

    #[test]
    fn fr_exact_after_updates() {
        let pop = clustered_population(300, 11);
        let mut fr = FrEngine::new(cfg(), 0);
        fr.bulk_load(&pop, 0);
        // Re-report a third of the objects at t=2 with fresh motions.
        let mut rng = Lcg(77);
        let mut table: Vec<(ObjectId, MotionState)> = pop.clone();
        fr.advance_to(2);
        for (id, m) in table.iter_mut().take(100) {
            let new_m = MotionState::new(
                Point::new(rng.next() * 200.0, rng.next() * 200.0),
                Point::new(rng.next() * 2.0 - 1.0, 0.0),
                2,
            );
            fr.apply(&Update::delete(*id, 2, *m));
            fr.apply(&Update::insert(*id, 2, new_m));
            *m = new_m;
        }
        let q = PdrQuery::new(0.05, 20.0, 4);
        let ans = fr.query(&q);
        let oracle = ExactOracle::new(
            Rect::new(0.0, 0.0, 200.0, 200.0),
            table.iter().map(|(_, m)| m.position_at(4)).collect(),
        );
        let truth = oracle.dense_regions(&q);
        let acc = accuracy(&truth, &ans.regions);
        assert!(
            acc.r_fp < 1e-9 && acc.r_fn < 1e-9,
            "FR not exact after updates: {acc:?}"
        );
    }

    #[test]
    fn filter_prunes_most_cells() {
        let pop = clustered_population(400, 5);
        let mut fr = FrEngine::new(cfg(), 0);
        fr.bulk_load(&pop, 0);
        let ans = fr.query(&PdrQuery::new(0.05, 20.0, 0));
        let total = 400; // 20x20 cells
        assert_eq!(ans.accepts + ans.rejects + ans.candidates, total);
        assert!(
            ans.rejects > total / 2,
            "expected most cells rejected, got {} rejects",
            ans.rejects
        );
    }

    #[test]
    fn io_counted_only_for_candidates() {
        let pop = clustered_population(400, 9);
        let mut fr = FrEngine::new(cfg(), 0);
        fr.bulk_load(&pop, 0);
        // Impossible threshold: everything rejected, no refinement I/O.
        let ans = fr.query(&PdrQuery::new(10.0, 20.0, 0));
        assert_eq!(ans.candidates, 0);
        assert_eq!(ans.io.logical_reads, 0);
        assert!(ans.regions.is_empty());
    }

    #[test]
    fn interval_query_unions_snapshots() {
        let pop = clustered_population(300, 21);
        let mut fr = FrEngine::new(cfg(), 0);
        fr.bulk_load(&pop, 0);
        let union = fr.interval_query(0.05, 20.0, 0, 3);
        for t in 0..=3u64 {
            let snap = fr.query(&PdrQuery::new(0.05, 20.0, t)).regions;
            assert!(
                snap.difference_area(&union) < 1e-9,
                "snapshot t={t} not contained in interval union"
            );
        }
    }

    #[test]
    fn checkpoint_restore_preserves_answers() {
        let pop = clustered_population(300, 41);
        let mut fr = FrEngine::new(cfg(), 0);
        fr.bulk_load(&pop, 0);
        fr.advance_to(2);
        let q = PdrQuery::new(0.05, 20.0, 4);
        let before = fr.query(&q).regions;

        // Simulated restart: checkpoint the histogram, rebuild the
        // index from the motion table.
        let bytes = fr.histogram().serialize();
        let restored_hist = DensityHistogram::deserialize(&bytes).unwrap();
        let fresh_tree = TprTree::new(
            TprConfig {
                buffer_pages: 64,
                min_fill_ratio: 0.4,
                horizon: cfg().horizon.h() as f64,
                integral_metrics: true,
            },
            0,
        );
        let mut restored = FrEngine::restore(cfg(), restored_hist, fresh_tree, &pop);
        let after = restored.query(&q).regions;
        assert!(
            before.symmetric_difference_area(&after) < 1e-9,
            "restored engine answers differ"
        );
    }

    #[test]
    fn empty_engine_returns_empty() {
        let mut fr = FrEngine::new(cfg(), 0);
        let ans = fr.query(&PdrQuery::new(0.5, 20.0, 0));
        assert!(ans.regions.is_empty());
        assert_eq!(ans.accepts, 0);
    }
}
