//! Prior-work baselines the paper compares against (Sections 1–2).
//!
//! * [`dense_cell_query`] — the *dense cell* simplification of
//!   Hadjieleftheriou et al. (SSTD 2003): partition the plane into grid
//!   cells and report cells whose own density clears the threshold.
//!   Suffers **answer loss** (Figure 1(a)): a dense square straddling
//!   cell borders is invisible.
//! * [`effective_density_query`] — the *effective density query* of
//!   Jensen et al. (ICDE 2006), faithful in spirit: report
//!   **non-overlapping** `l × l` squares with at least `ρl²` objects,
//!   chosen greedily by object count. Fixes answer loss but introduces
//!   **ambiguity** (Figure 1(b)): of two overlapping dense squares only
//!   one is reported, and which one depends on the reporting strategy.
//!
//! Both restrict answers to fixed-size shapes and give no local-density
//! guarantee; the integration tests reproduce each defect and show the
//! PDR answer avoiding it.

use crate::{DenseThreshold, PdrQuery};
use pdr_geometry::{GridSpec, LSquare, Point, Rect, RegionSet};

/// The dense-cell baseline: every grid cell whose own object count
/// divided by its area reaches `ρ` is reported, nothing else.
pub fn dense_cell_query(positions: &[Point], grid: GridSpec, rho: f64) -> RegionSet {
    let mut counts = vec![0u32; grid.cell_count()];
    for &p in positions {
        if let Some(cell) = grid.locate(p) {
            counts[grid.linear_index(cell)] += 1;
        }
    }
    let cell_area = grid.cell_edge() * grid.cell_edge();
    let mut rs = RegionSet::new();
    for cell in grid.all_cells() {
        let density = counts[grid.linear_index(cell)] as f64 / cell_area;
        if density + 1e-9 >= rho {
            rs.push(grid.cell_rect(cell));
        }
    }
    rs.coalesce();
    rs
}

/// One reported EDQ square.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EdqSquare {
    /// Center of the reported `l × l` square.
    pub center: Point,
    /// Objects inside it.
    pub count: usize,
}

/// The effective-density-query baseline: greedily report disjoint
/// `l × l` squares containing at least `ρl²` objects, highest count
/// first. Candidate centers are every object position and the centers
/// of an `l/2`-step grid (so clusters that sit between objects are
/// still found); exhaustiveness over the continuum is not needed for a
/// greedy, non-overlapping answer.
pub fn effective_density_query(
    positions: &[Point],
    bounds: &Rect,
    query: &PdrQuery,
) -> Vec<EdqSquare> {
    let threshold = DenseThreshold::of(query);
    let l = query.l;

    // Candidate centers.
    let mut centers: Vec<Point> = positions
        .iter()
        .copied()
        .filter(|p| bounds.contains(*p))
        .collect();
    let step = l / 2.0;
    let nx = (bounds.width() / step).ceil() as i64;
    let ny = (bounds.height() / step).ceil() as i64;
    for i in 0..=nx {
        for j in 0..=ny {
            centers.push(Point::new(
                (bounds.x_lo + i as f64 * step).min(bounds.x_hi),
                (bounds.y_lo + j as f64 * step).min(bounds.y_hi),
            ));
        }
    }

    // Score each candidate.
    let mut scored: Vec<EdqSquare> = centers
        .into_iter()
        .map(|c| {
            let sq = LSquare::new(c, l);
            let count = positions.iter().filter(|&&p| sq.contains(p)).count();
            EdqSquare { center: c, count }
        })
        .filter(|s| threshold.met_by(s.count))
        .collect();
    scored.sort_by_key(|s| std::cmp::Reverse(s.count));

    // Greedy non-overlap selection.
    let mut chosen: Vec<EdqSquare> = Vec::new();
    for s in scored {
        let r = Rect::centered_square(s.center, l);
        if chosen
            .iter()
            .all(|c| !Rect::centered_square(c.center, l).overlaps_interior(&r))
        {
            chosen.push(s);
        }
    }
    chosen
}

/// The EDQ answer as a region (union of its squares), for comparison
/// with PDR answers.
pub fn edq_region(squares: &[EdqSquare], l: f64) -> RegionSet {
    let mut rs: RegionSet = squares
        .iter()
        .map(|s| Rect::centered_square(s.center, l))
        .collect();
    rs.coalesce();
    rs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{exact_dense_regions, PdrQuery};

    /// Figure 1(a): four objects hugging a grid corner. No grid cell is
    /// dense, so the dense-cell method reports nothing — answer loss.
    /// The PDR answer is nonempty.
    #[test]
    fn dense_cell_answer_loss() {
        let grid = GridSpec::unit_origin(4.0, 4); // unit cells
        let positions = vec![
            Point::new(1.9, 1.9),
            Point::new(2.1, 1.9),
            Point::new(1.9, 2.1),
            Point::new(2.1, 2.1),
        ];
        let rho = 4.0; // 4 objects per unit area
        let cells = dense_cell_query(&positions, grid, rho);
        assert!(cells.is_empty(), "no single cell holds 4 objects");
        let q = PdrQuery::new(rho, 1.0, 0);
        let pdr = exact_dense_regions(&positions, &grid.bounds(), &q);
        assert!(!pdr.is_empty(), "PDR must not lose the answer");
        assert!(pdr.contains(Point::new(2.0, 2.0)));
    }

    /// Figure 1(b): overlapping dense squares. The EDQ answer must drop
    /// every dense square that overlaps a reported one — so valid
    /// answers are excluded and the reported region differs from the
    /// full set of dense points, which PDR reports in its entirety.
    #[test]
    fn edq_ambiguity() {
        // Two clusters of 4 objects, 1.5 apart, each dense for l = 2,
        // threshold 4; squares covering them overlap.
        let mut positions = vec![Point::new(3.0, 3.0); 4];
        positions.extend(vec![Point::new(4.5, 3.0); 4]);
        let bounds = Rect::new(0.0, 0.0, 8.0, 8.0);
        let q = PdrQuery::new(1.0, 2.0, 0); // threshold = 4 objects
        let squares = effective_density_query(&positions, &bounds, &q);
        assert!(!squares.is_empty());
        // Ambiguity: there exists a dense square (e.g. centered on a
        // cluster) that was NOT reported because it overlaps a reported
        // one — a different reporting strategy would have chosen it.
        let reported_rects: Vec<Rect> = squares
            .iter()
            .map(|s| Rect::centered_square(s.center, 2.0))
            .collect();
        let excluded_dense_square_exists = [Point::new(3.0, 3.0), Point::new(4.5, 3.0)]
            .into_iter()
            .any(|c| {
                let sq = LSquare::new(c, 2.0);
                let count = positions.iter().filter(|&&p| sq.contains(p)).count();
                let is_dense = count >= 4;
                let reported = squares.iter().any(|s| s.center == c);
                let overlaps_reported = reported_rects
                    .iter()
                    .any(|r| r.overlaps_interior(&Rect::centered_square(c, 2.0)));
                is_dense && !reported && overlaps_reported
            });
        assert!(
            excluded_dense_square_exists,
            "expected a valid dense square excluded by the non-overlap rule; got {squares:?}"
        );
        // PDR has no such ambiguity: it reports *all* dense points,
        // including both cluster centers.
        let pdr = exact_dense_regions(&positions, &bounds, &q);
        assert!(pdr.contains(Point::new(3.0, 3.0)));
        assert!(pdr.contains(Point::new(4.5, 3.0)));
        // And the fixed-shape EDQ region cannot coincide with the
        // arbitrary-shape PDR region.
        let edq = edq_region(&squares, 2.0);
        assert!(edq.symmetric_difference_area(&pdr) > 0.1);
    }

    /// Figure 1(c): a dense square with an empty pocket. The region
    /// density clears the threshold but the pocket's local density does
    /// not; PDR excludes the pocket.
    #[test]
    fn local_density_guarantee() {
        // 8 objects in the left half of [0,2]x[0,2]; right half empty.
        let positions: Vec<Point> = (0..8)
            .map(|i| Point::new(0.3 + 0.05 * i as f64, 0.5 + 0.2 * (i % 4) as f64))
            .collect();
        let bounds = Rect::new(0.0, 0.0, 4.0, 4.0);
        // Whole 2x2 square has density 8/4 = 2 >= 1 — "dense" by region
        // density. But p = (1.9, 1.0) has an l=1 neighborhood with no
        // objects.
        let q = PdrQuery::new(1.0, 1.0, 0);
        let pdr = exact_dense_regions(&positions, &bounds, &q);
        assert!(
            !pdr.contains(Point::new(1.9, 1.0)),
            "PDR must exclude locally sparse points"
        );
        assert!(pdr.contains(Point::new(0.5, 0.9)));
    }

    #[test]
    fn dense_cell_reports_truly_dense_cells() {
        let grid = GridSpec::unit_origin(10.0, 10);
        let positions = vec![Point::new(5.5, 5.5); 3];
        let rs = dense_cell_query(&positions, grid, 3.0);
        assert!((rs.area() - 1.0).abs() < 1e-12);
        assert!(rs.contains(Point::new(5.5, 5.5)));
        // Threshold above the count: nothing.
        assert!(dense_cell_query(&positions, grid, 3.5).is_empty());
    }

    #[test]
    fn edq_squares_never_overlap() {
        let mut positions = Vec::new();
        let mut seed = 3u64;
        let mut rng = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 33) as f64 / (1u64 << 31) as f64
        };
        for _ in 0..200 {
            positions.push(Point::new(rng() * 20.0, rng() * 20.0));
        }
        let bounds = Rect::new(0.0, 0.0, 20.0, 20.0);
        let q = PdrQuery::new(0.5, 3.0, 0);
        let squares = effective_density_query(&positions, &bounds, &q);
        for (i, a) in squares.iter().enumerate() {
            for b in squares.iter().skip(i + 1) {
                let ra = Rect::centered_square(a.center, 3.0);
                let rb = Rect::centered_square(b.center, 3.0);
                assert!(
                    !ra.overlaps_interior(&rb),
                    "overlap between {a:?} and {b:?}"
                );
            }
            assert!(a.count as f64 >= q.count_threshold() - 1e-9);
        }
    }

    /// The generality claim (Section 3.1): centers of baseline answers
    /// are ρ-dense under PDR, so the PDR answer is a superset.
    #[test]
    fn pdr_generalizes_baselines() {
        let mut positions = Vec::new();
        let mut seed = 11u64;
        let mut rng = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 33) as f64 / (1u64 << 31) as f64
        };
        for i in 0..150 {
            let p = if i % 2 == 0 {
                Point::new(8.0 + rng() * 4.0, 8.0 + rng() * 4.0)
            } else {
                Point::new(rng() * 20.0, rng() * 20.0)
            };
            positions.push(p);
        }
        let bounds = Rect::new(0.0, 0.0, 20.0, 20.0);
        let q = PdrQuery::new(1.0, 2.0, 0); // threshold 4
        let pdr = exact_dense_regions(&positions, &bounds, &q);
        // EDQ centers are dense points under PDR.
        for s in effective_density_query(&positions, &bounds, &q) {
            assert!(
                pdr.contains(s.center) || !bounds.contains_half_open(s.center),
                "EDQ center {:?} (count {}) missing from PDR answer",
                s.center,
                s.count
            );
        }
        // Dense-cell centers too, when the cell edge equals l.
        let grid = GridSpec::unit_origin(20.0, 10); // 2-unit cells = l
        let cells = dense_cell_query(&positions, grid, q.rho);
        for r in cells.rects() {
            // The cell's center has the whole cell in its l-square.
            assert!(
                pdr.contains(r.center()),
                "dense cell center {:?} missing from PDR answer",
                r.center()
            );
        }
    }
}
