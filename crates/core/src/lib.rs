//! Pointwise-dense region (PDR) queries over moving objects.
//!
//! This crate implements the primary contribution of Ni & Ravishankar,
//! *"Pointwise-Dense Region Queries in Spatio-temporal Databases"*
//! (ICDE 2007): given moving objects, a neighborhood edge length `l`, a
//! density threshold `ρ` and a timestamp `q_t`, return **all** points
//! whose `l`-square neighborhood contains at least `ρ·l²` objects at
//! `q_t` — as a union of rectangles of arbitrary shape and size.
//!
//! Two query engines are provided:
//!
//! * [`FrEngine`] — the exact *filtering–refinement* method (Section 5):
//!   a per-timestamp [density histogram](pdr_histogram::DensityHistogram)
//!   classifies grid cells into accepts / rejects / candidates using
//!   conservative and expansive neighborhoods ([`classify_cells`]); each
//!   candidate cell is refined with a TPR-tree range query and the
//!   two-level plane sweep of Algorithms 2–3 ([`refine_region`]).
//! * [`PaEngine`] — the approximate method (Section 6): the density
//!   surface is maintained as per-timestamp grids of 2-D Chebyshev
//!   polynomials, updated in closed form per object update, and queried
//!   by branch-and-bound on polynomial bounds.
//!
//! Supporting APIs reproduce everything the paper's evaluation needs:
//! stand-alone optimistic/pessimistic DH answers ([`dh_optimistic`] /
//! [`dh_pessimistic`]), the
//! prior-work baselines the introduction criticizes ([`baselines`]),
//! the `r_fp` / `r_fn` accuracy metrics ([`accuracy`]), and an exact
//! brute-force reference ([`ExactOracle`]).
//!
//! # Architecture: the engine plane
//!
//! All methods sit behind one trait, [`DensityEngine`], which fixes the
//! ingest/query contract for the whole system:
//!
//! ```text
//!              reports                 protocol updates
//!   clients ───────────► ObjectTable ─────────────────► ServeDriver
//!                                                            │ apply_batch(&mut) / advance_to(&mut)
//!                        ┌───────────────┬─────────────┬─────┴────────┬──────────────┐
//!                        ▼               ▼             ▼              ▼              ▼
//!                    FrEngine        PaEngine     ExactOracle    DhEngine     baselines
//!                        ▲               ▲             ▲              ▲              ▲
//!                        └───────────────┴─────────────┴──────────────┴──────────────┘
//!                                       query(&self) → EngineAnswer
//! ```
//!
//! * **Writes are exclusive.** [`DensityEngine::apply_batch`] and
//!   [`DensityEngine::advance_to`] take `&mut self`; a batch is fully
//!   applied before any query can run.
//! * **Reads are shared.** [`DensityEngine::query`] takes `&self` and
//!   every engine is `Sync`, so one engine instance serves any number
//!   of concurrent query threads between batches. The FR engine keeps
//!   its per-timestamp classification cache behind a `RwLock` keyed by
//!   the histogram epoch (double-checked locking), so concurrent
//!   readers get bit-identical answers and each distinct
//!   `(timestamp, ρ, l)` is classified at most once.
//! * **Construction is declarative.** [`EngineSpec`] builds any engine
//!   as a `Box<dyn DensityEngine>`; the serve driver in `pdr-workload`
//!   owns a traffic simulator and pumps each tick's updates into every
//!   boxed engine, then runs a query mix — the CLI, benches and
//!   experiments all ride that one driver.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baselines;
mod colcodec;
mod dh_answers;
mod engine;
mod exact;
pub mod exec;
mod filter;
mod fr;
mod index;
mod metrics;
pub mod obs;
mod pa;
mod query;
mod replica;
mod shard;
pub mod sub;
mod sweep;
mod wal;

pub use dh_answers::{dh_optimistic, dh_pessimistic};
pub use engine::{
    DenseCellEngine, DensityEngine, DhEngine, DhMode, EdqEngine, EngineAnswer, EngineSpec,
    EngineSpecError, EngineStats,
};
pub use exact::{exact_dense_regions, point_density, ExactOracle};
pub use exec::Executor;
pub use filter::{classify_cells, CellClass, Classification};
pub use fr::{FrAnswer, FrCacheCounters, FrConfig, FrEngine, INTERVAL_COALESCE_EVERY};
pub use index::RangeIndex;
pub use metrics::{accuracy, Accuracy, Scoreboard};
pub use obs::{Counter, Histogram, HistogramSnapshot, ObsReport, StageTimer};
pub use pa::{PaAnswer, PaConfig, PaEngine};
pub use query::{DenseThreshold, PdrQuery};
pub use replica::{IngestReport, Replica};
pub use shard::{
    LogShipment, PartLeaf, Partition, RebalanceReport, ShardMap, ShardedEngine, ShippedSegment,
    SplitPolicy, TailSummary, TopologyError,
};
pub use sub::{
    diff_canonical, AnswerDelta, QtPolicy, SubError, SubId, Subscription, SubscriptionTable,
};
pub use sweep::{refine_region, refine_region_set};
pub use wal::{
    encode_segment_header, open_checkpoint, record_boundaries, replay, replay_any, seal_checkpoint,
    segment_name, RecoverError, SegmentHeader, SegmentInfo, Wal, WalCodec, WalRecord, WalReplay,
    LEGACY_JOURNAL_NAME, SEGMENT_HEADER_LEN,
};

// Fault-injection surface of the storage plane, re-exported so engine
// users need not depend on `pdr-storage` directly.
pub use pdr_storage::{FaultPlan, FaultPlanError, FaultStats, StorageError};
