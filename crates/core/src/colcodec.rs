//! Columnar compression primitives shared by the codec2 WAL record
//! format and the v2 FR checkpoint motion table.
//!
//! The workload's numeric columns are highly predictable: object ids
//! are dense and batch-local, timestamps are monotone (often constant
//! within a batch), and consecutive motion rows share sign, exponent
//! and high-mantissa bits. Each f64 column is therefore stored as the
//! XOR of every value's raw bits against a caller-chosen *prediction*;
//! the residual keeps only its significant low bytes, with per-value
//! byte counts packed two-per-byte in a nibble header. A perfect
//! prediction costs zero payload bytes (only its half-nibble).
//!
//! Correctness never depends on prediction quality: encoder and
//! decoder must merely compute the *same* prediction for each row, and
//! XOR makes the round trip bit-exact for every `f64` pattern
//! (including `-0.0`, subnormals and non-finite bits).

use pdr_mobject::MotionState;
use pdr_storage::{ByteReader, ByteWriter, CodecError};

/// Number of low bytes of `x` that carry information (0 for `x == 0`,
/// 8 when the top byte is non-zero).
fn significant_bytes(x: u64) -> u8 {
    (8 - x.leading_zeros() / 8) as u8
}

/// Writes one XOR-residual column: `values[i] ^ preds[i]` encoded as a
/// nibble-packed significant-byte-count header followed by the
/// concatenated significant low bytes.
pub(crate) fn put_xor_column(w: &mut ByteWriter, values: &[u64], preds: &[u64]) {
    debug_assert_eq!(values.len(), preds.len());
    let resid: Vec<u64> = values.iter().zip(preds).map(|(v, p)| v ^ p).collect();
    let mut i = 0;
    while i < resid.len() {
        let lo = significant_bytes(resid[i]);
        let hi = if i + 1 < resid.len() {
            significant_bytes(resid[i + 1])
        } else {
            0
        };
        w.put_u8(lo | (hi << 4));
        i += 2;
    }
    for &r in &resid {
        let n = significant_bytes(r) as usize;
        w.put_bytes(&r.to_le_bytes()[..n]);
    }
}

/// Reads a column written by [`put_xor_column`]. `pred` is called with
/// the row index and the values decoded so far *in this column*; it
/// must reproduce the encoder's prediction exactly.
pub(crate) fn get_xor_column<F>(
    r: &mut ByteReader<'_>,
    n: usize,
    mut pred: F,
) -> Result<Vec<u64>, CodecError>
where
    F: FnMut(usize, &[u64]) -> u64,
{
    let packed = r.get_bytes(n.div_ceil(2))?.to_vec();
    let mut counts = Vec::with_capacity(n);
    for byte in packed {
        for nibble in [byte & 0x0F, byte >> 4] {
            if counts.len() == n {
                break;
            }
            if nibble > 8 {
                return Err(CodecError::Corrupt("column byte count exceeds 8"));
            }
            counts.push(nibble as usize);
        }
    }
    let mut out = Vec::with_capacity(n);
    for (i, &count) in counts.iter().enumerate() {
        let mut le = [0u8; 8];
        le[..count].copy_from_slice(r.get_bytes(count)?);
        let resid = u64::from_le_bytes(le);
        let p = pred(i, &out);
        out.push(resid ^ p);
    }
    Ok(out)
}

/// Writes one XOR-residual column with *class-coded* byte counts: the
/// three most frequent significant-byte counts of the batch become a
/// 2-byte class table, each value then costs 2 bits of class code
/// (code 3 = escape to an explicit nibble). On real traffic the count
/// distribution is sharply concentrated (velocity residuals are almost
/// all 7–8 bytes, origin residuals 5–7), so this halves the per-value
/// header cost of [`put_xor_column`] from 4 bits to ~2.
pub(crate) fn put_xor_column_classed(w: &mut ByteWriter, values: &[u64], preds: &[u64]) {
    debug_assert_eq!(values.len(), preds.len());
    if values.is_empty() {
        return;
    }
    let resid: Vec<u64> = values.iter().zip(preds).map(|(v, p)| v ^ p).collect();
    let counts: Vec<u8> = resid.iter().map(|&r| significant_bytes(r)).collect();
    let mut hist = [0usize; 9];
    for &c in &counts {
        hist[c as usize] += 1;
    }
    let mut order: Vec<u8> = (0..=8).collect();
    order.sort_by_key(|&c| (std::cmp::Reverse(hist[c as usize]), c));
    let classes = [order[0], order[1], order[2]];
    w.put_u8(classes[0] | (classes[1] << 4));
    w.put_u8(classes[2]); // high nibble reserved, must be zero
    let code = |c: u8| classes.iter().position(|&k| k == c).unwrap_or(3) as u8;
    let mut i = 0;
    while i < counts.len() {
        let mut byte = 0u8;
        for j in 0..4 {
            if i + j < counts.len() {
                byte |= code(counts[i + j]) << (2 * j);
            }
        }
        w.put_u8(byte);
        i += 4;
    }
    let escapes: Vec<u8> = counts.iter().copied().filter(|&c| code(c) == 3).collect();
    let mut i = 0;
    while i < escapes.len() {
        let hi = if i + 1 < escapes.len() {
            escapes[i + 1]
        } else {
            0
        };
        w.put_u8(escapes[i] | (hi << 4));
        i += 2;
    }
    for (&r, &c) in resid.iter().zip(&counts) {
        w.put_bytes(&r.to_le_bytes()[..c as usize]);
    }
}

/// Reads a column written by [`put_xor_column_classed`]. `pred` has
/// the same contract as in [`get_xor_column`].
pub(crate) fn get_xor_column_classed<F>(
    r: &mut ByteReader<'_>,
    n: usize,
    mut pred: F,
) -> Result<Vec<u64>, CodecError>
where
    F: FnMut(usize, &[u64]) -> u64,
{
    if n == 0 {
        return Ok(Vec::new());
    }
    let b0 = r.get_u8()?;
    let b1 = r.get_u8()?;
    let classes = [b0 & 0x0F, b0 >> 4, b1 & 0x0F];
    if classes.iter().any(|&c| c > 8) || b1 >> 4 != 0 {
        return Err(CodecError::Corrupt("column class table out of range"));
    }
    let code_bytes = r.get_bytes(n.div_ceil(4))?.to_vec();
    let mut codes = Vec::with_capacity(n);
    for byte in code_bytes {
        for j in 0..4 {
            if codes.len() == n {
                break;
            }
            codes.push((byte >> (2 * j)) & 3);
        }
    }
    let num_escapes = codes.iter().filter(|&&c| c == 3).count();
    let escape_bytes = r.get_bytes(num_escapes.div_ceil(2))?.to_vec();
    let mut escapes = Vec::with_capacity(num_escapes);
    for byte in escape_bytes {
        for nibble in [byte & 0x0F, byte >> 4] {
            if escapes.len() == num_escapes {
                break;
            }
            if nibble > 8 {
                return Err(CodecError::Corrupt("column byte count exceeds 8"));
            }
            escapes.push(nibble as usize);
        }
    }
    let mut next_escape = 0;
    let mut out = Vec::with_capacity(n);
    for (i, &code) in codes.iter().enumerate() {
        let count = if code == 3 {
            let c = escapes[next_escape];
            next_escape += 1;
            c
        } else {
            classes[code as usize] as usize
        };
        let mut le = [0u8; 8];
        le[..count].copy_from_slice(r.get_bytes(count)?);
        let resid = u64::from_le_bytes(le);
        let p = pred(i, &out);
        out.push(resid ^ p);
    }
    Ok(out)
}

/// Writes a motion table (id plus [`MotionState`] per row) in columnar
/// form: delta-varint ids, delta-varint `t_ref`, then the four f64
/// columns XOR-predicted from the previous row. Callers are expected
/// to pass rows sorted by id (checkpoints do), but any order
/// round-trips.
pub(crate) fn put_motion_table(w: &mut ByteWriter, rows: &[(u64, MotionState)]) {
    w.put_uvarint(rows.len() as u64);
    if rows.is_empty() {
        return;
    }
    w.put_uvarint(rows[0].0);
    for pair in rows.windows(2) {
        w.put_ivarint(pair[1].0.wrapping_sub(pair[0].0) as i64);
    }
    w.put_uvarint(rows[0].1.t_ref);
    for pair in rows.windows(2) {
        w.put_ivarint(pair[1].1.t_ref.wrapping_sub(pair[0].1.t_ref) as i64);
    }
    let columns: [Vec<u64>; 4] = [
        rows.iter().map(|r| r.1.origin.x.to_bits()).collect(),
        rows.iter().map(|r| r.1.origin.y.to_bits()).collect(),
        rows.iter().map(|r| r.1.velocity.x.to_bits()).collect(),
        rows.iter().map(|r| r.1.velocity.y.to_bits()).collect(),
    ];
    for col in &columns {
        let preds: Vec<u64> = std::iter::once(0)
            .chain(col[..col.len() - 1].iter().copied())
            .collect();
        put_xor_column(w, col, &preds);
    }
}

/// Reads a motion table written by [`put_motion_table`]. Returns raw
/// rows; the caller validates finiteness (e.g. via
/// `MotionState::try_new`).
pub(crate) fn get_motion_table(
    r: &mut ByteReader<'_>,
) -> Result<Vec<(u64, MotionState)>, CodecError> {
    let n = r.get_uvarint()? as usize;
    if n == 0 {
        return Ok(Vec::new());
    }
    if n > r.remaining() {
        return Err(CodecError::Corrupt("motion table count exceeds payload"));
    }
    let mut ids = Vec::with_capacity(n);
    ids.push(r.get_uvarint()?);
    for i in 1..n {
        let d = r.get_ivarint()?;
        ids.push(ids[i - 1].wrapping_add(d as u64));
    }
    let mut t_ref = Vec::with_capacity(n);
    t_ref.push(r.get_uvarint()?);
    for i in 1..n {
        let d = r.get_ivarint()?;
        t_ref.push(t_ref[i - 1].wrapping_add(d as u64));
    }
    let prev = |i: usize, done: &[u64]| if i == 0 { 0 } else { done[i - 1] };
    let ox = get_xor_column(r, n, prev)?;
    let oy = get_xor_column(r, n, prev)?;
    let vx = get_xor_column(r, n, prev)?;
    let vy = get_xor_column(r, n, prev)?;
    let mut rows = Vec::with_capacity(n);
    for i in 0..n {
        rows.push((
            ids[i],
            MotionState {
                origin: pdr_geometry::Point::new(f64::from_bits(ox[i]), f64::from_bits(oy[i])),
                velocity: pdr_geometry::Point::new(f64::from_bits(vx[i]), f64::from_bits(vy[i])),
                t_ref: t_ref[i],
            },
        ));
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdr_geometry::Point;

    #[test]
    fn xor_column_round_trips_exotic_bit_patterns() {
        let values: Vec<u64> = vec![
            0,
            1,
            u64::MAX,
            f64::to_bits(-0.0),
            f64::to_bits(f64::INFINITY),
            f64::to_bits(f64::NAN),
            f64::to_bits(5e-324), // smallest subnormal
            f64::to_bits(1.0),
            f64::to_bits(1.0 + f64::EPSILON),
        ];
        let preds: Vec<u64> = std::iter::once(0)
            .chain(values[..values.len() - 1].iter().copied())
            .collect();
        let mut w = ByteWriter::new();
        put_xor_column(&mut w, &values, &preds);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let got = get_xor_column(
            &mut r,
            values.len(),
            |i, done| {
                if i == 0 {
                    0
                } else {
                    done[i - 1]
                }
            },
        )
        .expect("decodes");
        assert_eq!(got, values);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn perfect_prediction_costs_only_nibbles() {
        let values = vec![f64::to_bits(42.5); 100];
        let preds = values.clone();
        let mut w = ByteWriter::new();
        put_xor_column(&mut w, &values, &preds);
        assert_eq!(w.len(), 50); // 100 nibbles, zero payload bytes
    }

    #[test]
    fn classed_column_round_trips_exotic_bit_patterns() {
        let values: Vec<u64> = vec![
            0,
            1,
            u64::MAX,
            f64::to_bits(-0.0),
            f64::to_bits(f64::INFINITY),
            f64::to_bits(f64::NAN),
            f64::to_bits(5e-324),
            f64::to_bits(1.0),
            f64::to_bits(1.0 + f64::EPSILON),
            0x1234,
            0x0056_0000_0000,
        ];
        let preds: Vec<u64> = std::iter::once(0)
            .chain(values[..values.len() - 1].iter().copied())
            .collect();
        let mut w = ByteWriter::new();
        put_xor_column_classed(&mut w, &values, &preds);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let got =
            get_xor_column_classed(
                &mut r,
                values.len(),
                |i, done| {
                    if i == 0 {
                        0
                    } else {
                        done[i - 1]
                    }
                },
            )
            .expect("decodes");
        assert_eq!(got, values);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn classed_column_concentrated_counts_cost_two_bits_each() {
        // All residuals the same width: every value hits class 0, so
        // the header is 2 table bytes + 2 bits/value and no escapes.
        let values: Vec<u64> = (0..100u64).map(|i| 0x4030_0000_0000_0000 | i).collect();
        let preds = vec![0u64; values.len()];
        let mut w = ByteWriter::new();
        put_xor_column_classed(&mut w, &values, &preds);
        assert_eq!(w.len(), 2 + 25 + 100 * 8);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let got = get_xor_column_classed(&mut r, values.len(), |_, _| 0).expect("decodes");
        assert_eq!(got, values);
    }

    #[test]
    fn classed_column_rejects_corrupt_headers() {
        // Class nibble 9 in the table.
        let mut r = ByteReader::new(&[0x09u8, 0, 0, 0, 0, 0, 0, 0]);
        assert!(matches!(
            get_xor_column_classed(&mut r, 2, |_, _| 0),
            Err(CodecError::Corrupt(_))
        ));
        // Reserved high nibble of the second table byte set.
        let mut r = ByteReader::new(&[0x00u8, 0x10, 0, 0, 0, 0, 0, 0]);
        assert!(matches!(
            get_xor_column_classed(&mut r, 2, |_, _| 0),
            Err(CodecError::Corrupt(_))
        ));
        // Escape nibble 9.
        // Table {0,1,2}, both values coded 3 (escape), escape nibble 9.
        let mut r = ByteReader::new(&[0x10u8, 0x02, 0x0F, 0x09, 0, 0, 0, 0]);
        assert!(matches!(
            get_xor_column_classed(&mut r, 2, |_, _| 0),
            Err(CodecError::Corrupt(_))
        ));
    }

    #[test]
    fn motion_table_round_trips() {
        let rows: Vec<(u64, MotionState)> = (0..57)
            .map(|i| {
                (
                    (i * 3) as u64,
                    MotionState {
                        origin: Point::new(10.0 + i as f64 * 0.25, 90.0 - i as f64),
                        velocity: Point::new(1.0 / (i + 1) as f64, -0.5),
                        t_ref: 1000 + (i % 7) as u64,
                    },
                )
            })
            .collect();
        let mut w = ByteWriter::new();
        put_motion_table(&mut w, &rows);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let got = get_motion_table(&mut r).expect("decodes");
        assert_eq!(r.remaining(), 0);
        assert_eq!(got.len(), rows.len());
        for (a, b) in rows.iter().zip(&got) {
            assert_eq!(a.0, b.0);
            assert_eq!(a.1.t_ref, b.1.t_ref);
            assert_eq!(a.1.origin.x.to_bits(), b.1.origin.x.to_bits());
            assert_eq!(a.1.origin.y.to_bits(), b.1.origin.y.to_bits());
            assert_eq!(a.1.velocity.x.to_bits(), b.1.velocity.x.to_bits());
            assert_eq!(a.1.velocity.y.to_bits(), b.1.velocity.y.to_bits());
        }

        let empty: Vec<(u64, MotionState)> = Vec::new();
        let mut w = ByteWriter::new();
        put_motion_table(&mut w, &empty);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(get_motion_table(&mut r).expect("decodes").is_empty());
    }

    #[test]
    fn corrupt_nibble_rejected() {
        // count=9 in the low nibble of the header byte.
        let bytes = [0x09u8, 0, 0, 0, 0, 0, 0, 0, 0, 0];
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(
            get_xor_column(&mut r, 2, |_, _| 0),
            Err(CodecError::Corrupt(_))
        ));
    }
}
