//! Brute-force reference implementations (the ground truth `D` of the
//! accuracy metrics, and the oracle the engines are tested against).

use crate::{refine_region, DenseThreshold, PdrQuery};
use pdr_geometry::{LSquare, Point, Rect, RegionSet};
use pdr_mobject::{ObjectTable, Timestamp, Update};

/// The point density of Definition 2, computed by brute force:
/// `d(p) = n(S_p^l) / l²`.
pub fn point_density(p: Point, l: f64, objects: &[Point]) -> f64 {
    LSquare::new(p, l).density_of(objects)
}

/// The exact ρ-dense region of a *static* snapshot, over `bounds`, by
/// running the plane sweep on the entire region at once. This is the
/// ground truth `D` used for `r_fp` / `r_fn` (the FR engine computes
/// the same set faster by filtering first; equality of the two is a
/// tested invariant).
pub fn exact_dense_regions(objects: &[Point], bounds: &Rect, query: &PdrQuery) -> RegionSet {
    let threshold = DenseThreshold::of(query);
    // Only objects within bounds ⊕ l/2 can influence any in-bounds point.
    let inflated = bounds.inflate(query.l / 2.0);
    let mut relevant: Vec<Point> = objects
        .iter()
        .copied()
        .filter(|p| inflated.contains(*p))
        .collect();
    let mut rs = RegionSet::from_rects(refine_region(bounds, &mut relevant, threshold, query.l));
    rs.coalesce();
    rs
}

/// A brute-force oracle bundling object positions with query helpers;
/// used pervasively in tests and in the accuracy experiments, where
/// every method's answer is compared against `ExactOracle::dense_regions`.
///
/// The oracle serves two roles:
///
/// * a **frozen snapshot** (its original form): `new` captures fixed
///   positions and [`dense_regions`](Self::dense_regions) /
///   [`density_at`](Self::density_at) / [`is_dense`](Self::is_dense)
///   answer against exactly that snapshot;
/// * a **live engine** (the [`DensityEngine`](crate::DensityEngine)
///   plane): protocol updates fed through [`apply`](Self::apply) are
///   replayed into an internal [`ObjectTable`], and
///   [`dense_regions_at`](Self::dense_regions_at) answers against the
///   frozen snapshot *plus* the live objects extrapolated to the query
///   timestamp.
///
/// Existing snapshot users never call `apply`, so their behavior is
/// unchanged.
pub struct ExactOracle {
    bounds: Rect,
    positions: Vec<Point>,
    table: ObjectTable,
    updates_applied: u64,
    missed_deletes: u64,
    /// Standing subscriptions (maintained by recompute — the oracle has
    /// no incremental path and does not need one).
    pub(crate) subs: crate::sub::SubscriptionTable,
}

impl ExactOracle {
    /// Creates an oracle over a snapshot of object positions.
    pub fn new(bounds: Rect, positions: Vec<Point>) -> Self {
        ExactOracle {
            bounds,
            positions,
            table: ObjectTable::new(),
            updates_applied: 0,
            missed_deletes: 0,
            subs: crate::sub::SubscriptionTable::new(),
        }
    }

    /// Applies one protocol update to the live object table.
    pub fn apply(&mut self, update: &Update) {
        self.updates_applied += 1;
        // `ObjectTable::apply` only reports failure for deletions of
        // unknown objects, so a `false` here is exactly a missed delete.
        if !self.table.apply(update) {
            self.missed_deletes += 1;
        }
    }

    /// Protocol updates applied via [`apply`](Self::apply).
    pub fn updates_applied(&self) -> u64 {
        self.updates_applied
    }

    /// Deletions of objects the live table did not hold.
    pub fn missed_deletes(&self) -> u64 {
        self.missed_deletes
    }

    /// Live objects in the update-fed table (excludes the frozen
    /// snapshot positions).
    pub fn live_objects(&self) -> usize {
        self.table.len()
    }

    /// Every position the oracle knows at timestamp `t`: the frozen
    /// snapshot plus the live objects extrapolated to `t`.
    pub fn positions_at(&self, t: Timestamp) -> Vec<Point> {
        let mut all = self.positions.clone();
        all.extend(self.table.positions_at(t));
        all
    }

    /// The exact dense region at the query's timestamp, over frozen ∪
    /// extrapolated live objects. Equals
    /// [`dense_regions`](Self::dense_regions) when no updates were
    /// applied.
    pub fn dense_regions_at(&self, query: &PdrQuery) -> RegionSet {
        if self.table.is_empty() {
            return self.dense_regions(query);
        }
        exact_dense_regions(&self.positions_at(query.q_t), &self.bounds, query)
    }

    /// The monitored region.
    pub fn bounds(&self) -> Rect {
        self.bounds
    }

    /// The snapshot positions.
    pub fn positions(&self) -> &[Point] {
        &self.positions
    }

    /// Brute-force point density at `p`.
    pub fn density_at(&self, p: Point, l: f64) -> f64 {
        point_density(p, l, &self.positions)
    }

    /// `true` when `p` is ρ-dense (Definition 3).
    pub fn is_dense(&self, p: Point, query: &PdrQuery) -> bool {
        let sq = LSquare::new(p, query.l);
        let n = self.positions.iter().filter(|&&o| sq.contains(o)).count();
        DenseThreshold::of(query).met_by(n)
    }

    /// The exact dense region.
    pub fn dense_regions(&self, query: &PdrQuery) -> RegionSet {
        exact_dense_regions(&self.positions, &self.bounds, query)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn density_counts_half_open() {
        let objects = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(-1.0, 0.0),
        ];
        // l = 2 around origin: contains (0,0) and (1,1); excludes (-1,0).
        assert_eq!(point_density(Point::ORIGIN, 2.0, &objects), 2.0 / 4.0);
    }

    #[test]
    fn oracle_agrees_with_sweep() {
        let bounds = Rect::new(0.0, 0.0, 30.0, 30.0);
        let mut objects = vec![Point::new(10.0, 10.0); 5];
        objects.push(Point::new(25.0, 25.0));
        let oracle = ExactOracle::new(bounds, objects);
        let q = PdrQuery::new(5.0 / 16.0, 4.0, 0); // threshold = 5 objects
        let region = oracle.dense_regions(&q);
        assert!(!region.is_empty());
        assert!(region.contains(Point::new(10.0, 10.0)));
        assert!(!region.contains(Point::new(25.0, 25.0)));
        assert!(oracle.is_dense(Point::new(10.0, 10.0), &q));
        assert!(!oracle.is_dense(Point::new(25.0, 25.0), &q));
    }

    #[test]
    fn out_of_bounds_objects_still_count_near_border() {
        let bounds = Rect::new(0.0, 0.0, 10.0, 10.0);
        // Cluster just outside the left border.
        let objects = vec![Point::new(-0.4, 5.0); 4];
        let oracle = ExactOracle::new(bounds, objects);
        let q = PdrQuery::new(1.0, 2.0, 0); // threshold 4
        let region = oracle.dense_regions(&q);
        // Border points whose neighborhood reaches outside are dense:
        // need -0.4 in (x-1, x+1] => x in [-1.4, 0.6).
        assert!(region.contains(Point::new(0.1, 5.0)));
        assert!(!region.contains(Point::new(1.0, 5.0)));
    }
}
