//! Log-shipping read replicas of a sharded primary.
//!
//! A [`Replica`] wraps its own [`ShardedEngine`] (same grid, same
//! inner-engine configuration as the primary) and keeps it current by
//! ingesting [`LogShipment`]s — sealed checkpoints plus per-shard WAL
//! segment deltas cut by the primary's
//! [`wal_since`](ShardedEngine::wal_since). Because every engine
//! mutation is deterministic and the shipped records are exactly the
//! primary's post-routing WAL, a caught-up replica answers queries
//! **bit-identically** to the primary (the same invariant crash
//! recovery rests on — a replica is recovery running continuously on
//! another machine).
//!
//! Semantics:
//!
//! * **Read-only.** The replica serves `query`/`subscribe` traffic;
//!   direct `apply_batch`/`advance_to`/`bulk_load` calls are dropped
//!   and counted (`replica_updates_dropped`), never applied — state
//!   changes arrive only through [`Replica::ingest`].
//! * **Bounded staleness, reported.** Every shipment carries the
//!   primary's protocol time when it was cut; the replica's lag gauge
//!   is that time minus the last `advance_to` it has applied. Lag `0`
//!   means caught up *as of the last sync* — the bound is refreshed,
//!   not streamed.
//! * **Self-healing.** If the primary restored from a checkpoint (its
//!   segments reset), the replica's offsets stop matching and the next
//!   [`wal_since`](ShardedEngine::wal_since) automatically returns a
//!   bootstrap shipment; [`Replica::ingest`] restores it and replays
//!   the tail.

use crate::engine::{DensityEngine, EngineAnswer, EngineStats};
use crate::obs::ObsReport;
use crate::shard::{LogShipment, ShardedEngine};
use crate::sub::{AnswerDelta, QtPolicy, SubError, SubId, SubscriptionTable};
use crate::wal::RecoverError;
use crate::PdrQuery;
use pdr_geometry::{Rect, RegionSet};
use pdr_mobject::{MotionState, ObjectId, Timestamp, Update};
use pdr_storage::{CodecError, FaultPlan, FaultStats, StorageError};

/// A read-only, log-shipping replica of a primary [`ShardedEngine`].
pub struct Replica {
    inner: ShardedEngine,
    /// Primary segment byte offset applied through, per shard.
    applied: Vec<usize>,
    /// The primary segment epoch `applied` is valid within.
    epoch: u64,
    /// The primary's protocol time at the last ingested shipment.
    primary_t: Timestamp,
    /// The last `advance_to` timestamp this replica has applied.
    applied_t: Timestamp,
    shipments: u64,
    bootstraps: u64,
    shipped_bytes: u64,
    records_applied: u64,
    updates_dropped: u64,
}

/// What one [`Replica::ingest`] call did, for logs and wire responses.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IngestReport {
    /// `true` when the shipment carried a checkpoint the replica
    /// restored before replaying tails.
    pub bootstrapped: bool,
    /// WAL records applied across all shards.
    pub records: u64,
    /// Updates contained in the applied batch records.
    pub updates: u64,
    /// The staleness bound after ingesting (see [`Replica::lag`]).
    pub lag: u64,
}

impl Replica {
    /// Wraps a freshly built plane (same grid and inner configuration
    /// as the primary) as an empty replica awaiting its first
    /// bootstrap shipment. Until that bootstrap lands the replica
    /// reports **empty** offsets, so the primary's
    /// [`wal_since`](ShardedEngine::wal_since) always cuts a
    /// checkpoint-carrying shipment first — the replica's own fresh
    /// segments say nothing about the primary's log.
    pub fn new(inner: ShardedEngine) -> Self {
        Replica {
            inner,
            applied: Vec::new(),
            epoch: 0,
            primary_t: 0,
            applied_t: 0,
            shipments: 0,
            bootstraps: 0,
            shipped_bytes: 0,
            records_applied: 0,
            updates_dropped: 0,
        }
    }

    /// The per-shard primary offsets this replica has applied through —
    /// what it reports to [`ShardedEngine::wal_since`] to receive only
    /// the delta.
    pub fn applied_offsets(&self) -> &[usize] {
        &self.applied
    }

    /// The primary segment epoch [`applied_offsets`](Self::applied_offsets)
    /// is valid within; reported alongside them to
    /// [`ShardedEngine::wal_since`].
    pub fn applied_epoch(&self) -> u64 {
        self.epoch
    }

    /// The replica's staleness bound: the primary's protocol time at
    /// the last sync minus the last applied `advance_to`. `0` means
    /// caught up as of that sync.
    pub fn lag(&self) -> u64 {
        self.primary_t.saturating_sub(self.applied_t)
    }

    /// The last applied `advance_to` timestamp.
    pub fn applied_t(&self) -> Timestamp {
        self.applied_t
    }

    /// Shipments ingested so far (including bootstraps).
    pub fn shipments(&self) -> u64 {
        self.shipments
    }

    /// Bootstrap (checkpoint-carrying) shipments ingested so far.
    pub fn bootstraps(&self) -> u64 {
        self.bootstraps
    }

    /// Ingests one shipment: restores the checkpoint when present,
    /// then replays every shipped segment tail in shard order. A
    /// shipment whose offsets do not line up with what this replica
    /// has applied is refused with a mismatch — the caller re-syncs
    /// from empty offsets, which makes the primary cut a bootstrap.
    pub fn ingest(&mut self, ship: &LogShipment) -> Result<IngestReport, RecoverError> {
        if ship.shards as usize != self.inner.map().shards() {
            return Err(RecoverError::Mismatch(
                "shipment cut at a different shard count",
            ));
        }
        if ship.segments.len() != ship.shards as usize {
            return Err(RecoverError::Mismatch("shipment is missing shards"));
        }
        let mut report = IngestReport::default();
        if let Some(cp) = &ship.checkpoint {
            self.inner.restore_from(cp)?;
            report.bootstrapped = true;
            self.bootstraps += 1;
            // The checkpoint state corresponds to each segment's
            // `start`; tails replay forward from there. A bootstrap
            // ships everything through the cut, so after the tails
            // land the replica is caught up to the primary's clock.
            self.applied = vec![0; ship.shards as usize];
            for seg in &ship.segments {
                self.applied[seg.shard as usize] = seg.start;
            }
            self.epoch = ship.epoch;
            self.applied_t = ship.t_base;
        } else if self.applied.is_empty() {
            // A primary that has never checkpointed legitimately ships
            // its **full history** with no checkpoint: every segment
            // starts right past its header, which this fresh plane can
            // replay from scratch. Anything else needs a checkpoint.
            if ship
                .segments
                .iter()
                .any(|s| s.start != crate::wal::SEGMENT_HEADER_LEN)
            {
                return Err(RecoverError::Mismatch(
                    "replica has no state yet; first shipment must bootstrap",
                ));
            }
            self.applied = vec![crate::wal::SEGMENT_HEADER_LEN; ship.shards as usize];
            self.epoch = ship.epoch;
        } else if ship.epoch != self.epoch {
            return Err(RecoverError::Mismatch(
                "incremental shipment from a different segment epoch",
            ));
        }
        for seg in &ship.segments {
            let i = seg.shard as usize;
            if i >= self.applied.len() {
                return Err(RecoverError::Mismatch("shipment names an unknown shard"));
            }
            if seg.start != self.applied[i] {
                return Err(RecoverError::Codec(CodecError::Corrupt(
                    "shipment offset does not match applied position",
                )));
            }
            let summary = self.inner.apply_segment_tail(i, &seg.bytes)?;
            self.applied[i] += seg.bytes.len();
            self.shipped_bytes += seg.bytes.len() as u64;
            report.records += summary.records;
            report.updates += summary.updates;
            if let Some(t) = summary.last_advance {
                self.applied_t = self.applied_t.max(t);
            }
        }
        self.primary_t = self.primary_t.max(ship.t_base);
        self.shipments += 1;
        self.records_applied += report.records;
        report.lag = self.lag();
        Ok(report)
    }
}

impl DensityEngine for Replica {
    fn name(&self) -> &'static str {
        "replica"
    }

    // ------------------------------------------------------------------
    // Read-only surface: mutations are dropped and counted, never
    // applied. State arrives only through `ingest`.
    // ------------------------------------------------------------------

    fn bulk_load(&mut self, objects: &[(ObjectId, MotionState)], _t_now: Timestamp) {
        self.updates_dropped += objects.len() as u64;
    }

    fn apply_batch(&mut self, updates: &[Update]) {
        self.updates_dropped += updates.len() as u64;
    }

    fn advance_to(&mut self, _t_now: Timestamp) {}

    // ------------------------------------------------------------------
    // Query surface: served from the replicated plane.
    // ------------------------------------------------------------------

    fn query(&self, q: &PdrQuery) -> EngineAnswer {
        self.inner.query(q)
    }

    fn try_query(&self, q: &PdrQuery) -> Result<EngineAnswer, StorageError> {
        self.inner.try_query(q)
    }

    fn degraded_query(&self, q: &PdrQuery) -> Option<EngineAnswer> {
        self.inner.degraded_query(q)
    }

    fn interval_query(&self, rho: f64, l: f64, from: Timestamp, to: Timestamp) -> RegionSet {
        self.inner.interval_query(rho, l, from, to)
    }

    fn checkpoint(&self) -> Option<Vec<u8>> {
        self.inner.checkpoint()
    }

    fn restore_from(&mut self, bytes: &[u8]) -> Result<(), RecoverError> {
        self.inner.restore_from(bytes)
    }

    fn set_fault_plan(&self, plan: FaultPlan) {
        self.inner.set_fault_plan(plan);
    }

    fn fault_stats(&self) -> FaultStats {
        self.inner.fault_stats()
    }

    fn subscriptions(&self) -> Option<&SubscriptionTable> {
        self.inner.subscriptions()
    }

    fn subscriptions_mut(&mut self) -> Option<&mut SubscriptionTable> {
        self.inner.subscriptions_mut()
    }

    fn register_subscription(
        &mut self,
        rho: f64,
        l: f64,
        region: Rect,
        policy: QtPolicy,
    ) -> Result<SubId, SubError> {
        self.inner.register_subscription(rho, l, region, policy)
    }

    fn unregister_subscription(&mut self, id: SubId) -> bool {
        self.inner.unregister_subscription(id)
    }

    fn maintain_subscriptions(&mut self, now: Timestamp) -> Vec<AnswerDelta> {
        // Standing queries on a replica are maintained against
        // *applied* time: a subscription never observes state the
        // replica has not replayed.
        let t = now.min(self.applied_t);
        self.inner.maintain_subscriptions(t)
    }

    fn stats(&self) -> EngineStats {
        let mut st = self.inner.stats();
        st.rejected_updates += self.updates_dropped;
        st
    }

    fn obs(&self) -> ObsReport {
        let mut report = self.inner.obs();
        report.counters.push(("replica_lag", self.lag()));
        report.counters.push(("replica_shipments", self.shipments));
        report
            .counters
            .push(("replica_bootstraps", self.bootstraps));
        report
            .counters
            .push(("replica_shipped_bytes", self.shipped_bytes));
        report
            .counters
            .push(("replica_records_applied", self.records_applied));
        report
            .counters
            .push(("replica_updates_dropped", self.updates_dropped));
        report
    }

    fn set_obs_enabled(&mut self, on: bool) {
        self.inner.set_obs_enabled(on);
    }

    fn shard_metrics_json(&self) -> Option<String> {
        self.inner.shard_metrics_json()
    }

    fn as_replica(&self) -> Option<&Replica> {
        Some(self)
    }

    fn as_replica_mut(&mut self) -> Option<&mut Replica> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::ShardMap;
    use crate::{FrConfig, FrEngine};
    use pdr_geometry::Point;
    use pdr_mobject::TimeHorizon;

    fn fr_cfg() -> FrConfig {
        FrConfig {
            extent: 100.0,
            m: 20,
            horizon: TimeHorizon::new(4, 2),
            buffer_pages: 8,
            threads: 1,
        }
    }

    fn plane(sx: u32, sy: u32) -> ShardedEngine {
        let map = ShardMap::new(Rect::new(0.0, 0.0, 100.0, 100.0), sx, sy, 30.0);
        ShardedEngine::new("fr", map, TimeHorizon::new(4, 2), 0, 1, 14.0, |_| {
            Box::new(FrEngine::new(fr_cfg(), 0))
        })
    }

    fn seed_objects() -> Vec<(ObjectId, MotionState)> {
        (0..40u64)
            .map(|i| {
                (
                    ObjectId(i),
                    MotionState::new(
                        Point::new(5.0 + (i % 10) as f64 * 9.0, 5.0 + (i / 10) as f64 * 20.0),
                        Point::new(0.5, 0.25),
                        0,
                    ),
                )
            })
            .collect()
    }

    fn probe(primary: &ShardedEngine, replica: &Replica, t: Timestamp) {
        for q in [
            PdrQuery::new(2.0, 10.0, t),
            PdrQuery::new(1.0, 12.0, t + 1),
            PdrQuery::new(3.0, 14.0, t + 2),
        ] {
            let a = primary.query(&q);
            let b = replica.query(&q);
            assert_eq!(
                a.regions.rects(),
                b.regions.rects(),
                "replica answer diverged at t={t}"
            );
        }
    }

    #[test]
    fn replica_catches_up_and_answers_bit_identically() {
        let mut primary = plane(2, 2);
        primary.bulk_load(&seed_objects(), 0);
        let mut replica = Replica::new(plane(2, 2));

        // Bootstrap: empty offsets force a checkpoint shipment.
        let ship = primary.wal_since(replica.applied_epoch(), &[]);
        assert!(ship.checkpoint.is_some());
        let rep = replica.ingest(&ship).expect("bootstrap ingests");
        assert!(rep.bootstrapped);
        probe(&primary, &replica, 0);

        // Steady state: ticks ship incrementally.
        for t in 1..=6u64 {
            primary.advance_to(t);
            let batch: Vec<Update> = (0..6u64)
                .map(|i| {
                    Update::insert(
                        ObjectId(100 + t * 10 + i),
                        t,
                        MotionState::new(
                            Point::new(10.0 + i as f64 * 12.0, 40.0 + t as f64 * 3.0),
                            Point::new(-0.3, 0.4),
                            t,
                        ),
                    )
                })
                .collect();
            primary.apply_batch(&batch);
            let ship = primary.wal_since(replica.applied_epoch(), replica.applied_offsets());
            assert!(ship.checkpoint.is_none(), "steady state ships deltas");
            let rep = replica.ingest(&ship).expect("delta ingests");
            assert_eq!(rep.lag, 0, "caught up after sync");
            assert_eq!(replica.applied_offsets(), primary.wal_offsets());
            probe(&primary, &replica, t);
        }

        // Direct writes to the replica are dropped, not applied.
        let before = replica.stats().objects;
        replica.apply_batch(&[Update::insert(
            ObjectId(9999),
            6,
            MotionState::new(Point::new(50.0, 50.0), Point::new(0.0, 0.0), 6),
        )]);
        assert_eq!(replica.stats().objects, before);
        assert_eq!(
            replica
                .obs()
                .counters
                .iter()
                .find(|(n, _)| *n == "replica_updates_dropped")
                .map(|(_, v)| *v),
            Some(1)
        );
    }

    #[test]
    fn primary_restore_forces_replica_bootstrap() {
        let mut primary = plane(1, 1);
        primary.bulk_load(&seed_objects(), 0);
        let mut replica = Replica::new(plane(1, 1));
        replica
            .ingest(&primary.wal_since(replica.applied_epoch(), &[]))
            .expect("bootstrap");

        primary.advance_to(1);
        replica
            .ingest(&primary.wal_since(replica.applied_epoch(), replica.applied_offsets()))
            .expect("delta");

        // The primary crashes and restores: its segments reset, so the
        // replica's offsets overshoot and the next shipment is a
        // bootstrap again.
        let cp = primary.checkpoint().expect("plane checkpoints");
        primary.restore_from(&cp).expect("restores");
        primary.advance_to(2);
        let ship = primary.wal_since(replica.applied_epoch(), replica.applied_offsets());
        assert!(
            ship.checkpoint.is_some(),
            "offset regression must cut a bootstrap shipment"
        );
        let rep = replica.ingest(&ship).expect("re-bootstrap ingests");
        assert!(rep.bootstrapped);
        probe(&primary, &replica, 2);
    }

    #[test]
    fn mismatched_grid_is_refused() {
        let mut primary = plane(2, 2);
        primary.bulk_load(&seed_objects(), 0);
        let mut replica = Replica::new(plane(1, 1));
        let err = replica
            .ingest(&primary.wal_since(replica.applied_epoch(), &[]))
            .unwrap_err();
        assert!(matches!(err, RecoverError::Mismatch(_)));
    }
}
