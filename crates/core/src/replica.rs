//! Log-shipping read replicas of a sharded primary.
//!
//! A [`Replica`] wraps its own [`ShardedEngine`] (same grid, same
//! inner-engine configuration as the primary) and keeps it current by
//! ingesting [`LogShipment`]s — sealed checkpoints plus per-shard WAL
//! segment deltas cut by the primary's
//! [`wal_since`](ShardedEngine::wal_since). Because every engine
//! mutation is deterministic and the shipped records are exactly the
//! primary's post-routing WAL, a caught-up replica answers queries
//! **bit-identically** to the primary (the same invariant crash
//! recovery rests on — a replica is recovery running continuously on
//! another machine).
//!
//! Semantics:
//!
//! * **Read-only.** The replica serves `query`/`subscribe` traffic;
//!   direct `apply_batch`/`advance_to`/`bulk_load` calls are dropped
//!   and counted (`replica_updates_dropped`), never applied — state
//!   changes arrive only through [`Replica::ingest`].
//! * **Bounded staleness, reported.** Every shipment carries the
//!   primary's protocol time when it was cut; the replica's lag gauge
//!   is that time minus the last `advance_to` it has applied. Lag `0`
//!   means caught up *as of the last sync* — the bound is refreshed,
//!   not streamed.
//! * **Self-healing.** If the primary restored from a checkpoint (its
//!   segments reset), the replica's offsets stop matching and the next
//!   [`wal_since`](ShardedEngine::wal_since) automatically returns a
//!   bootstrap shipment; [`Replica::ingest`] restores it and replays
//!   the tail.

use crate::engine::{DensityEngine, EngineAnswer, EngineStats};
use crate::obs::ObsReport;
use crate::shard::{LogShipment, ShardedEngine};
use crate::sub::{AnswerDelta, QtPolicy, SubError, SubId, SubscriptionTable};
use crate::wal::RecoverError;
use crate::PdrQuery;
use pdr_geometry::{Rect, RegionSet};
use pdr_mobject::{MotionState, ObjectId, Timestamp, Update};
use pdr_storage::{CodecError, FaultPlan, FaultStats, StorageError};

/// A read-only, log-shipping replica of a primary [`ShardedEngine`].
pub struct Replica {
    inner: ShardedEngine,
    /// Primary segment byte offset applied through, per shard.
    applied: Vec<usize>,
    /// The primary segment epoch `applied` is valid within.
    epoch: u64,
    /// The replication epoch adopted from ingested shipments; shipments
    /// from an older epoch (a deposed primary) are refused as fenced.
    repl_epoch: u64,
    /// Set by [`promote`](Replica::promote): the replica is now a
    /// writable primary. Mutations delegate to the inner plane and
    /// further ingests are refused.
    promoted: bool,
    /// The primary's protocol time at the last ingested shipment.
    primary_t: Timestamp,
    /// The last `advance_to` timestamp this replica has applied.
    applied_t: Timestamp,
    shipments: u64,
    bootstraps: u64,
    shipped_bytes: u64,
    records_applied: u64,
    updates_dropped: u64,
    /// Shipment segments (or whole segment prefixes) skipped because the
    /// watermark showed them already applied — duplicate or out-of-order
    /// re-delivery acked without reapplying.
    duplicates: u64,
    /// Shipments refused because they were cut under a stale
    /// replication epoch.
    fenced_shipments: u64,
}

/// What one [`Replica::ingest`] call did, for logs and wire responses.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IngestReport {
    /// `true` when the shipment carried a checkpoint the replica
    /// restored before replaying tails.
    pub bootstrapped: bool,
    /// WAL records applied across all shards.
    pub records: u64,
    /// Updates contained in the applied batch records.
    pub updates: u64,
    /// The staleness bound after ingesting (see [`Replica::lag`]).
    pub lag: u64,
    /// Segments (or segment prefixes) skipped as already applied —
    /// duplicate re-delivery acked without reapplying.
    pub duplicates: u64,
}

impl Replica {
    /// Wraps a freshly built plane (same grid and inner configuration
    /// as the primary) as an empty replica awaiting its first
    /// bootstrap shipment. Until that bootstrap lands the replica
    /// reports **empty** offsets, so the primary's
    /// [`wal_since`](ShardedEngine::wal_since) always cuts a
    /// checkpoint-carrying shipment first — the replica's own fresh
    /// segments say nothing about the primary's log.
    pub fn new(inner: ShardedEngine) -> Self {
        Replica {
            inner,
            applied: Vec::new(),
            epoch: 0,
            repl_epoch: 0,
            promoted: false,
            primary_t: 0,
            applied_t: 0,
            shipments: 0,
            bootstraps: 0,
            shipped_bytes: 0,
            records_applied: 0,
            updates_dropped: 0,
            duplicates: 0,
            fenced_shipments: 0,
        }
    }

    /// The per-shard primary offsets this replica has applied through —
    /// what it reports to [`ShardedEngine::wal_since`] to receive only
    /// the delta.
    pub fn applied_offsets(&self) -> &[usize] {
        &self.applied
    }

    /// The primary segment epoch [`applied_offsets`](Self::applied_offsets)
    /// is valid within; reported alongside them to
    /// [`ShardedEngine::wal_since`].
    pub fn applied_epoch(&self) -> u64 {
        self.epoch
    }

    /// The replica's staleness bound: the primary's protocol time at
    /// the last sync minus the last applied `advance_to`. `0` means
    /// caught up as of that sync.
    pub fn lag(&self) -> u64 {
        self.primary_t.saturating_sub(self.applied_t)
    }

    /// The last applied `advance_to` timestamp.
    pub fn applied_t(&self) -> Timestamp {
        self.applied_t
    }

    /// Shipments ingested so far (including bootstraps).
    pub fn shipments(&self) -> u64 {
        self.shipments
    }

    /// Bootstrap (checkpoint-carrying) shipments ingested so far.
    pub fn bootstraps(&self) -> u64 {
        self.bootstraps
    }

    /// The replication epoch this replica has adopted from shipments
    /// (0 until the first ingest), or the one it promoted itself to.
    pub fn repl_epoch(&self) -> u64 {
        self.repl_epoch
    }

    /// `true` once [`promote`](Replica::promote) has turned this
    /// replica into a writable primary.
    pub fn promoted(&self) -> bool {
        self.promoted
    }

    /// Duplicate segments (or segment prefixes) skipped by the applied
    /// watermark — acked without reapplying.
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }

    /// Shipments refused because their replication epoch was stale.
    pub fn fenced_shipments(&self) -> u64 {
        self.fenced_shipments
    }

    /// Promotes this replica to a writable primary: seals the applied
    /// state under a fresh checkpoint and bumps the replication epoch
    /// strictly past the one it replicated, fencing the deposed
    /// primary's lineage. After promotion the wrapper delegates
    /// mutations to the inner plane (which WAL-logs them, so the new
    /// primary can ship to followers of its own) and refuses further
    /// ingests. Idempotent: promoting twice keeps the first epoch.
    /// Returns the replication epoch the node now writes under.
    pub fn promote(&mut self) -> u64 {
        if self.promoted {
            return self.repl_epoch;
        }
        // A never-synced replica still promotes past the default
        // primary epoch (1), so its lineage fences the old one.
        self.repl_epoch = self.repl_epoch.max(1) + 1;
        self.promoted = true;
        self.inner.promote_to(self.repl_epoch);
        self.repl_epoch
    }

    /// Read access to the replicated plane (the promoted node's
    /// primary plane).
    pub fn plane(&self) -> &ShardedEngine {
        &self.inner
    }

    /// Ingests one shipment: restores the checkpoint when present,
    /// then replays every shipped segment tail in shard order.
    ///
    /// Re-delivery is **idempotent**: a segment (or segment prefix)
    /// the applied watermark shows as already applied is skipped and
    /// acked — counted in [`duplicates`](Replica::duplicates) — never
    /// reapplied and never an error, so duplicate or out-of-order
    /// shipments cannot wedge the replica. A shipment that *skips*
    /// ahead of the watermark (a gap) is refused with a mismatch — the
    /// caller re-syncs from empty offsets, which makes the primary cut
    /// a bootstrap. A shipment cut under a replication epoch older
    /// than the replica's is refused with the typed
    /// [`RecoverError::Fenced`] error: it comes from a deposed primary.
    pub fn ingest(&mut self, ship: &LogShipment) -> Result<IngestReport, RecoverError> {
        if self.promoted {
            return Err(RecoverError::Mismatch(
                "promoted primary no longer ingests shipments",
            ));
        }
        if ship.repl_epoch < self.repl_epoch {
            self.fenced_shipments += 1;
            return Err(RecoverError::Fenced {
                stale: ship.repl_epoch,
                current: self.repl_epoch,
            });
        }
        if ship.segments.len() != ship.shards as usize {
            return Err(RecoverError::Mismatch("shipment is missing shards"));
        }
        // A bootstrap shipment carries the primary's full partition
        // inside the checkpoint, so the replica *reshapes* to whatever
        // topology the primary has — no shard-count pre-check. Only an
        // incremental shipment must match the replica's current
        // topology exactly (count and partition epoch): after a
        // split/merge the primary's segment identities are new, and
        // applying its deltas against the old leaves would corrupt.
        if ship.checkpoint.is_none() {
            if ship.shards as usize != self.inner.map().shards() {
                return Err(RecoverError::Mismatch(
                    "shipment cut at a different shard count",
                ));
            }
            if ship.part_epoch != self.inner.part_epoch() {
                return Err(RecoverError::Mismatch(
                    "incremental shipment from a different partition epoch",
                ));
            }
        }
        let mut report = IngestReport::default();
        if let Some(cp) = &ship.checkpoint {
            self.inner.restore_from(cp)?;
            report.bootstrapped = true;
            self.bootstraps += 1;
            // The checkpoint state corresponds to each segment's
            // `start`; tails replay forward from there. A bootstrap
            // ships everything through the cut, so after the tails
            // land the replica is caught up to the primary's clock.
            // Segment identity is the *stable leaf id*; map each onto
            // the freshly restored partition's leaf order.
            self.applied = vec![0; ship.shards as usize];
            for seg in &ship.segments {
                let Some(i) = self.inner.map().index_of_id(seg.shard) else {
                    return Err(RecoverError::Mismatch("shipment names an unknown shard"));
                };
                self.applied[i] = seg.start;
            }
            self.epoch = ship.epoch;
            self.applied_t = ship.t_base;
        } else if self.applied.is_empty() {
            // A primary that has never checkpointed legitimately ships
            // its **full history** with no checkpoint: every segment
            // starts right past its header, which this fresh plane can
            // replay from scratch. Anything else needs a checkpoint.
            if ship
                .segments
                .iter()
                .any(|s| s.start != crate::wal::SEGMENT_HEADER_LEN)
            {
                return Err(RecoverError::Mismatch(
                    "replica has no state yet; first shipment must bootstrap",
                ));
            }
            self.applied = vec![crate::wal::SEGMENT_HEADER_LEN; ship.shards as usize];
            self.epoch = ship.epoch;
        } else if ship.epoch != self.epoch {
            return Err(RecoverError::Mismatch(
                "incremental shipment from a different segment epoch",
            ));
        }
        // First pass: classify every segment against the watermark
        // before mutating anything, so a refused shipment leaves the
        // replica exactly as it was (no half-applied shipment).
        let mut tails: Vec<(usize, usize)> = Vec::with_capacity(ship.segments.len());
        for seg in &ship.segments {
            let Some(i) = self.inner.map().index_of_id(seg.shard) else {
                return Err(RecoverError::Mismatch("shipment names an unknown shard"));
            };
            if i >= self.applied.len() {
                return Err(RecoverError::Mismatch("shipment names an unknown shard"));
            }
            let a = self.applied[i];
            let skip = if seg.start > a {
                // The shipment starts past what we applied: records in
                // between were lost. Refuse; the caller re-bootstraps.
                return Err(RecoverError::Mismatch(
                    "shipment leaves a gap past the applied watermark",
                ));
            } else if seg.start + seg.bytes.len() <= a {
                // Entirely at or before the watermark: a duplicate
                // re-delivery. Ack without reapplying.
                seg.bytes.len()
            } else {
                // Overlapping re-delivery: the prefix through the
                // watermark was already applied; the suffix is new. The
                // cut must fall on a record boundary or the shipment
                // disagrees with what we applied.
                let cut = a - seg.start;
                if !crate::wal::record_boundaries(&seg.bytes).contains(&cut) {
                    return Err(RecoverError::Codec(CodecError::Corrupt(
                        "shipment overlap does not align with a record boundary",
                    )));
                }
                cut
            };
            tails.push((i, skip));
        }
        for (seg, &(i, skip)) in ship.segments.iter().zip(&tails) {
            if skip > 0 {
                self.duplicates += 1;
                report.duplicates += 1;
            }
            let tail = &seg.bytes[skip..];
            if tail.is_empty() {
                continue;
            }
            let summary = self.inner.apply_segment_tail(i, tail)?;
            self.applied[i] += tail.len();
            self.shipped_bytes += tail.len() as u64;
            report.records += summary.records;
            report.updates += summary.updates;
            if let Some(t) = summary.last_advance {
                self.applied_t = self.applied_t.max(t);
            }
        }
        self.repl_epoch = self.repl_epoch.max(ship.repl_epoch);
        self.primary_t = self.primary_t.max(ship.t_base);
        self.shipments += 1;
        self.records_applied += report.records;
        report.lag = self.lag();
        Ok(report)
    }
}

impl DensityEngine for Replica {
    fn name(&self) -> &'static str {
        "replica"
    }

    // ------------------------------------------------------------------
    // Read-only surface: mutations are dropped and counted, never
    // applied — state arrives only through `ingest` — until the node
    // is promoted, after which they delegate to the inner plane (which
    // WAL-logs them, so the new primary ships to its own followers).
    // ------------------------------------------------------------------

    fn bulk_load(&mut self, objects: &[(ObjectId, MotionState)], t_now: Timestamp) {
        if self.promoted {
            self.inner.bulk_load(objects, t_now);
        } else {
            self.updates_dropped += objects.len() as u64;
        }
    }

    fn apply_batch(&mut self, updates: &[Update]) {
        if self.promoted {
            self.inner.apply_batch(updates);
        } else {
            self.updates_dropped += updates.len() as u64;
        }
    }

    fn advance_to(&mut self, t_now: Timestamp) {
        if self.promoted {
            self.inner.advance_to(t_now);
            self.applied_t = self.applied_t.max(t_now);
        }
    }

    // ------------------------------------------------------------------
    // Query surface: served from the replicated plane.
    // ------------------------------------------------------------------

    fn query(&self, q: &PdrQuery) -> EngineAnswer {
        self.inner.query(q)
    }

    fn try_query(&self, q: &PdrQuery) -> Result<EngineAnswer, StorageError> {
        self.inner.try_query(q)
    }

    fn degraded_query(&self, q: &PdrQuery) -> Option<EngineAnswer> {
        self.inner.degraded_query(q)
    }

    fn interval_query(&self, rho: f64, l: f64, from: Timestamp, to: Timestamp) -> RegionSet {
        self.inner.interval_query(rho, l, from, to)
    }

    fn checkpoint(&self) -> Option<Vec<u8>> {
        self.inner.checkpoint()
    }

    fn restore_from(&mut self, bytes: &[u8]) -> Result<(), RecoverError> {
        self.inner.restore_from(bytes)
    }

    fn set_fault_plan(&self, plan: FaultPlan) {
        self.inner.set_fault_plan(plan);
    }

    fn fault_stats(&self) -> FaultStats {
        self.inner.fault_stats()
    }

    fn subscriptions(&self) -> Option<&SubscriptionTable> {
        self.inner.subscriptions()
    }

    fn subscriptions_mut(&mut self) -> Option<&mut SubscriptionTable> {
        self.inner.subscriptions_mut()
    }

    fn register_subscription(
        &mut self,
        rho: f64,
        l: f64,
        region: Rect,
        policy: QtPolicy,
    ) -> Result<SubId, SubError> {
        self.inner.register_subscription(rho, l, region, policy)
    }

    fn unregister_subscription(&mut self, id: SubId) -> bool {
        self.inner.unregister_subscription(id)
    }

    fn maintain_subscriptions(&mut self, now: Timestamp) -> Vec<AnswerDelta> {
        // Standing queries on a replica are maintained against
        // *applied* time: a subscription never observes state the
        // replica has not replayed. A promoted node's clock is its
        // own, so `now` applies directly.
        let t = if self.promoted {
            now
        } else {
            now.min(self.applied_t)
        };
        self.inner.maintain_subscriptions(t)
    }

    fn stats(&self) -> EngineStats {
        let mut st = self.inner.stats();
        st.rejected_updates += self.updates_dropped;
        st
    }

    fn obs(&self) -> ObsReport {
        let mut report = self.inner.obs();
        report.counters.push(("replica_lag", self.lag()));
        report.counters.push(("replica_shipments", self.shipments));
        report
            .counters
            .push(("replica_bootstraps", self.bootstraps));
        report
            .counters
            .push(("replica_shipped_bytes", self.shipped_bytes));
        report
            .counters
            .push(("replica_records_applied", self.records_applied));
        report
            .counters
            .push(("replica_updates_dropped", self.updates_dropped));
        report
            .counters
            .push(("replica_duplicates", self.duplicates));
        report
            .counters
            .push(("replica_fenced_shipments", self.fenced_shipments));
        report
            .counters
            .push(("replica_promoted", self.promoted as u64));
        report
    }

    fn set_obs_enabled(&mut self, on: bool) {
        self.inner.set_obs_enabled(on);
    }

    fn shard_metrics_json(&self) -> Option<String> {
        self.inner.shard_metrics_json()
    }

    // A promoted node presents as a sharded primary (its plane cuts
    // shipments for followers) and stops presenting as a replica, so
    // front-ends resolve clocks and roles from the real state.

    fn as_sharded(&self) -> Option<&ShardedEngine> {
        self.promoted.then_some(&self.inner)
    }

    fn as_sharded_mut(&mut self) -> Option<&mut ShardedEngine> {
        self.promoted.then_some(&mut self.inner)
    }

    fn as_replica(&self) -> Option<&Replica> {
        (!self.promoted).then_some(self)
    }

    fn as_replica_mut(&mut self) -> Option<&mut Replica> {
        (!self.promoted).then_some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::ShardMap;
    use crate::{FrConfig, FrEngine};
    use pdr_geometry::Point;
    use pdr_mobject::TimeHorizon;

    fn fr_cfg() -> FrConfig {
        FrConfig {
            extent: 100.0,
            m: 20,
            horizon: TimeHorizon::new(4, 2),
            buffer_pages: 8,
            threads: 1,
        }
    }

    fn plane(sx: u32, sy: u32) -> ShardedEngine {
        let map = ShardMap::new(Rect::new(0.0, 0.0, 100.0, 100.0), sx, sy, 30.0);
        ShardedEngine::new("fr", map, TimeHorizon::new(4, 2), 0, 1, 14.0, |_| {
            Box::new(FrEngine::new(fr_cfg(), 0))
        })
    }

    fn seed_objects() -> Vec<(ObjectId, MotionState)> {
        (0..40u64)
            .map(|i| {
                (
                    ObjectId(i),
                    MotionState::new(
                        Point::new(5.0 + (i % 10) as f64 * 9.0, 5.0 + (i / 10) as f64 * 20.0),
                        Point::new(0.5, 0.25),
                        0,
                    ),
                )
            })
            .collect()
    }

    fn probe(primary: &ShardedEngine, replica: &Replica, t: Timestamp) {
        for q in [
            PdrQuery::new(2.0, 10.0, t),
            PdrQuery::new(1.0, 12.0, t + 1),
            PdrQuery::new(3.0, 14.0, t + 2),
        ] {
            let a = primary.query(&q);
            let b = replica.query(&q);
            assert_eq!(
                a.regions.rects(),
                b.regions.rects(),
                "replica answer diverged at t={t}"
            );
        }
    }

    #[test]
    fn replica_catches_up_and_answers_bit_identically() {
        let mut primary = plane(2, 2);
        primary.bulk_load(&seed_objects(), 0);
        let mut replica = Replica::new(plane(2, 2));

        // Bootstrap: empty offsets force a checkpoint shipment.
        let ship = primary.wal_since(replica.applied_epoch(), &[]);
        assert!(ship.checkpoint.is_some());
        let rep = replica.ingest(&ship).expect("bootstrap ingests");
        assert!(rep.bootstrapped);
        probe(&primary, &replica, 0);

        // Steady state: ticks ship incrementally.
        for t in 1..=6u64 {
            primary.advance_to(t);
            let batch: Vec<Update> = (0..6u64)
                .map(|i| {
                    Update::insert(
                        ObjectId(100 + t * 10 + i),
                        t,
                        MotionState::new(
                            Point::new(10.0 + i as f64 * 12.0, 40.0 + t as f64 * 3.0),
                            Point::new(-0.3, 0.4),
                            t,
                        ),
                    )
                })
                .collect();
            primary.apply_batch(&batch);
            let ship = primary.wal_since(replica.applied_epoch(), replica.applied_offsets());
            assert!(ship.checkpoint.is_none(), "steady state ships deltas");
            let rep = replica.ingest(&ship).expect("delta ingests");
            assert_eq!(rep.lag, 0, "caught up after sync");
            assert_eq!(replica.applied_offsets(), primary.wal_offsets());
            probe(&primary, &replica, t);
        }

        // Direct writes to the replica are dropped, not applied.
        let before = replica.stats().objects;
        replica.apply_batch(&[Update::insert(
            ObjectId(9999),
            6,
            MotionState::new(Point::new(50.0, 50.0), Point::new(0.0, 0.0), 6),
        )]);
        assert_eq!(replica.stats().objects, before);
        assert_eq!(
            replica
                .obs()
                .counters
                .iter()
                .find(|(n, _)| *n == "replica_updates_dropped")
                .map(|(_, v)| *v),
            Some(1)
        );
    }

    #[test]
    fn primary_restore_forces_replica_bootstrap() {
        let mut primary = plane(1, 1);
        primary.bulk_load(&seed_objects(), 0);
        let mut replica = Replica::new(plane(1, 1));
        replica
            .ingest(&primary.wal_since(replica.applied_epoch(), &[]))
            .expect("bootstrap");

        primary.advance_to(1);
        replica
            .ingest(&primary.wal_since(replica.applied_epoch(), replica.applied_offsets()))
            .expect("delta");

        // The primary crashes and restores: its segments reset, so the
        // replica's offsets overshoot and the next shipment is a
        // bootstrap again.
        let cp = primary.checkpoint().expect("plane checkpoints");
        primary.restore_from(&cp).expect("restores");
        primary.advance_to(2);
        let ship = primary.wal_since(replica.applied_epoch(), replica.applied_offsets());
        assert!(
            ship.checkpoint.is_some(),
            "offset regression must cut a bootstrap shipment"
        );
        let rep = replica.ingest(&ship).expect("re-bootstrap ingests");
        assert!(rep.bootstrapped);
        probe(&primary, &replica, 2);
    }

    #[test]
    fn mismatched_grid_reshapes_on_bootstrap_refuses_incrementals() {
        // Bootstraps are self-describing: a 1×1 replica pulling from a
        // 2×2 primary reshapes to the primary's partition and answers
        // bit-identically.
        let mut primary = plane(2, 2);
        primary.bulk_load(&seed_objects(), 0);
        primary.refresh_checkpoints();
        let mut replica = Replica::new(plane(1, 1));
        let report = replica
            .ingest(&primary.wal_since(replica.applied_epoch(), &[]))
            .expect("bootstrap reshapes across topologies");
        assert!(report.bootstrapped);
        assert_eq!(replica.plane().map().shards(), 4);
        probe(&primary, &replica, 0);
        // An *incremental* shipment cut at a different shard count (or
        // partition epoch) is still refused — only bootstraps reshape.
        let mut other = plane(3, 3);
        other.bulk_load(&seed_objects(), 0);
        let mut ship = other.wal_since(0, &[0; 9]);
        ship.checkpoint = None;
        let err = replica.ingest(&ship).unwrap_err();
        assert!(matches!(err, RecoverError::Mismatch(_)));
    }
}
