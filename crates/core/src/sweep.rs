//! The two-level plane-sweep refinement (Algorithms 2 and 3).
//!
//! Given a target rectangle `R` (a candidate cell, or the whole region
//! for the brute-force oracle) and every object within `R` inflated by
//! `l/2`, the sweep reports the exact set of ρ-dense points inside `R`
//! as a union of half-open rectangles.
//!
//! The key observation (Lemmas 1–2 of the paper) is that the point
//! density `d(x, y)` only changes when the `l`-square boundary crosses
//! an object, so along X it is piecewise constant between the *stopping
//! events* `{x_o ± l/2}`, and likewise along Y. Sweeping an `l`-band
//! along X and, inside each band, an `l`-square along Y enumerates every
//! constant-density rectangle.
//!
//! Membership uses the half-open `l`-square of Definition 1: an object
//! at `x_o` is inside the band centered at `x_c` iff
//! `x_c ∈ [x_o − l/2, x_o + l/2)`. Each segment is classified by its
//! *midpoint*, which is equivalent to classifying the whole segment (the
//! density is constant on it) and immune to boundary ties.

use crate::DenseThreshold;
use pdr_geometry::{Point, Rect, RegionSet};

/// Exact ρ-dense sub-rectangles of `target`, given `objects` — every
/// object position within `target.inflate(l/2)` (a superset is fine;
/// objects further out cannot affect any point of `target`).
///
/// Sorts `objects` in place through the mutable borrow: the refinement
/// hot loop refills one positions buffer per candidate cell and hands
/// the same buffer here every time, so no per-cell vector is allocated.
/// Borrowing callers go through [`refine_region_set`], which pays the
/// one copy explicitly.
///
/// Returns half-open `[lo, hi)` rectangles, not yet coalesced (callers
/// merging several cells coalesce once at the end).
pub fn refine_region(
    target: &Rect,
    objects: &mut [Point],
    threshold: DenseThreshold,
    l: f64,
) -> Vec<Rect> {
    assert!(l > 0.0, "edge length must be positive");
    let mut out = Vec::new();
    if target.is_degenerate() {
        return out;
    }
    // A region can only be dense if enough objects are around at all.
    if !threshold.met_by(objects.len()) {
        return out;
    }
    let half = l / 2.0;

    // Objects sorted by x for the band sweep (in the caller's buffer).
    let by_x = objects;
    by_x.sort_by(|a, b| a.x.total_cmp(&b.x));

    // Stopping events along X, clamped to the target.
    let mut xs: Vec<f64> = Vec::with_capacity(2 * by_x.len() + 2);
    xs.push(target.x_lo);
    xs.push(target.x_hi);
    for p in by_x.iter() {
        for e in [p.x - half, p.x + half] {
            if e > target.x_lo && e < target.x_hi {
                xs.push(e);
            }
        }
    }
    xs.sort_by(f64::total_cmp);
    xs.dedup();

    // Two pointers over by_x: the band at center x_c contains objects
    // with x_o ∈ (x_c − l/2, x_c + l/2]; evaluated at segment midpoints
    // (monotonically increasing), both pointers only advance.
    let mut lo = 0; // index of first object with x_o > mid − l/2
    let mut hi = 0; // index one past last object with x_o ≤ mid + l/2
    let mut band: Vec<f64> = Vec::new(); // y-coords of band members, rebuilt per segment

    for w in xs.windows(2) {
        let (x0, x1) = (w[0], w[1]);
        if x1 <= x0 {
            continue;
        }
        let mid = 0.5 * (x0 + x1);
        while lo < by_x.len() && by_x[lo].x <= mid - half {
            lo += 1;
        }
        if hi < lo {
            hi = lo;
        }
        while hi < by_x.len() && by_x[hi].x <= mid + half {
            hi += 1;
        }
        let members = &by_x[lo..hi];
        if !threshold.met_by(members.len()) {
            continue; // the band cannot contain a dense square
        }
        band.clear();
        band.extend(members.iter().map(|p| p.y));
        band.sort_by(f64::total_cmp);
        sweep_y(target, &band, threshold, half, x0, x1, &mut out);
    }
    out
}

/// The inner `l`-square sweep along Y (Algorithm 3) for one X band.
fn sweep_y(
    target: &Rect,
    ys: &[f64],
    threshold: DenseThreshold,
    half: f64,
    x0: f64,
    x1: f64,
    out: &mut Vec<Rect>,
) {
    let mut events: Vec<f64> = Vec::with_capacity(2 * ys.len() + 2);
    events.push(target.y_lo);
    events.push(target.y_hi);
    for &y in ys {
        for e in [y - half, y + half] {
            if e > target.y_lo && e < target.y_hi {
                events.push(e);
            }
        }
    }
    events.sort_by(f64::total_cmp);
    events.dedup();

    let mut lo = 0;
    let mut hi = 0;
    for w in events.windows(2) {
        let (y0, y1) = (w[0], w[1]);
        if y1 <= y0 {
            continue;
        }
        let mid = 0.5 * (y0 + y1);
        while lo < ys.len() && ys[lo] <= mid - half {
            lo += 1;
        }
        if hi < lo {
            hi = lo;
        }
        while hi < ys.len() && ys[hi] <= mid + half {
            hi += 1;
        }
        if threshold.met_by(hi - lo) {
            out.push(Rect::new(x0, y0, x1, y1));
        }
    }
}

/// Convenience wrapper over borrowed positions returning a coalesced
/// [`RegionSet`]. This is the one place that copies the slice.
pub fn refine_region_set(
    target: &Rect,
    objects: &[Point],
    threshold: DenseThreshold,
    l: f64,
) -> RegionSet {
    let mut owned = objects.to_vec();
    let mut rs = RegionSet::from_rects(refine_region(target, &mut owned, threshold, l));
    rs.coalesce();
    rs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::point_density;
    use pdr_geometry::LSquare;

    fn thresh(k: f64) -> DenseThreshold {
        DenseThreshold::from_count(k)
    }

    #[test]
    fn empty_when_too_few_objects() {
        let target = Rect::new(0.0, 0.0, 10.0, 10.0);
        let mut objects = vec![Point::new(5.0, 5.0)];
        assert!(refine_region(&target, &mut objects, thresh(2.0), 2.0).is_empty());
    }

    #[test]
    fn single_cluster_produces_square_region() {
        // 4 coincident objects, l = 2, threshold 4: the dense points are
        // exactly those whose l-square contains the cluster point, i.e.
        // the half-open square [p − 1, p + 1) ... by Definition 1 the
        // object at q is inside S_p iff p ∈ [q − l/2, q + l/2).
        let target = Rect::new(0.0, 0.0, 10.0, 10.0);
        let q = Point::new(5.0, 5.0);
        let objects = vec![q; 4];
        let rs = refine_region_set(&target, &objects, thresh(4.0), 2.0);
        let truth = RegionSet::from_rects([Rect::new(4.0, 4.0, 6.0, 6.0)]);
        assert!(rs.symmetric_difference_area(&truth) < 1e-9, "got {rs:?}");
    }

    #[test]
    fn figure1a_answer_loss_scene() {
        // The paper's Figure 1(a): four objects near a grid corner, none
        // of the four unit cells dense, but the l-square around the
        // corner holds all four. PDR must report a nonempty region.
        let target = Rect::new(0.0, 0.0, 4.0, 4.0);
        let objects = vec![
            Point::new(1.9, 1.9),
            Point::new(2.1, 1.9),
            Point::new(1.9, 2.1),
            Point::new(2.1, 2.1),
        ];
        let rs = refine_region_set(&target, &objects, thresh(4.0), 1.0);
        assert!(!rs.is_empty(), "answer loss: dense region missed");
        // The center point (2, 2) has all 4 objects in its unit square
        // neighborhood ((1.5, 2.5] x (1.5, 2.5] contains all).
        assert!(rs.contains(Point::new(2.0, 2.0)));
    }

    /// Brute-force check: every reported point is dense, every dense
    /// sample point is reported.
    fn cross_validate(target: Rect, objects: &[Point], k: f64, l: f64, samples: u32) {
        let rs = refine_region_set(&target, objects, thresh(k), l);
        let mut seed = 0xDEADBEEFu64;
        let mut rng = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 33) as f64 / (1u64 << 31) as f64
        };
        for _ in 0..samples {
            let p = Point::new(
                target.x_lo + rng() * target.width(),
                target.y_lo + rng() * target.height(),
            );
            let n = objects
                .iter()
                .filter(|&&o| LSquare::new(p, l).contains(o))
                .count();
            let dense = thresh(k).met_by(n);
            assert_eq!(
                rs.contains(p),
                dense,
                "point {p:?}: neighborhood count {n}, threshold {k}, density {}",
                point_density(p, l, objects)
            );
        }
    }

    #[test]
    fn matches_brute_force_on_random_scenes() {
        let mut seed = 424242u64;
        let mut rng = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 33) as f64 / (1u64 << 31) as f64
        };
        for scene in 0..5 {
            let target = Rect::new(0.0, 0.0, 50.0, 50.0);
            let n = 30 + scene * 25;
            let objects: Vec<Point> = (0..n)
                .map(|_| {
                    // Cluster half the objects to force dense pockets.
                    if rng() < 0.5 {
                        Point::new(20.0 + rng() * 8.0, 20.0 + rng() * 8.0)
                    } else {
                        Point::new(rng() * 60.0 - 5.0, rng() * 60.0 - 5.0)
                    }
                })
                .collect();
            cross_validate(target, &objects, 4.0, 6.0, 400);
        }
    }

    #[test]
    fn target_boundary_is_respected() {
        // Objects outside the target can make border points dense, but
        // no reported rectangle may leave the target.
        let target = Rect::new(10.0, 10.0, 20.0, 20.0);
        let objects: Vec<Point> = (0..10).map(|i| Point::new(9.5, 10.0 + i as f64)).collect();
        let rs = refine_region_set(&target, &objects, thresh(2.0), 4.0);
        for r in rs.rects() {
            assert!(target.contains_rect(r), "rect {r:?} escapes target");
        }
    }

    #[test]
    fn dense_everywhere_when_threshold_zero() {
        let target = Rect::new(0.0, 0.0, 5.0, 5.0);
        let rs = refine_region_set(&target, &[], thresh(0.0), 1.0);
        assert!((rs.area() - 25.0).abs() < 1e-9);
    }

    #[test]
    fn fractional_threshold() {
        // threshold 2.5 means 3 objects needed.
        let target = Rect::new(0.0, 0.0, 10.0, 10.0);
        let mut two = vec![Point::new(5.0, 5.0); 2];
        assert!(refine_region(&target, &mut two, thresh(2.5), 2.0).is_empty());
        let mut three = vec![Point::new(5.0, 5.0); 3];
        assert!(!refine_region(&target, &mut three, thresh(2.5), 2.0).is_empty());
    }

    #[test]
    fn boundary_ties_single_object_half_open_square() {
        // One object at (10, 10), l = 4, threshold 1. By Definition 1 an
        // object q is inside the square of center c iff c − 2 < q ≤ c + 2
        // per axis, so the dense centers form exactly the half-open
        // square [8, 12) × [8, 12): the *lower* boundary is dense (the
        // object sits on the included top/right edge of that center's
        // square) and the *upper* boundary is not. All coordinates are
        // small integers with l = 4.0, so every event value (q ± l/2) is
        // exact in floating point and the ties are genuine.
        let target = Rect::new(0.0, 0.0, 20.0, 20.0);
        let objects = vec![Point::new(10.0, 10.0)];
        let rs = refine_region_set(&target, &objects, thresh(1.0), 4.0);
        assert!((rs.area() - 16.0).abs() < 1e-9, "area {}", rs.area());
        // Exactly on the lower-left corner / edges: dense.
        assert!(rs.contains(Point::new(8.0, 8.0)));
        assert!(rs.contains(Point::new(8.0, 10.0)));
        assert!(rs.contains(Point::new(10.0, 8.0)));
        // Exactly on the upper-right edges: not dense.
        assert!(!rs.contains(Point::new(12.0, 10.0)));
        assert!(!rs.contains(Point::new(10.0, 12.0)));
        assert!(!rs.contains(Point::new(12.0, 12.0)));
        // Mixed corners: one axis in, one out.
        assert!(!rs.contains(Point::new(8.0, 12.0)));
        assert!(!rs.contains(Point::new(12.0, 8.0)));
    }

    #[test]
    fn boundary_ties_match_half_open_membership_pointwise() {
        // A tie-heavy lattice scene: objects on integer multiples of
        // l/2, so the stopping events of different objects coincide and
        // probe centers land exactly on x_c ± l/2 of several objects at
        // once. Every event coordinate (and every segment midpoint) is
        // cross-validated point-by-point against LSquare::contains.
        let l = 4.0;
        let half = l / 2.0;
        let target = Rect::new(0.0, 0.0, 16.0, 16.0);
        let objects = vec![
            Point::new(4.0, 4.0),
            Point::new(8.0, 4.0),
            Point::new(4.0, 8.0),
            Point::new(8.0, 8.0),
            Point::new(6.0, 6.0),
            Point::new(12.0, 12.0),
        ];
        // Probe coordinates: every stopping event q ± l/2 (clamped into
        // the target) plus midpoints between consecutive events.
        let mut coords: Vec<f64> = vec![target.x_lo, target.x_hi];
        for p in &objects {
            for c in [p.x - half, p.x + half, p.y - half, p.y + half] {
                if c >= target.x_lo && c <= target.x_hi {
                    coords.push(c);
                }
            }
        }
        coords.sort_by(f64::total_cmp);
        coords.dedup();
        let mids: Vec<f64> = coords.windows(2).map(|w| 0.5 * (w[0] + w[1])).collect();
        coords.extend(mids);

        for k in [1.0, 2.0, 3.0, 4.0] {
            let rs = refine_region_set(&target, &objects, thresh(k), l);
            for &x in &coords {
                for &y in &coords {
                    let p = Point::new(x, y);
                    let n = objects
                        .iter()
                        .filter(|&&o| LSquare::new(p, l).contains(o))
                        .count();
                    assert_eq!(
                        rs.contains(p),
                        thresh(k).met_by(n),
                        "tie point {p:?}: {n} objects in square, threshold {k}"
                    );
                }
            }
        }
    }

    #[test]
    fn objects_exactly_on_band_edges_count_asymmetrically() {
        // Two objects straddling a probe center at exactly ± l/2: the one
        // at center + l/2 is on the included edge, the one at center − l/2
        // on the excluded edge. With threshold 2 the probe is dense only
        // where both objects fall inside, which by the half-open rule is
        // the strip [6, 8) × [4, 12) ∩ ... — cross-check pointwise.
        let l = 4.0;
        let target = Rect::new(0.0, 0.0, 16.0, 16.0);
        let objects = vec![Point::new(6.0, 8.0), Point::new(10.0, 8.0)];
        let rs = refine_region_set(&target, &objects, thresh(2.0), l);
        // Center (8, 8): objects at x = 6 (= 8 − 2, excluded edge) and
        // x = 10 (= 8 + 2, included edge) → only one inside → not dense.
        assert!(!rs.contains(Point::new(8.0, 8.0)));
        // Center (8 − ulp-free step, i.e. 7.0): objects at 6 and 10 with
        // 5 < 6 ≤ 9 true but 5 < 10 ≤ 9 false → still one → not dense.
        assert!(!rs.contains(Point::new(7.0, 8.0)));
        // No center can hold both: they are exactly l apart and the
        // square is half-open, so the dense set is empty.
        assert!(rs.is_empty(), "{rs:?}");

        // Move the right object 1 closer: centers in [8, 9) × [6, 10)
        // hold both (q − l/2 ≤ c < q + l/2 for q = 6 gives c ∈ [4, 8);
        // for q = 9 gives c ∈ [7, 11); x-intersection [7, 8)).
        let objects = vec![Point::new(6.0, 8.0), Point::new(9.0, 8.0)];
        let rs = refine_region_set(&target, &objects, thresh(2.0), l);
        assert!(rs.contains(Point::new(7.0, 8.0)));
        assert!(!rs.contains(Point::new(8.0, 8.0)), "c = 8 loses q = 6");
        assert!(!rs.contains(Point::new(7.0, 5.75)), "below the y band");
        for r in rs.rects() {
            assert!(
                (r.x_lo - 7.0).abs() < 1e-12 && (r.x_hi - 8.0).abs() < 1e-12,
                "{r:?}"
            );
        }
    }

    #[test]
    fn arbitrary_shape_regions_emerge() {
        // Two overlapping clusters produce an L-ish/elongated region,
        // demonstrating "arbitrary shape and size" (Figure 3).
        let target = Rect::new(0.0, 0.0, 20.0, 20.0);
        let mut objects = vec![Point::new(5.0, 5.0); 3];
        objects.extend(vec![Point::new(7.0, 7.0); 3]); // diagonal offset
        let rs = refine_region_set(&target, &objects, thresh(3.0), 4.0);
        let bb = rs.bounding_rect().unwrap();
        assert!(bb.width() > 4.0, "region should span both clusters");
        // The union of the two offset squares is a staircase, not a
        // plain rectangle: its area is strictly below the bbox area.
        assert!(rs.area() < bb.area() - 1e-9);
    }
}
