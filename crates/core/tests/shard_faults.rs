//! Shard-scoped fault handling: a permanent storage fault beneath one
//! shard must stickily degrade **that shard alone** — every other
//! shard keeps serving exactly and the plane never fails a query.
//!
//! The CLI fault smoke (`scripts/verify.sh --sharded-smoke`) can only
//! observe driver-level containment, because a fault plan armed before
//! the serve loop fires on the ingest path and is handled by the
//! driver's crash protocol before any query runs. The query-path
//! degradation invariant is pinned here instead, where the plan can be
//! installed after ingest.

use pdr_core::{DensityEngine, EngineSpec, FaultPlan, FrConfig, PdrQuery, ShardMap, ShardedEngine};
use pdr_geometry::{Point, Rect};
use pdr_mobject::{MotionState, ObjectId, TimeHorizon};

const EXTENT: f64 = 100.0;
const L: f64 = 10.0;

struct Lcg(u64);

impl Lcg {
    fn next_f64(&mut self) -> f64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (self.0 >> 33) as f64 / (1u64 << 31) as f64
    }

    fn in_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.next_f64() * (hi - lo)
    }
}

fn fr_cfg() -> FrConfig {
    FrConfig {
        extent: EXTENT,
        m: 20,
        horizon: TimeHorizon::new(4, 4),
        // Tiny pool: every query pass touches far more pages than fit,
        // so an armed read fault always gets a physical read to fire on.
        buffer_pages: 8,
        threads: 1,
    }
}

/// A 2x2 sharded FR plane mirroring `EngineSpec::Sharded`'s halo math,
/// built directly so the test can reach `shard_degraded`.
fn plane() -> ShardedEngine {
    let cfg = fr_cfg();
    let pitch = EXTENT / cfg.m as f64;
    let map = ShardMap::new(
        Rect::new(0.0, 0.0, EXTENT, EXTENT),
        2,
        2,
        L / 2.0 + 2.0 * pitch,
    );
    ShardedEngine::new("sharded-fr", map, cfg.horizon, 0, 1, L, move |_| {
        EngineSpec::Fr(cfg).build(0)
    })
}

/// Clustered population dense enough that every shard owns a
/// multi-page subtree (so queries always read past the buffer pool).
fn population(n: usize) -> Vec<(ObjectId, MotionState)> {
    let mut rng = Lcg(0xFA_17);
    (0..n)
        .map(|i| {
            let (cx, cy) = if i % 4 == 0 {
                (rng.in_range(0.0, EXTENT), rng.in_range(0.0, EXTENT))
            } else {
                let c = 12.5 + 25.0 * ((i / 4) % 4) as f64;
                (
                    (c + rng.in_range(-5.0, 5.0)).clamp(0.0, EXTENT),
                    (c + rng.in_range(-5.0, 5.0)).clamp(0.0, EXTENT),
                )
            };
            let v = Point::new(rng.in_range(-0.5, 0.5), rng.in_range(-0.5, 0.5));
            (
                ObjectId(i as u64),
                MotionState::new(Point::new(cx, cy), v, 0),
            )
        })
        .collect()
}

#[test]
fn permanent_fault_degrades_only_the_faulted_shard() {
    let mut plane = plane();
    plane.bulk_load(&population(2000), 0);

    let q = PdrQuery::new(0.05, L, 2);
    let healthy = plane.try_query(&q).expect("healthy plane answers");
    assert!(healthy.exact, "healthy sharded answer must be exact");

    // Arm a permanent fault beneath shard 0 only (the trait-level hook
    // scopes to shard 0 by design): the next physical read fails, the
    // error is neither transient nor corruption, so the shard degrades
    // stickily instead of recovering.
    plane.set_fault_plan(FaultPlan::new(42).with_permanent_read_fault(1));

    let degraded = plane
        .try_query(&q)
        .expect("plane must keep serving through a single-shard fault");
    assert!(!degraded.exact, "a degraded shard taints exactness");
    assert!(plane.shard_degraded(0), "faulted shard must be degraded");
    for i in 1..4 {
        assert!(
            !plane.shard_degraded(i),
            "shard {i} must stay healthy: the fault is scoped to shard 0"
        );
    }

    // The sticky path keeps serving without re-touching broken storage.
    let again = plane.try_query(&q).expect("sticky degraded serving");
    assert!(!again.exact);

    // Per-shard metrics agree: exactly one degraded entry, on shard 0.
    let json = plane
        .shard_metrics_json()
        .expect("sharded plane emits per-shard metrics");
    assert_eq!(
        json.matches("\"degraded\":true").count(),
        1,
        "exactly one shard may be degraded: {json}"
    );
    let shard0 = &json[..json.find("\"shard\":1").expect("shard 1 entry")];
    assert!(
        shard0.contains("\"degraded\":true"),
        "the degraded entry must be shard 0's: {json}"
    );
}

#[test]
fn transient_fault_propagates_without_degrading() {
    let mut plane = plane();
    plane.bulk_load(&population(2000), 0);
    let q = PdrQuery::new(0.05, L, 2);

    // One transient read failure: surfaces to the caller's retry
    // policy rather than silently degrading a shard.
    plane.set_fault_plan(FaultPlan::new(7).with_read_fault(1, 1));
    match plane.try_query(&q) {
        Err(e) => assert!(e.is_transient(), "expected a transient error, got {e:?}"),
        Ok(_) => panic!("armed transient fault should surface as Err"),
    }

    // The retry succeeds exactly and no shard was marked degraded.
    let retried = plane.try_query(&q).expect("retry after transient fault");
    assert!(retried.exact, "retry must restore exact serving");
    for i in 0..4 {
        assert!(!plane.shard_degraded(i), "shard {i} wrongly degraded");
    }
}
