//! Tests of the unified engine plane: the `&self` query contract under
//! real concurrency, and trait-object vs concrete-type identity.

use pdr_core::{
    DensityEngine, EngineSpec, FrAnswer, FrConfig, FrEngine, PaConfig, PaEngine, PdrQuery,
};
use pdr_geometry::{Point, RegionSet};
use pdr_mobject::{MotionState, ObjectId, TimeHorizon, Timestamp, Update};

struct Lcg(u64);
impl Lcg {
    fn next(&mut self) -> f64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (self.0 >> 33) as f64 / (1u64 << 31) as f64
    }
}

fn fr_cfg(threads: usize) -> FrConfig {
    FrConfig {
        extent: 200.0,
        m: 40, // cell edge 5 <= l/2 for l >= 10
        horizon: TimeHorizon::new(4, 4),
        buffer_pages: 64,
        threads,
    }
}

fn pa_cfg() -> PaConfig {
    PaConfig {
        extent: 200.0,
        g: 5,
        degree: 5,
        l: 12.0,
        horizon: TimeHorizon::new(4, 4),
        m_d: 200,
    }
}

fn population(n: usize, seed: u64) -> Vec<(ObjectId, MotionState)> {
    let mut rng = Lcg(seed);
    (0..n)
        .map(|i| {
            let p = if i % 2 == 0 {
                Point::new(70.0 + rng.next() * 60.0, 70.0 + rng.next() * 60.0)
            } else {
                Point::new(rng.next() * 200.0, rng.next() * 200.0)
            };
            let v = Point::new(rng.next() * 2.0 - 1.0, rng.next() * 2.0 - 1.0);
            (ObjectId(i as u64), MotionState::new(p, v, 0))
        })
        .collect()
}

/// The deterministic update/query script both the concrete engines and
/// the boxed trait objects replay in the identity tests below.
fn script(seed: u64) -> (Vec<(ObjectId, MotionState)>, Vec<Vec<Update>>) {
    let pop = population(400, seed);
    let mut rng = Lcg(seed ^ 0x9e3779b97f4a7c15);
    let batches = (1..=3u64)
        .map(|t| {
            pop.iter()
                .filter(|(id, _)| id.0 % 3 == t % 3)
                .flat_map(|(id, m)| {
                    let moved = MotionState::new(
                        m.position_at(t),
                        Point::new(rng.next() * 2.0 - 1.0, rng.next() * 2.0 - 1.0),
                        t,
                    );
                    [Update::delete(*id, t, *m), Update::insert(*id, t, moved)]
                })
                .collect()
        })
        .collect();
    (pop, batches)
}

fn queries() -> Vec<PdrQuery> {
    let mut qs = Vec::new();
    for q_t in 3..=7u64 {
        for &rho in &[8.0 / 144.0, 12.0 / 144.0] {
            qs.push(PdrQuery::new(rho, 12.0, q_t));
        }
    }
    qs
}

/// Acceptance criterion of the `&self` refactor: one shared `FrEngine`
/// queried from several threads concurrently returns answers
/// bit-identical to the single-threaded run, and the epoch-keyed cache
/// computes each distinct timestamp's derived state at most once in
/// total — no matter how the threads race.
#[test]
fn concurrent_shared_queries_are_bit_identical_and_cached_once() {
    const THREADS: usize = 6;
    let (pop, batches) = script(97);
    let qs = queries();

    // Reference: a private engine, queried sequentially.
    let mut reference = FrEngine::new(fr_cfg(1), 0);
    reference.bulk_load(&pop, 0);
    for (i, batch) in batches.iter().enumerate() {
        reference.advance_to(i as Timestamp + 1);
        for u in batch {
            reference.apply(u);
        }
    }
    let expected: Vec<RegionSet> = qs.iter().map(|q| reference.query(q).regions).collect();

    // Shared engine, same ingest, then THREADS concurrent readers each
    // running the whole query list through `&self`.
    let mut shared = FrEngine::new(fr_cfg(1), 0);
    shared.bulk_load(&pop, 0);
    for (i, batch) in batches.iter().enumerate() {
        shared.advance_to(i as Timestamp + 1);
        for u in batch {
            shared.apply(u);
        }
    }
    let shared = &shared;
    let all: Vec<Vec<FrAnswer>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|worker| {
                let qs = &qs;
                scope.spawn(move || {
                    // Stagger the order per worker so threads race on
                    // *different* cold timestamps simultaneously.
                    let mut answers: Vec<(usize, FrAnswer)> = qs
                        .iter()
                        .enumerate()
                        .cycle()
                        .skip(worker * 3)
                        .take(qs.len())
                        .map(|(i, q)| (i, shared.query(q)))
                        .collect();
                    answers.sort_by_key(|(i, _)| *i);
                    answers.into_iter().map(|(_, a)| a).collect::<Vec<_>>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for (worker, answers) in all.iter().enumerate() {
        for (i, (got, want)) in answers.iter().zip(&expected).enumerate() {
            assert_eq!(
                got.regions.rects(),
                want.rects(),
                "worker {worker}, query {i}: concurrent answer differs from single-threaded"
            );
        }
    }

    // At most one computation per distinct key: the query list spans 5
    // distinct timestamps and 10 distinct (t, rho, l) triples, and the
    // counters must show exactly that — not one per thread.
    let counters = shared.cache_counters();
    assert_eq!(
        counters.sums_recomputes, 5,
        "prefix sums must be built once per distinct timestamp"
    );
    assert_eq!(
        counters.classify_recomputes, 10,
        "classification must run once per distinct (t, rho, l)"
    );
}

/// Satellite: the same script through `Box<dyn DensityEngine>` and the
/// concrete `FrEngine` yields identical exact `RegionSet`s.
#[test]
fn boxed_fr_matches_concrete_fr() {
    let (pop, batches) = script(11);
    let mut concrete = FrEngine::new(fr_cfg(1), 0);
    let mut boxed: Box<dyn DensityEngine> = EngineSpec::Fr(fr_cfg(1)).build(0);
    concrete.bulk_load(&pop, 0);
    boxed.bulk_load(&pop, 0);
    for (i, batch) in batches.iter().enumerate() {
        let t = i as Timestamp + 1;
        concrete.advance_to(t);
        boxed.advance_to(t);
        for u in batch {
            concrete.apply(u);
        }
        boxed.apply_batch(batch);
    }
    for q in &queries() {
        let a = concrete.query(q);
        let b = boxed.query(q);
        assert!(b.exact);
        assert_eq!(
            a.regions.rects(),
            b.regions.rects(),
            "trait-object FR answer differs at t={}",
            q.q_t
        );
    }
    assert_eq!(concrete.updates_applied(), boxed.stats().updates_applied);
    // Interval queries agree through the trait too.
    let concrete_iv = concrete.interval_query(8.0 / 144.0, 12.0, 3, 7);
    let boxed_iv = boxed.interval_query(8.0 / 144.0, 12.0, 3, 7);
    assert_eq!(concrete_iv.rects(), boxed_iv.rects());
}

/// Satellite: identical approximate answers for PA through the trait.
#[test]
fn boxed_pa_matches_concrete_pa() {
    let (pop, batches) = script(23);
    let mut concrete = PaEngine::new(pa_cfg(), 0);
    let mut boxed: Box<dyn DensityEngine> = EngineSpec::Pa(pa_cfg()).build(0);
    for (id, m) in &pop {
        concrete.apply(&Update::insert(*id, 0, *m));
    }
    boxed.bulk_load(&pop, 0);
    for (i, batch) in batches.iter().enumerate() {
        let t = i as Timestamp + 1;
        concrete.advance_to(t);
        boxed.advance_to(t);
        for u in batch {
            concrete.apply(u);
        }
        boxed.apply_batch(batch);
    }
    for q_t in 3..=7u64 {
        for &rho in &[0.03, 0.08] {
            let a = concrete.query(rho, q_t);
            let b = boxed.query(&PdrQuery::new(rho, pa_cfg().l, q_t));
            assert!(!b.exact);
            assert_eq!(
                a.regions.rects(),
                b.regions.rects(),
                "trait-object PA answer differs at t={q_t}, rho={rho}"
            );
        }
    }
    let iv_a = concrete.interval_query(0.03, 3, 7);
    let iv_b = boxed.interval_query(0.03, pa_cfg().l, 3, 7);
    assert_eq!(iv_a.rects(), iv_b.rects());
}

/// A boxed engine keeps working across an ingest/query/ingest cycle —
/// the exclusive-write / shared-read contract composes over time.
#[test]
fn boxed_engine_survives_interleaved_ingest_and_queries() {
    let (pop, batches) = script(5);
    let mut eng: Box<dyn DensityEngine> = EngineSpec::Fr(fr_cfg(0)).build(0);
    eng.bulk_load(&pop, 0);
    let mut last_area = None;
    for (i, batch) in batches.iter().enumerate() {
        let t = i as Timestamp + 1;
        eng.advance_to(t);
        eng.apply_batch(batch);
        let a = eng.query(&PdrQuery::new(8.0 / 144.0, 12.0, t));
        // Identical repeated query between batches: deterministic.
        let b = eng.query(&PdrQuery::new(8.0 / 144.0, 12.0, t));
        assert_eq!(a.regions.rects(), b.regions.rects());
        last_area = Some(a.regions.area());
    }
    assert!(last_area.is_some());
    let stats = eng.stats();
    assert_eq!(stats.objects, pop.len());
    assert_eq!(stats.missed_deletes, 0);
}
