//! Differential fuzz of the subscription plane: under random
//! interleavings of register / unregister / apply_batch / tick /
//! crash-recovery, every standing subscription's delta-maintained
//! answer must stay **bit-identical** to a from-scratch `query` clipped
//! to its region — both the table's committed answer and an external
//! mirror reconstructed purely from the emitted [`AnswerDelta`]s.
//!
//! Runs at three plane shapes: unsharded FR, sharded 1×1 (the routing
//! degenerate case), and sharded 2×2 (cut lines + halos + clipped
//! merge). Crash recovery restores the last checkpoint and replays the
//! logged traffic (the serve driver's protocol), so catch-up deltas
//! after a crash are exercised too.

use pdr_core::{EngineSpec, FrConfig, PdrQuery, QtPolicy, SubscriptionTable};
use pdr_geometry::{Point, Rect};
use pdr_mobject::{MotionState, ObjectId, TimeHorizon, Update};
use std::collections::BTreeMap;

const EXTENT: f64 = 100.0;

struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    fn f64(&mut self) -> f64 {
        self.next() as f64 / (1u64 << 31) as f64
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn in_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.f64() * (hi - lo)
    }
}

fn fr_cfg() -> FrConfig {
    FrConfig {
        extent: EXTENT,
        m: 20,
        horizon: TimeHorizon::new(4, 4),
        buffer_pages: 64,
        threads: 1,
    }
}

enum LogRec {
    Advance(u64),
    Batch(Vec<Update>),
}

fn random_motion(rng: &mut Lcg, t_ref: u64) -> MotionState {
    MotionState::new(
        Point::new(rng.in_range(0.0, EXTENT), rng.in_range(0.0, EXTENT)),
        Point::new(rng.in_range(-1.0, 1.0), rng.in_range(-1.0, 1.0)),
        t_ref,
    )
}

fn random_region(rng: &mut Lcg) -> Rect {
    if rng.below(3) == 0 {
        return Rect::new(0.0, 0.0, EXTENT, EXTENT);
    }
    let x_lo = rng.in_range(0.0, EXTENT - 20.0);
    let y_lo = rng.in_range(0.0, EXTENT - 20.0);
    Rect::new(
        x_lo,
        y_lo,
        x_lo + rng.in_range(15.0, EXTENT - x_lo),
        y_lo + rng.in_range(15.0, EXTENT - y_lo),
    )
}

fn run_fuzz(spec: &EngineSpec, seed: u64, steps: usize) {
    let mut rng = Lcg(seed);
    let mut eng = spec.build(0);
    let mut now = 0u64;
    let mut next_oid = 0u64;
    let mut live: Vec<(ObjectId, MotionState)> = Vec::new();

    let initial: Vec<(ObjectId, MotionState)> = (0..250)
        .map(|_| {
            let id = ObjectId(next_oid);
            next_oid += 1;
            (id, random_motion(&mut rng, 0))
        })
        .collect();
    live.extend(initial.iter().copied());
    eng.bulk_load(&initial, 0);

    let mut cp = eng.checkpoint().expect("FR planes are checkpointable");
    let mut log: Vec<LogRec> = Vec::new();
    // Delta-replayed mirrors, one per live subscription, fed *only* by
    // emitted patches — they must track the table bit-for-bit.
    let mut mirrors: BTreeMap<u64, Vec<Rect>> = BTreeMap::new();

    for step in 0..steps {
        match rng.below(10) {
            0 | 1 => {
                if mirrors.len() < 6 {
                    let l = if rng.below(2) == 0 { 10.0 } else { 12.0 };
                    let rho = rng.in_range(0.02, 0.08);
                    let region = random_region(&mut rng);
                    let policy = if rng.below(2) == 0 {
                        QtPolicy::NowPlus(rng.below(3))
                    } else {
                        QtPolicy::Fixed(now + rng.below(4))
                    };
                    let id = eng
                        .register_subscription(rho, l, region, policy)
                        .expect("edge within l_max");
                    mirrors.insert(id.0, Vec::new());
                }
            }
            2 => {
                if let Some(&id) = mirrors
                    .keys()
                    .nth(rng.below(mirrors.len().max(1) as u64) as usize)
                {
                    assert!(eng.unregister_subscription(pdr_core::SubId(id)));
                    mirrors.remove(&id);
                }
            }
            3 => {
                now += 1;
                eng.advance_to(now);
                log.push(LogRec::Advance(now));
            }
            4 => {
                // Crash: restore the last checkpoint and replay the log,
                // exactly like the serve driver's recovery protocol. The
                // subscription tables are engine-plane state and survive;
                // the incremental caches do not, so the next maintenance
                // pass must emit exact catch-up patches.
                eng.restore_from(&cp).expect("recovery from own checkpoint");
                for rec in &log {
                    match rec {
                        LogRec::Advance(t) => eng.advance_to(*t),
                        LogRec::Batch(batch) => eng.apply_batch(batch),
                    }
                }
            }
            5 => {
                cp = eng.checkpoint().expect("checkpoint");
                log.clear();
            }
            _ => {
                let mut batch = Vec::new();
                for _ in 0..(1 + rng.below(15)) {
                    if !live.is_empty() && rng.below(3) == 0 {
                        let k = rng.below(live.len() as u64) as usize;
                        let (id, motion) = live.swap_remove(k);
                        batch.push(Update::delete(id, now, motion));
                    } else {
                        let motion = random_motion(&mut rng, now);
                        let id = ObjectId(next_oid);
                        next_oid += 1;
                        // `Update::insert` rebases to t_now; remember the
                        // rebased motion so a later delete retracts the
                        // exact indexed trajectory.
                        let u = Update::insert(id, now, motion);
                        live.push((id, motion.rebased_to(now)));
                        batch.push(u);
                    }
                }
                eng.apply_batch(&batch);
                log.push(LogRec::Batch(batch));
            }
        }

        let deltas = eng.maintain_subscriptions(now);
        for d in &deltas {
            assert!(!d.degraded, "no faults armed, step {step}");
            if let Some(m) = mirrors.get_mut(&d.id.0) {
                d.apply_to(m);
            }
        }

        let subs: Vec<_> = eng
            .subscriptions()
            .expect("plane has a table")
            .subs()
            .copied()
            .collect();
        assert_eq!(subs.len(), mirrors.len(), "step {step}");
        for sub in subs {
            let q_t = sub.policy.resolve(now);
            let reference = SubscriptionTable::clip(
                &eng.query(&PdrQuery::new(sub.rho, sub.l, q_t)).regions,
                sub.region,
            );
            let table = eng.subscriptions().expect("plane has a table");
            assert_eq!(
                table.answer(sub.id).expect("registered"),
                reference.rects(),
                "committed answer diverged: step {step}, sub {:?}",
                sub.id
            );
            assert_eq!(
                mirrors[&sub.id.0].as_slice(),
                reference.rects(),
                "delta-replayed mirror diverged: step {step}, sub {:?}",
                sub.id
            );
        }
    }
}

#[test]
fn unsharded_fr_deltas_match_from_scratch_queries() {
    run_fuzz(&EngineSpec::Fr(fr_cfg()), 0xDEAD_BEEF, 70);
}

#[test]
fn sharded_1x1_deltas_match_from_scratch_queries() {
    let spec = EngineSpec::Sharded {
        adaptive: None,
        inner: Box::new(EngineSpec::Fr(fr_cfg())),
        sx: 1,
        sy: 1,
        l_max: 12.0,
    };
    run_fuzz(&spec, 0xC0FFEE, 70);
}

#[test]
fn sharded_2x2_deltas_match_from_scratch_queries() {
    let spec = EngineSpec::Sharded {
        adaptive: None,
        inner: Box::new(EngineSpec::Fr(fr_cfg())),
        sx: 2,
        sy: 2,
        l_max: 12.0,
    };
    run_fuzz(&spec, 0x5EED, 70);
}
