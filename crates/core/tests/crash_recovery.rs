//! Crash-point sweep: kill the engine at **every** WAL record boundary
//! of a 20-tick workload, recover from the latest checkpoint plus the
//! surviving WAL prefix, and require the recovered engine's answers to
//! be **bit-identical** to an engine that never crashed.
//!
//! Bit-identity holds because every ingredient is deterministic: the
//! histogram keeps integer counters, batches replay in order, leaf
//! entries are anchored with the same `position_at` arithmetic on load
//! and on insert, and the refinement sweep sorts positions before
//! comparing. The sweep exercises both checkpoints (the bulk-load one
//! and a mid-run one) and a torn-tail case.

use pdr_core::{
    record_boundaries, replay, DensityEngine, FrConfig, FrEngine, PdrQuery, RangeIndex, Wal,
    WalCodec, WalRecord,
};
use pdr_geometry::Point;
use pdr_mobject::{MotionState, ObjectId, TimeHorizon, Timestamp, Update};
use std::collections::HashMap;

const TICKS: Timestamp = 20;
const OBJECTS: u64 = 250;
const EXTENT: f64 = 200.0;

/// In-repo deterministic generator (no external proptest/rand).
struct Lcg(u64);

impl Lcg {
    fn next_u64(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0
    }

    fn unit(&mut self) -> f64 {
        (self.next_u64() >> 33) as f64 / (1u64 << 31) as f64
    }
}

fn cfg() -> FrConfig {
    FrConfig {
        extent: EXTENT,
        m: 40, // cell edge 5 ≤ l/2 for the l = 12 queries below
        horizon: TimeHorizon::new(6, 4),
        buffer_pages: 16, // small pool: recovery must survive real paging
        threads: 2,
    }
}

/// Half the traffic clusters in a 40×40 hot region so the probe
/// queries return non-empty regions with real candidate refinement.
fn motion(rng: &mut Lcg, t_ref: Timestamp) -> MotionState {
    let origin = if rng.unit() < 0.5 {
        Point::new(60.0 + rng.unit() * 40.0, 60.0 + rng.unit() * 40.0)
    } else {
        Point::new(rng.unit() * EXTENT, rng.unit() * EXTENT)
    };
    MotionState::new(
        origin,
        Point::new(rng.unit() * 2.0 - 1.0, rng.unit() * 2.0 - 1.0),
        t_ref,
    )
}

/// The scripted workload: a bulk population plus one delete+insert
/// re-report batch per tick, all derived from one seed.
struct Workload {
    population: Vec<(ObjectId, MotionState)>,
    /// `(t, batch)` per tick, in order.
    ticks: Vec<(Timestamp, Vec<Update>)>,
}

fn workload(seed: u64) -> Workload {
    let mut rng = Lcg(seed);
    let population: Vec<(ObjectId, MotionState)> = (0..OBJECTS)
        .map(|i| (ObjectId(i), motion(&mut rng, 0)))
        .collect();
    let mut current: HashMap<ObjectId, MotionState> = population.iter().copied().collect();
    let mut ticks = Vec::new();
    for t in 1..=TICKS {
        let mut batch = Vec::new();
        for _ in 0..12 {
            let id = ObjectId(rng.next_u64() % OBJECTS);
            let old = current[&id];
            let insert = Update::insert(id, t, motion(&mut rng, t));
            // Mirror what the engine stores: `Update::insert` rebases
            // the report to `t_now`.
            current.insert(id, insert.motion());
            batch.push(Update::delete(id, t, old));
            batch.push(insert);
        }
        ticks.push((t, batch));
    }
    Workload { population, ticks }
}

/// Applies one replayed record through the same (screened) trait path
/// the serve loop uses.
fn apply_record<I: RangeIndex + Send>(engine: &mut FrEngine<I>, r: &WalRecord) {
    match r {
        WalRecord::Advance(t) => DensityEngine::advance_to(engine, *t),
        WalRecord::Batch(updates) => DensityEngine::apply_batch(engine, updates),
    }
}

/// Queries whose answers the recovered engine must reproduce exactly:
/// the current base plus points inside the prediction window.
fn probe_queries(t_base: Timestamp) -> Vec<PdrQuery> {
    vec![
        PdrQuery::new(0.04, 12.0, t_base),
        PdrQuery::new(0.04, 12.0, t_base + 4),
        PdrQuery::new(0.02, 14.0, t_base + 2),
    ]
}

#[test]
fn recovery_is_bit_identical_at_every_record_boundary() {
    for codec in WalCodec::ALL {
        boundary_sweep(codec);
    }
}

/// The full crash-point sweep for one WAL record codec. Both the legacy
/// row codec and the columnar codec2 must recover bit-identically at
/// every boundary — the record *content* replayed is codec-independent.
fn boundary_sweep(codec: WalCodec) {
    let w = workload(0xC0FFEE);

    // Live run: WAL-append before every mutation, checkpoints after the
    // bulk load and again mid-run.
    let mut wal = Wal::with_codec(codec);
    let mut live = FrEngine::new(cfg(), 0);
    live.bulk_load(&w.population, 0);
    // (checkpoint offset in records, sealed bytes)
    let mut checkpoints: Vec<(usize, Vec<u8>)> = vec![(0, live.checkpoint_bytes())];
    for (t, batch) in &w.ticks {
        wal.append_advance(*t);
        DensityEngine::advance_to(&mut live, *t);
        wal.append_batch(batch);
        DensityEngine::apply_batch(&mut live, batch);
        if *t == TICKS / 2 {
            checkpoints.push((wal.records() as usize, live.checkpoint_bytes()));
        }
    }

    let bytes = wal.bytes().to_vec();
    let boundaries = record_boundaries(&bytes);
    assert_eq!(boundaries.len(), 2 * TICKS as usize + 1);
    let all = replay(&bytes).expect("clean log").records;

    let mut nonempty_answers = 0usize;
    for (k, &cut) in boundaries.iter().enumerate() {
        // Crash: only `bytes[..cut]` (k whole records) survived.
        let surviving = replay(&bytes[..cut]).expect("prefix of a clean log");
        assert_eq!(surviving.torn_bytes, 0);
        assert_eq!(surviving.records.len(), k);

        // Recover: latest checkpoint at or before the cut, then the
        // WAL tail.
        let (ckpt_records, ckpt_bytes) = checkpoints
            .iter()
            .rev()
            .find(|(n, _)| *n <= k)
            .expect("bulk-load checkpoint always applies");
        let mut recovered = FrEngine::new(cfg(), 0);
        recovered
            .restore_from_bytes(ckpt_bytes)
            .expect("checkpoint verifies");
        for r in &surviving.records[*ckpt_records..] {
            apply_record(&mut recovered, r);
        }

        // Uncrashed oracle: same prefix, no crash, no checkpoint.
        let mut oracle = FrEngine::new(cfg(), 0);
        oracle.bulk_load(&w.population, 0);
        for r in &all[..k] {
            apply_record(&mut oracle, r);
        }

        assert_eq!(
            recovered.histogram().t_base(),
            oracle.histogram().t_base(),
            "cut at record {k}"
        );
        let stats_r = DensityEngine::stats(&recovered);
        let stats_o = DensityEngine::stats(&oracle);
        assert_eq!(stats_r.objects, stats_o.objects, "cut at record {k}");
        for q in probe_queries(oracle.histogram().t_base()) {
            let a = recovered.query(&q);
            let b = oracle.query(&q);
            assert_eq!(
                a.regions.rects(),
                b.regions.rects(),
                "recovered answer diverges at record {k}, query {q:?}, {}",
                codec.label()
            );
            if !a.regions.rects().is_empty() {
                nonempty_answers += 1;
            }
        }
    }
    assert!(
        nonempty_answers > 0,
        "probe queries never produced a region — the sweep tested nothing"
    );
}

#[test]
fn torn_wal_tail_recovers_to_the_last_complete_record() {
    for codec in WalCodec::ALL {
        torn_tail_case(codec);
    }
}

fn torn_tail_case(codec: WalCodec) {
    let w = workload(0xBEEF);
    let mut wal = Wal::with_codec(codec);
    let mut live = FrEngine::new(cfg(), 0);
    live.bulk_load(&w.population, 0);
    let ckpt = live.checkpoint_bytes();
    for (t, batch) in &w.ticks {
        wal.append_advance(*t);
        DensityEngine::advance_to(&mut live, *t);
        wal.append_batch(batch);
        DensityEngine::apply_batch(&mut live, batch);
    }

    // The final write is torn 7 bytes into the last record.
    let bytes = wal.bytes();
    let boundaries = record_boundaries(bytes);
    let torn_at = boundaries[boundaries.len() - 2] + 7;
    let surviving = replay(&bytes[..torn_at]).expect("torn tail is not a format error");
    assert_eq!(surviving.records.len(), boundaries.len() - 2);
    assert_eq!(surviving.torn_bytes, 7);

    let mut recovered = FrEngine::new(cfg(), 0);
    recovered.restore_from_bytes(&ckpt).expect("verifies");
    for r in &surviving.records {
        apply_record(&mut recovered, r);
    }

    // Oracle that saw exactly the surviving records.
    let mut oracle = FrEngine::new(cfg(), 0);
    oracle.bulk_load(&w.population, 0);
    let all = replay(bytes).expect("clean log").records;
    for r in &all[..surviving.records.len()] {
        apply_record(&mut oracle, r);
    }

    for q in probe_queries(oracle.histogram().t_base()) {
        assert_eq!(
            recovered.query(&q).regions.rects(),
            oracle.query(&q).regions.rects()
        );
    }
}

#[test]
fn checkpoints_survive_bitrot_detection() {
    let w = workload(0xABAD);
    let mut live = FrEngine::new(cfg(), 0);
    live.bulk_load(&w.population, 0);
    let mut ckpt = live.checkpoint_bytes();
    // Flip one payload byte: restore must refuse, not decode garbage.
    let n = ckpt.len();
    ckpt[n - 9] ^= 0x10;
    let mut fresh = FrEngine::new(cfg(), 0);
    assert!(fresh.restore_from_bytes(&ckpt).is_err());
}
