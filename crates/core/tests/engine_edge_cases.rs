//! Edge-case tests for the query engines through the public API.

use pdr_core::{
    accuracy, classify_cells, dh_optimistic, dh_pessimistic, CellClass, DenseThreshold, FrConfig,
    FrEngine, PaConfig, PaEngine, PdrQuery,
};
use pdr_geometry::{Point, Rect, RegionSet};
use pdr_histogram::DensityHistogram;
use pdr_mobject::{MotionState, ObjectId, TimeHorizon, Update};

fn fr() -> FrEngine {
    FrEngine::new(
        FrConfig {
            extent: 100.0,
            m: 20, // l_c = 5
            horizon: TimeHorizon::new(4, 4),
            buffer_pages: 32,
            threads: 1,
        },
        0,
    )
}

fn pa() -> PaEngine {
    PaEngine::new(
        PaConfig {
            extent: 100.0,
            g: 5,
            degree: 5,
            l: 10.0,
            horizon: TimeHorizon::new(4, 4),
            m_d: 200,
        },
        0,
    )
}

fn stationary(id: u64, x: f64, y: f64) -> (ObjectId, MotionState) {
    (ObjectId(id), MotionState::stationary(Point::new(x, y), 0))
}

#[test]
fn filter_at_exact_l_equals_two_cell_edges() {
    // l = 10 = 2 * l_c is the algorithm's boundary requirement: it must
    // be accepted, with eta_l = 1 (conservative = the cell itself).
    let mut engine = fr();
    let pop: Vec<_> = (0..10).map(|i| stationary(i, 52.5, 52.5)).collect();
    engine.bulk_load(&pop, 0);
    let q = PdrQuery::new(10.0 / 100.0, 10.0, 0); // threshold = 10
    let cls = classify_cells(
        engine.histogram().grid(),
        &engine.histogram().prefix_sums_at(0),
        &q,
    );
    // The cell holding all 10 objects is provably dense.
    let cell = engine
        .histogram()
        .grid()
        .locate(Point::new(52.5, 52.5))
        .unwrap();
    assert_eq!(cls.class_of(cell), CellClass::Accept);
}

#[test]
fn query_monotone_in_threshold() {
    // Raising rho can only shrink the answer — for both engines.
    let pop: Vec<_> = (0..200)
        .map(|i| stationary(i, 30.0 + (i % 20) as f64, 30.0 + (i / 20) as f64))
        .collect();
    let mut f = fr();
    f.bulk_load(&pop, 0);
    let mut p = pa();
    for (id, m) in &pop {
        p.apply(&Update::insert(*id, 0, *m));
    }
    let mut prev_fr: Option<RegionSet> = None;
    let mut prev_pa: Option<RegionSet> = None;
    for k in [5.0, 20.0, 60.0] {
        let q = PdrQuery::new(k / 100.0, 10.0, 2);
        let r_fr = f.query(&q).regions;
        let r_pa = p.query(q.rho, 2).regions;
        if let Some(prev) = &prev_fr {
            assert!(
                r_fr.difference_area(prev) < 1e-9,
                "FR answer grew when threshold rose to {k}"
            );
        }
        if let Some(prev) = &prev_pa {
            assert!(
                r_pa.difference_area(prev) < 1e-6,
                "PA answer grew when threshold rose to {k}"
            );
        }
        prev_fr = Some(r_fr);
        prev_pa = Some(r_pa);
    }
}

#[test]
fn zero_threshold_makes_everything_dense() {
    let mut engine = fr();
    engine.bulk_load(&[stationary(1, 50.0, 50.0)], 0);
    let ans = engine.query(&PdrQuery::new(0.0, 10.0, 0));
    assert!((ans.regions.area() - 100.0 * 100.0).abs() < 1e-6);
    assert_eq!(ans.candidates, 0, "every cell is trivially accepted");
}

#[test]
fn dh_answers_bracket_the_exact_answer() {
    // pessimistic ⊆ exact ⊆ optimistic, pointwise via areas.
    let pop: Vec<_> = (0..150)
        .map(|i| {
            stationary(
                i,
                20.0 + (i % 30) as f64 * 2.0,
                40.0 + (i / 30) as f64 * 3.0,
            )
        })
        .collect();
    let mut engine = fr();
    engine.bulk_load(&pop, 0);
    let q = PdrQuery::new(8.0 / 100.0, 10.0, 1);
    let exact = engine.query(&q).regions;
    let cls = classify_cells(
        engine.histogram().grid(),
        &engine.histogram().prefix_sums_at(1),
        &q,
    );
    let opt = dh_optimistic(&cls);
    let pes = dh_pessimistic(&cls);
    assert!(pes.difference_area(&exact) < 1e-9, "pessimistic ⊆ exact");
    assert!(exact.difference_area(&opt) < 1e-9, "exact ⊆ optimistic");
}

#[test]
fn pa_empty_engine_returns_empty_everywhere() {
    let p = pa();
    for t in 0..=8u64 {
        assert!(p.query(0.01, t).regions.is_empty());
        assert!(p.query_grid_scan(0.01, t).regions.is_empty());
        assert!(p.top_k_dense(3, t, 10.0).iter().all(|(_, d)| *d <= 1e-12));
        assert_eq!(p.estimate_count(&Rect::new(0.0, 0.0, 100.0, 100.0), t), 0.0);
    }
}

#[test]
fn accuracy_is_order_sensitive() {
    let a = RegionSet::from_rects([Rect::new(0.0, 0.0, 2.0, 2.0)]);
    let b = RegionSet::from_rects([Rect::new(0.0, 0.0, 1.0, 1.0)]);
    let ab = accuracy(&a, &b);
    let ba = accuracy(&b, &a);
    // b under-reports a; a over-reports b.
    assert_eq!(ab.r_fp, 0.0);
    assert!(ab.r_fn > 0.0);
    assert!(ba.r_fp > 0.0);
    assert_eq!(ba.r_fn, 0.0);
}

#[test]
fn dense_threshold_value_round_trips() {
    let q = PdrQuery::new(0.25, 4.0, 0);
    let t = DenseThreshold::of(&q);
    assert_eq!(t.value(), 4.0);
    assert!(t.met_by_f64(4.0));
    assert!(!t.met_by_f64(3.9));
}

#[test]
fn fr_query_at_horizon_end_is_supported() {
    let mut engine = fr();
    engine.bulk_load(&[stationary(1, 50.0, 50.0)], 0);
    let h = TimeHorizon::new(4, 4).h();
    // Exactly the last covered timestamp works...
    let _ = engine.query(&PdrQuery::new(0.01, 10.0, h));
    // ...one past it panics.
    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        engine.query(&PdrQuery::new(0.01, 10.0, h + 1))
    }));
    assert!(r.is_err());
}

#[test]
fn histogram_and_pa_share_protocol_semantics() {
    // Applying the same update stream leaves both summaries consistent
    // about total mass: histogram totals equal the PA surface integral
    // (up to approximation error), at each covered timestamp.
    let mut h = DensityHistogram::new(100.0, 20, TimeHorizon::new(4, 4), 0);
    let mut p = pa();
    let pop: Vec<_> = (0..100)
        .map(|i| {
            stationary(
                i,
                25.0 + (i % 10) as f64 * 5.0,
                25.0 + (i / 10) as f64 * 5.0,
            )
        })
        .collect();
    for (id, m) in &pop {
        let u = Update::insert(*id, 0, *m);
        h.apply(&u);
        p.apply(&u);
    }
    for t in [0u64, 4, 8] {
        let mass_h = h.total_at(t) as f64;
        let mass_p = p.estimate_count(&Rect::new(0.0, 0.0, 100.0, 100.0), t);
        assert!(
            (mass_h - mass_p).abs() < 0.15 * mass_h.max(1.0),
            "t={t}: histogram {mass_h} vs surface {mass_p}"
        );
    }
}
