//! Acceptance test for the observability layer: instrumentation must be
//! a pure observer. With obs enabled vs. disabled, both engines replay
//! the same deterministic script and must produce **bit-identical**
//! answers — same rectangles, same I/O, same filter counts, same bound
//! evaluations. Only the recorded telemetry may differ.

use pdr_core::{FrConfig, FrEngine, PaConfig, PaEngine, PdrQuery};
use pdr_geometry::Point;
use pdr_mobject::{MotionState, ObjectId, TimeHorizon, Timestamp, Update};

struct Lcg(u64);
impl Lcg {
    fn next(&mut self) -> f64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (self.0 >> 33) as f64 / (1u64 << 31) as f64
    }
}

fn fr_cfg() -> FrConfig {
    FrConfig {
        extent: 200.0,
        m: 40,
        horizon: TimeHorizon::new(4, 4),
        buffer_pages: 64,
        threads: 2,
    }
}

fn pa_cfg() -> PaConfig {
    PaConfig {
        extent: 200.0,
        g: 5,
        degree: 5,
        l: 12.0,
        horizon: TimeHorizon::new(4, 4),
        m_d: 200,
    }
}

fn script(seed: u64) -> (Vec<(ObjectId, MotionState)>, Vec<Vec<Update>>) {
    let mut rng = Lcg(seed);
    let pop: Vec<(ObjectId, MotionState)> = (0..400)
        .map(|i| {
            let p = if i % 2 == 0 {
                Point::new(70.0 + rng.next() * 60.0, 70.0 + rng.next() * 60.0)
            } else {
                Point::new(rng.next() * 200.0, rng.next() * 200.0)
            };
            let v = Point::new(rng.next() * 2.0 - 1.0, rng.next() * 2.0 - 1.0);
            (ObjectId(i as u64), MotionState::new(p, v, 0))
        })
        .collect();
    let batches = (1..=3u64)
        .map(|t| {
            pop.iter()
                .filter(|(id, _)| id.0 % 3 == t % 3)
                .flat_map(|(id, m)| {
                    let moved = MotionState::new(
                        m.position_at(t),
                        Point::new(rng.next() * 2.0 - 1.0, rng.next() * 2.0 - 1.0),
                        t,
                    );
                    [Update::delete(*id, t, *m), Update::insert(*id, t, moved)]
                })
                .collect()
        })
        .collect();
    (pop, batches)
}

fn queries() -> Vec<PdrQuery> {
    let mut qs = Vec::new();
    for q_t in 3..=7u64 {
        for &rho in &[8.0 / 144.0, 12.0 / 144.0] {
            qs.push(PdrQuery::new(rho, 12.0, q_t));
        }
    }
    qs
}

fn ingest_fr(eng: &mut FrEngine, pop: &[(ObjectId, MotionState)], batches: &[Vec<Update>]) {
    eng.bulk_load(pop, 0);
    for (i, batch) in batches.iter().enumerate() {
        eng.advance_to(i as Timestamp + 1);
        for u in batch {
            eng.apply(u);
        }
    }
}

#[test]
fn fr_answers_are_bit_identical_with_obs_on_and_off() {
    let (pop, batches) = script(1234);

    let mut on = FrEngine::new(fr_cfg(), 0);
    let mut off = FrEngine::new(fr_cfg(), 0);
    off.set_obs_enabled(false);
    ingest_fr(&mut on, &pop, &batches);
    ingest_fr(&mut off, &pop, &batches);

    for (i, q) in queries().iter().enumerate() {
        let a = on.query(q);
        let b = off.query(q);
        assert_eq!(
            a.regions.rects(),
            b.regions.rects(),
            "query {i}: answer differs with observability toggled"
        );
        assert_eq!(a.accepts, b.accepts, "query {i}: accepts differ");
        assert_eq!(a.rejects, b.rejects, "query {i}: rejects differ");
        assert_eq!(a.candidates, b.candidates, "query {i}: candidates differ");
        assert_eq!(
            a.objects_retrieved, b.objects_retrieved,
            "query {i}: retrieved counts differ"
        );
        assert_eq!(
            a.io.logical_reads, b.io.logical_reads,
            "query {i}: io differs"
        );
        assert_eq!(a.io.misses, b.io.misses, "query {i}: io misses differ");
    }

    // Telemetry is live on the enabled engine...
    let n = queries().len() as u64;
    let rep_on = on.obs_report();
    assert_eq!(rep_on.counter("queries"), Some(n));
    for stage in ["classify", "range", "sweep", "merge", "query"] {
        let s = rep_on
            .stage(stage)
            .unwrap_or_else(|| panic!("missing stage {stage}"));
        assert!(s.count > 0, "stage {stage} recorded nothing");
        assert!(s.max_us >= s.p50_us, "stage {stage}: max below p50");
    }
    assert!(rep_on.counter("candidate_cells").unwrap() > 0);

    // ...and dark on the disabled one, except the always-on query count.
    let rep_off = off.obs_report();
    assert_eq!(rep_off.counter("queries"), Some(n));
    assert_eq!(rep_off.counter("candidate_cells"), Some(0));
    assert_eq!(rep_off.counter("objects_retrieved"), Some(0));
    for stage in ["classify", "range", "sweep", "merge", "query"] {
        assert_eq!(
            rep_off.stage(stage).unwrap().count,
            0,
            "stage {stage} leaked"
        );
    }
    assert_eq!(on.queries_served(), off.queries_served());
}

#[test]
fn pa_answers_are_bit_identical_with_obs_on_and_off() {
    let (pop, batches) = script(777);

    let mut on = PaEngine::new(pa_cfg(), 0);
    let mut off = PaEngine::new(pa_cfg(), 0);
    off.set_obs_enabled(false);
    for eng in [&mut on, &mut off] {
        for (id, m) in &pop {
            eng.apply(&Update::insert(*id, 0, *m));
        }
        for (i, batch) in batches.iter().enumerate() {
            eng.advance_to(i as Timestamp + 1);
            for u in batch {
                eng.apply(u);
            }
        }
    }

    let mut total_queries = 0u64;
    for q_t in 3..=7u64 {
        for &rho in &[0.03, 0.08] {
            let a = on.query(rho, q_t);
            let b = off.query(rho, q_t);
            assert_eq!(
                a.regions.rects(),
                b.regions.rects(),
                "PA answer differs at t={q_t}, rho={rho} with observability toggled"
            );
            assert_eq!(
                a.bound_evals, b.bound_evals,
                "bound evaluations differ at t={q_t}, rho={rho}"
            );
            total_queries += 1;
        }
    }

    let rep_on = on.obs_report();
    assert_eq!(rep_on.counter("queries"), Some(total_queries));
    assert!(rep_on.counter("bnb_expanded").unwrap() > 0);
    assert!(rep_on.stage("query").unwrap().count > 0);
    assert!(rep_on.stage("apply").unwrap().count > 0);

    let rep_off = off.obs_report();
    assert_eq!(rep_off.counter("queries"), Some(total_queries));
    assert_eq!(rep_off.counter("bnb_expanded"), Some(0));
    assert_eq!(rep_off.stage("query").unwrap().count, 0);
    assert_eq!(rep_off.stage("apply").unwrap().count, 0);
    assert_eq!(on.queries_served(), off.queries_served());
}

/// The parallel refinement path routes through the shared persistent
/// executor; its instrumentation must stay a pure observer too. With
/// `threads: 4` (chunked refinement through the pool) answers are
/// bit-identical with obs toggled either way, and the executor's own
/// report carries the pool gauges and counters whichever way the
/// engine-side toggle points.
#[test]
fn fr_pool_path_is_bit_identical_with_obs_toggled_and_exec_counters_present() {
    let (pop, batches) = script(5151);
    let pooled = FrConfig {
        threads: 4,
        ..fr_cfg()
    };

    let mut on = FrEngine::new(pooled, 0);
    let mut off = FrEngine::new(pooled, 0);
    off.set_obs_enabled(false);
    ingest_fr(&mut on, &pop, &batches);
    ingest_fr(&mut off, &pop, &batches);

    for (i, q) in queries().iter().enumerate() {
        let a = on.query(q);
        let b = off.query(q);
        assert_eq!(
            a.regions.rects(),
            b.regions.rects(),
            "query {i}: pooled answer differs with observability toggled"
        );
        assert_eq!(a.accepts, b.accepts, "query {i}: accepts differ");
        assert_eq!(a.rejects, b.rejects, "query {i}: rejects differ");
        assert_eq!(a.candidates, b.candidates, "query {i}: candidates differ");
        assert_eq!(
            a.objects_retrieved, b.objects_retrieved,
            "query {i}: retrieved counts differ"
        );
    }

    // The executor is a process-wide singleton shared with every other
    // test in this binary, so only presence and monotonicity of its
    // telemetry can be asserted here — the exact figures belong to the
    // executor's own unit tests.
    let exec = pdr_core::Executor::global().obs_report();
    for key in [
        "pool_workers",
        "queue_depth",
        "scopes",
        "tasks",
        "inline_tasks",
        "steals",
        "unparks",
        "parked_us",
    ] {
        assert!(exec.counter(key).is_some(), "executor report missing {key}");
    }
    assert!(
        exec.counter("scopes").unwrap() > 0,
        "pooled refinement recorded no executor scopes"
    );
    // On a zero-worker pool scopes run inline on the caller, so the
    // work shows up as `inline_tasks`; with workers it lands in
    // `tasks`. Either way a scope must have executed something.
    let executed = exec.counter("tasks").unwrap() + exec.counter("inline_tasks").unwrap();
    assert!(
        executed >= exec.counter("scopes").unwrap(),
        "executor scopes ran without executing any tasks"
    );
}
