//! Differential fuzz of the WAL record codecs and the log-shipping
//! replica plane, driven by an in-repo seeded LCG (no external fuzzing
//! or rand dependency).
//!
//! * **Codec differential.** The same logical record stream is framed
//!   through the legacy row codec (`codec1`) and the columnar varint
//!   codec (`codec2`); both logs must replay to the identical record
//!   sequence, at every prefix boundary, and the columnar log must be
//!   strictly smaller on re-report-shaped traffic.
//! * **Replica differential.** A primary plane and a replica of the
//!   same spec run under random interleavings of `apply_batch` /
//!   `advance_to` / log shipping / primary crash-restore / replica
//!   loss, at 1×1 (routing degenerate) and 2×2 (cut lines + halos)
//!   grids. At every caught-up sync the replica's answers must be
//!   **bit-identical** to the primary's — the same invariant the
//!   crash-recovery sweep proves for a single engine.

use pdr_core::{replay, EngineSpec, FrConfig, PdrQuery, Wal, WalCodec, WalRecord};
use pdr_geometry::Point;
use pdr_mobject::{MotionState, ObjectId, TimeHorizon, Timestamp, Update};
use std::collections::BTreeMap;

const EXTENT: f64 = 100.0;
const IDS: u64 = 40;

struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    fn f64(&mut self) -> f64 {
        self.next() as f64 / (1u64 << 31) as f64
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn in_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.f64() * (hi - lo)
    }
}

fn fr_cfg() -> FrConfig {
    FrConfig {
        extent: EXTENT,
        m: 20, // cell edge 5 ≤ l/2 for the l ≥ 10 probes below
        horizon: TimeHorizon::new(4, 2),
        buffer_pages: 8,
        threads: 1,
    }
}

fn random_motion(rng: &mut Lcg, t_ref: Timestamp) -> MotionState {
    MotionState::new(
        Point::new(rng.in_range(0.0, EXTENT), rng.in_range(0.0, EXTENT)),
        Point::new(rng.in_range(-1.0, 1.0), rng.in_range(-1.0, 1.0)),
        t_ref,
    )
}

/// A random batch against a shadow population: mostly delete+insert
/// re-report pairs (the shape codec2's pair predictor targets), plus
/// first-time inserts for unseen ids.
fn random_batch(
    rng: &mut Lcg,
    shadow: &mut BTreeMap<ObjectId, MotionState>,
    t: Timestamp,
) -> Vec<Update> {
    let mut batch = Vec::new();
    for _ in 0..(1 + rng.below(7)) {
        let id = ObjectId(rng.below(IDS));
        let insert = Update::insert(id, t, random_motion(rng, t));
        if let Some(old) = shadow.get(&id).copied() {
            batch.push(Update::delete(id, t, old));
        }
        // Mirror what the engine stores: `Update::insert` rebases the
        // report to `t_now`.
        shadow.insert(id, insert.motion());
        batch.push(insert);
    }
    batch
}

// ---------------------------------------------------------------------
// Codec differential
// ---------------------------------------------------------------------

#[test]
fn codecs_replay_identically_at_every_prefix() {
    for seed in [0x11u64, 0x2222, 0x333333, 0xDEAD_BEEF] {
        codec_case(seed);
    }
}

fn codec_case(seed: u64) {
    let mut rng = Lcg(seed);
    let mut shadow = BTreeMap::new();
    let mut records: Vec<WalRecord> = Vec::new();
    let mut t = 0;
    for _ in 0..30 {
        if rng.below(3) == 0 {
            t += 1 + rng.below(3);
            records.push(WalRecord::Advance(t));
        } else {
            records.push(WalRecord::Batch(random_batch(&mut rng, &mut shadow, t)));
        }
    }

    let mut logs = Vec::new();
    for codec in WalCodec::ALL {
        let mut wal = Wal::with_codec(codec);
        for r in &records {
            match r {
                WalRecord::Advance(t) => wal.append_advance(*t),
                WalRecord::Batch(b) => wal.append_batch(b),
            };
        }
        let replayed = replay(wal.bytes()).expect("clean log");
        assert_eq!(replayed.torn_bytes, 0);
        assert_eq!(
            replayed.records,
            records,
            "{} does not round-trip seed {seed:#x}",
            codec.label()
        );
        // Every record boundary is a valid crash prefix for either
        // codec — the recovery sweep's invariant, here under fuzz.
        for k in 0..=records.len() {
            let cut = pdr_core::record_boundaries(wal.bytes())[k];
            let prefix = replay(&wal.bytes()[..cut]).expect("prefix of a clean log");
            assert_eq!(prefix.records, records[..k], "{} prefix {k}", codec.label());
        }
        logs.push((codec, wal.bytes().len()));
    }
    let (c1, c2) = (logs[0].1, logs[1].1);
    assert!(
        c2 < c1,
        "columnar log ({c2} B) must be smaller than row log ({c1} B), seed {seed:#x}"
    );
}

// ---------------------------------------------------------------------
// Replica differential
// ---------------------------------------------------------------------

fn sharded_spec(sx: u32, sy: u32) -> EngineSpec {
    EngineSpec::Sharded {
        adaptive: None,
        inner: Box::new(EngineSpec::Fr(fr_cfg())),
        sx,
        sy,
        l_max: 14.0,
    }
}

/// Probe queries whose answers must match bit-for-bit; `l` respects
/// both the filter constraint (l ≥ 2·cell edge = 10) and the plane's
/// `l_max`, `q_t` stays inside the prediction window.
fn probes(t: Timestamp) -> Vec<PdrQuery> {
    vec![
        PdrQuery::new(0.02, 10.0, t),
        PdrQuery::new(0.01, 12.0, t + 1),
        PdrQuery::new(0.03, 14.0, t + 2),
    ]
}

#[test]
fn replica_matches_primary_under_random_interleavings() {
    for (sx, sy) in [(1, 1), (2, 2)] {
        for seed in [0xA5u64, 0xB6B6, 0xC7C7C7] {
            replica_case(sx, sy, seed);
        }
    }
}

fn replica_case(sx: u32, sy: u32, seed: u64) {
    let ctx = |step: usize| format!("grid {sx}x{sy} seed {seed:#x} step {step}");
    let spec = sharded_spec(sx, sy);
    let mut primary = spec.try_build(0).expect("primary builds");
    let mut replica = spec.try_build_replica(0).expect("replica builds");

    let mut rng = Lcg(seed);
    let mut shadow = BTreeMap::new();
    let mut t: Timestamp = 0;
    let mut compared = 0usize;

    for step in 0..60 {
        match rng.below(10) {
            // Mutations reach the replica only via shipping.
            0..=3 => {
                let batch = random_batch(&mut rng, &mut shadow, t);
                primary.apply_batch(&batch);
            }
            4..=5 => {
                t += 1;
                primary.advance_to(t);
            }
            // Ship: incremental when offsets line up, bootstrap
            // otherwise; a refused shipment must self-heal by
            // re-syncing from empty offsets.
            6..=8 => {
                let rep = replica.as_replica_mut().expect("replica surface");
                let sharded = primary.as_sharded().expect("primary surface");
                let ship = sharded.wal_since(rep.applied_epoch(), rep.applied_offsets());
                if rep.ingest(&ship).is_err() {
                    // Self-heal: empty offsets force either a sealed
                    // checkpoint or a full-history shipment.
                    let ship = sharded.wal_since(rep.applied_epoch(), &[]);
                    rep.ingest(&ship).unwrap_or_else(|e| {
                        panic!("bootstrap must self-heal ({e:?}), {}", ctx(step))
                    });
                }
                assert_eq!(rep.lag(), 0, "caught up after sync, {}", ctx(step));
                // Caught up: the two planes must answer identically
                // until the primary mutates again.
                for q in probes(t) {
                    let a = primary.query(&q);
                    let b = replica.query(&q);
                    assert_eq!(
                        a.regions.rects(),
                        b.regions.rects(),
                        "replica diverged on {q:?}, {}",
                        ctx(step)
                    );
                    compared += 1;
                }
            }
            // Primary crash: checkpoint, restore (segments reset, new
            // epoch). The replica is stale until the next ship, which
            // wal_since must turn into a bootstrap on its own.
            9 => {
                if rng.below(2) == 0 {
                    let cp = primary.checkpoint().expect("plane checkpoints");
                    primary
                        .restore_from(&cp)
                        .unwrap_or_else(|e| panic!("restore ({e:?}), {}", ctx(step)));
                } else {
                    // Replica loss: a fresh replica reports empty
                    // offsets, so its first sync is a bootstrap.
                    replica = spec.try_build_replica(0).expect("replica rebuilds");
                }
            }
            _ => unreachable!(),
        }
    }
    assert!(
        compared > 0,
        "fuzz never reached a caught-up comparison, grid {sx}x{sy} seed {seed:#x}"
    );
    assert!(
        primary.stats().objects > 0,
        "fuzz produced no population, grid {sx}x{sy} seed {seed:#x}"
    );
}
