//! Concurrent-serving acceptance tests for the query/ingest contract:
//! readers holding the shared lock in read mode must see a *frozen
//! snapshot* — bit-identical to a serial twin that stopped at the same
//! batch — even while a writer thread ticks `apply_batch` between their
//! passes, and the per-epoch classification cache must never serve
//! state computed for an older histogram epoch. A second test sweeps
//! the (shard grid × refinement workers) matrix and pins every
//! combination to the unsharded single-worker answer.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use pdr_core::{DensityEngine, EngineSpec, FrConfig, FrEngine, PdrQuery};
use pdr_geometry::{Point, Rect};
use pdr_mobject::{MotionState, ObjectId, TimeHorizon, Timestamp, Update};

struct Lcg(u64);
impl Lcg {
    fn next(&mut self) -> f64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (self.0 >> 33) as f64 / (1u64 << 31) as f64
    }
}

fn fr_cfg(threads: usize) -> FrConfig {
    FrConfig {
        extent: 200.0,
        m: 40,
        horizon: TimeHorizon::new(4, 4),
        buffer_pages: 64,
        threads,
    }
}

/// 400 objects, half clustered in a central pocket so queries straddle
/// accept/reject/refine; three ticks of delete+reinsert churn.
fn script(seed: u64) -> (Vec<(ObjectId, MotionState)>, Vec<Vec<Update>>) {
    let mut rng = Lcg(seed);
    let pop: Vec<(ObjectId, MotionState)> = (0..400)
        .map(|i| {
            let p = if i % 2 == 0 {
                Point::new(70.0 + rng.next() * 60.0, 70.0 + rng.next() * 60.0)
            } else {
                Point::new(rng.next() * 200.0, rng.next() * 200.0)
            };
            let v = Point::new(rng.next() * 2.0 - 1.0, rng.next() * 2.0 - 1.0);
            (ObjectId(i as u64), MotionState::new(p, v, 0))
        })
        .collect();
    let batches = (1..=3u64)
        .map(|t| {
            pop.iter()
                .filter(|(id, _)| id.0 % 3 == t % 3)
                .flat_map(|(id, m)| {
                    let moved = MotionState::new(
                        m.position_at(t),
                        Point::new(rng.next() * 2.0 - 1.0, rng.next() * 2.0 - 1.0),
                        t,
                    );
                    [Update::delete(*id, t, *m), Update::insert(*id, t, moved)]
                })
                .collect()
        })
        .collect();
    (pop, batches)
}

/// Timestamps 3 and 4 sit inside the horizon window of every epoch the
/// writer produces (`t_now` runs 0..=3 with a ±4 horizon), so one fixed
/// query set is valid across the whole run.
fn queries() -> Vec<PdrQuery> {
    let mut qs = Vec::new();
    for q_t in [3u64, 4] {
        for &rho in &[8.0 / 144.0, 12.0 / 144.0] {
            qs.push(PdrQuery::new(rho, 12.0, q_t));
        }
    }
    qs
}

type Oracle = HashMap<u64, Vec<(PdrQuery, Vec<Rect>)>>;

/// Replays the script on a serial twin, freezing the expected answer of
/// every query after each batch. Epochs are keyed by the engine's
/// cumulative `updates_applied` counter — the one piece of state a
/// reader can observe under its read lock to learn which batch it saw.
fn frozen_oracle(pop: &[(ObjectId, MotionState)], batches: &[Vec<Update>]) -> Oracle {
    let mut twin = FrEngine::new(fr_cfg(1), 0);
    let mut oracle = Oracle::new();
    let mut freeze = |twin: &FrEngine| {
        let key = twin.stats().updates_applied;
        let snap = queries()
            .iter()
            .map(|q| (*q, twin.query(q).regions.rects().to_vec()))
            .collect();
        oracle.insert(key, snap);
    };
    twin.bulk_load(pop, 0);
    freeze(&twin);
    for (i, batch) in batches.iter().enumerate() {
        twin.advance_to(i as Timestamp + 1);
        twin.apply_batch(batch);
        freeze(&twin);
    }
    oracle
}

/// N reader threads hammer `try_query` through a shared read lock while
/// a writer thread ticks `apply_batch`. Every reader pass pins the
/// epoch it observed (under the same read lock) and demands the frozen
/// snapshot answer for that epoch, bit for bit. The writer waits for at
/// least one full reader pass between batches so every epoch is
/// actually served concurrently, and the classification-cache counters
/// afterwards prove each (epoch, query) classification was computed
/// exactly once — a stale-epoch serve would break the bit-identity
/// assertions, a missing invalidation would break the count.
#[test]
fn hammer_readers_see_frozen_snapshots_while_writer_ticks() {
    const READERS: usize = 4;
    let (pop, batches) = script(97);
    let oracle = Arc::new(frozen_oracle(&pop, &batches));

    let mut live = FrEngine::new(fr_cfg(2), 0);
    live.bulk_load(&pop, 0);
    let live = Arc::new(RwLock::new(live));
    let passes = Arc::new(AtomicU64::new(0));
    let done = Arc::new(AtomicBool::new(false));
    let qs = queries();

    std::thread::scope(|scope| {
        for _ in 0..READERS {
            let live = Arc::clone(&live);
            let oracle = Arc::clone(&oracle);
            let passes = Arc::clone(&passes);
            let done = Arc::clone(&done);
            scope.spawn(move || {
                while !done.load(Ordering::Acquire) {
                    let eng = live.read().expect("engine lock poisoned");
                    let epoch = eng.stats().updates_applied;
                    let frozen = &oracle[&epoch];
                    for (q, expected) in frozen {
                        let a = eng.try_query(q).expect("memory-resident query failed");
                        assert_eq!(
                            a.regions.rects(),
                            expected.as_slice(),
                            "reader at epoch {epoch} diverged from the frozen snapshot"
                        );
                    }
                    drop(eng);
                    passes.fetch_add(1, Ordering::Release);
                }
            });
        }

        // Writer: between batches, wait until the readers complete at
        // least one full pass against the current epoch.
        for (i, batch) in batches.iter().enumerate() {
            let seen = passes.load(Ordering::Acquire);
            while passes.load(Ordering::Acquire) == seen {
                std::thread::yield_now();
            }
            let mut eng = live.write().expect("engine lock poisoned");
            eng.advance_to(i as Timestamp + 1);
            eng.apply_batch(batch);
        }
        let seen = passes.load(Ordering::Acquire);
        while passes.load(Ordering::Acquire) == seen {
            std::thread::yield_now();
        }
        done.store(true, Ordering::Release);
    });

    assert!(passes.load(Ordering::Acquire) > batches.len() as u64);
    // Four epochs (bulk load + three batches), four queries each, and a
    // pass holds the read lock end to end — so the cache recomputed
    // each classification exactly once per epoch, never across epochs.
    let counters = live.read().unwrap().cache_counters();
    assert_eq!(
        counters.classify_recomputes,
        (batches.len() as u64 + 1) * qs.len() as u64,
        "classification cache recomputed more or less than once per (epoch, query)"
    );
}

/// Satellite sweep: shard grids {1×1, 2×2} crossed with refinement
/// worker counts {1, 2, 4} must all reproduce the unsharded
/// single-worker answer rectangle for rectangle, after identical
/// ingest. (`per_shard_spec` no longer pins `threads = 1`, so each
/// shard really does route refinement through the shared pool.)
#[test]
fn shard_grid_times_worker_count_is_bit_identical() {
    let (pop, batches) = script(4242);
    let ingest = |eng: &mut Box<dyn DensityEngine>| {
        eng.bulk_load(&pop, 0);
        for (i, batch) in batches.iter().enumerate() {
            eng.advance_to(i as Timestamp + 1);
            eng.apply_batch(batch);
        }
    };

    let mut reference: Box<dyn DensityEngine> = Box::new(FrEngine::new(fr_cfg(1), 0));
    ingest(&mut reference);
    let base: Vec<(PdrQuery, Vec<Rect>)> = queries()
        .iter()
        .map(|q| (*q, reference.query(q).regions.rects().to_vec()))
        .collect();
    assert!(
        base.iter().any(|(_, rects)| !rects.is_empty()),
        "sweep workload answered nothing — thresholds need retuning"
    );

    for (sx, sy) in [(1u32, 1u32), (2, 2)] {
        for threads in [1usize, 2, 4] {
            let spec = EngineSpec::Sharded {
                adaptive: None,
                inner: Box::new(EngineSpec::Fr(fr_cfg(threads))),
                sx,
                sy,
                l_max: 12.0,
            };
            let mut eng = spec.build(0);
            ingest(&mut eng);
            for (q, expected) in &base {
                assert_eq!(
                    eng.query(q).regions.rects(),
                    expected.as_slice(),
                    "{sx}x{sy} shards with {threads} workers diverged at t={}",
                    q.q_t
                );
            }
        }
    }
}
