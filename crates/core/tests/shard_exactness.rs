//! Shard-boundary exactness: the sharded plane must answer
//! **bit-identically** to the unsharded engine (modulo canonical
//! rectangle form) at every shard count, with objects placed
//! adversarially on cut lines and at `cut ± l_max/2 ± ε`.

use pdr_core::{DensityEngine, EngineSpec, FrConfig, PaConfig, PdrQuery};
use pdr_geometry::{Point, RegionSet};
use pdr_mobject::{MotionState, ObjectId, TimeHorizon, Update};

const EXTENT: f64 = 100.0;
const L: f64 = 10.0;
const EPS: f64 = 1e-9;

struct Lcg(u64);

impl Lcg {
    fn next_f64(&mut self) -> f64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (self.0 >> 33) as f64 / (1u64 << 31) as f64
    }

    fn in_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.next_f64() * (hi - lo)
    }
}

fn fr_cfg() -> FrConfig {
    FrConfig {
        extent: EXTENT,
        m: 20, // pitch 5 = l/2, comfortably inside the halo math
        horizon: TimeHorizon::new(4, 4),
        buffer_pages: 64,
        threads: 2,
    }
}

fn pa_cfg() -> PaConfig {
    PaConfig {
        extent: EXTENT,
        g: 5,
        degree: 4,
        l: L,
        horizon: TimeHorizon::new(4, 4),
        m_d: 100,
    }
}

/// Objects hugging every cut line a {2x1, 2x2, 4x4} grid can produce
/// over [0, 100]² (x, y ∈ {25, 50, 75}), at the exact cut, at
/// `cut ± l/2`, and at `cut ± l/2 ± ε`, plus LCG clusters for bulk
/// density and some fast movers that cross cuts within the horizon.
fn boundary_population() -> Vec<(ObjectId, MotionState)> {
    let mut rng = Lcg(0x5EED_CAFE);
    let mut pop = Vec::new();
    let mut id = 0u64;
    let mut push = |pop: &mut Vec<(ObjectId, MotionState)>, p: Point, v: Point| {
        pop.push((ObjectId(id), MotionState::new(p, v, 0)));
        id += 1;
    };
    let offsets = [
        0.0,
        L / 2.0,
        -L / 2.0,
        L / 2.0 + EPS,
        L / 2.0 - EPS,
        -L / 2.0 - EPS,
        -L / 2.0 + EPS,
    ];
    for &cut in &[25.0, 50.0, 75.0] {
        for &dx in &offsets {
            for &y in &[10.0, 50.0, 50.0 + EPS, 90.0] {
                push(&mut pop, Point::new(cut + dx, y), Point::new(0.0, 0.0));
                push(&mut pop, Point::new(y, cut + dx), Point::new(0.0, 0.0));
            }
        }
        // Movers that cross this cut within the 4-tick horizon.
        for k in 0..6 {
            let y = 15.0 * k as f64 + 5.0;
            push(
                &mut pop,
                Point::new(cut - 3.0, y),
                Point::new(2.0, if k % 2 == 0 { 1.0 } else { -0.5 }),
            );
        }
    }
    // Dense LCG clusters so accepts/candidates/rejects all occur.
    for _ in 0..4 {
        let cx = rng.in_range(10.0, 90.0);
        let cy = rng.in_range(10.0, 90.0);
        for _ in 0..25 {
            push(
                &mut pop,
                Point::new(
                    (cx + rng.in_range(-4.0, 4.0)).clamp(0.0, EXTENT),
                    (cy + rng.in_range(-4.0, 4.0)).clamp(0.0, EXTENT),
                ),
                Point::new(rng.in_range(-1.0, 1.0), rng.in_range(-1.0, 1.0)),
            );
        }
    }
    // Background noise.
    for _ in 0..120 {
        push(
            &mut pop,
            Point::new(rng.in_range(0.0, EXTENT), rng.in_range(0.0, EXTENT)),
            Point::new(rng.in_range(-1.5, 1.5), rng.in_range(-1.5, 1.5)),
        );
    }
    pop
}

/// A couple of ticks of churn: some objects re-report near cuts, some
/// retract entirely.
fn churn(pop: &[(ObjectId, MotionState)], tick: u64) -> Vec<Update> {
    let mut rng = Lcg(0xC0FFEE ^ tick);
    let mut batch = Vec::new();
    for (i, &(id, m)) in pop.iter().enumerate() {
        match i % 7 {
            0 => {
                batch.push(Update::delete(id, tick, m));
                let p = Point::new(rng.in_range(20.0, 80.0), rng.in_range(20.0, 80.0));
                batch.push(Update::insert(
                    id,
                    tick,
                    MotionState::new(p, Point::new(rng.in_range(-2.0, 2.0), 0.5), tick),
                ));
            }
            3 => batch.push(Update::delete(id, tick, m)),
            _ => {}
        }
    }
    batch
}

fn canonical(ans: &RegionSet) -> RegionSet {
    let mut c = ans.clone();
    c.canonicalize();
    c
}

fn sharded(inner: EngineSpec, sx: u32, sy: u32) -> EngineSpec {
    EngineSpec::Sharded {
        adaptive: None,
        inner: Box::new(inner),
        sx,
        sy,
        l_max: L,
    }
}

/// Drives `base` and its sharded variants through the same script and
/// asserts rect-for-rect identity of every snapshot and interval answer.
fn assert_bit_identical(base: EngineSpec, rho: f64) {
    let pop = boundary_population();
    let grids: &[(u32, u32)] = &[(1, 1), (2, 1), (2, 2), (4, 4)];
    let mut reference = base.build(0);
    reference.bulk_load(&pop, 0);
    let mut planes: Vec<Box<dyn DensityEngine>> = grids
        .iter()
        .map(|&(sx, sy)| {
            let mut e = sharded(base.clone(), sx, sy).build(0);
            e.bulk_load(&pop, 0);
            e
        })
        .collect();

    let mut live = pop.clone();
    for tick in 0..3u64 {
        if tick > 0 {
            reference.advance_to(tick);
            for p in &mut planes {
                p.advance_to(tick);
            }
            let batch = churn(&live, tick);
            reference.apply_batch(&batch);
            for p in &mut planes {
                p.apply_batch(&batch);
            }
            // Maintain the live table for the next churn round.
            for u in &batch {
                match u.kind {
                    pdr_mobject::UpdateKind::Insert { motion } => {
                        if let Some(slot) = live.iter_mut().find(|(id, _)| *id == u.id) {
                            slot.1 = motion;
                        }
                    }
                    pdr_mobject::UpdateKind::Delete { .. } => {
                        live.retain(|(id, _)| *id != u.id);
                    }
                }
            }
        }
        for q_t in tick..=tick + 2 {
            let q = PdrQuery::new(rho, L, q_t);
            let want = canonical(&reference.query(&q).regions);
            for (gi, p) in planes.iter().enumerate() {
                let got = p.query(&q).regions;
                assert_eq!(
                    got.rects(),
                    want.rects(),
                    "{} grid {:?} diverges at tick {tick} q_t {q_t}",
                    p.name(),
                    grids[gi],
                );
            }
        }
    }
    // Interval answers are canonical-identical too.
    let want = canonical(&reference.interval_query(rho, L, 2, 5));
    for (gi, p) in planes.iter().enumerate() {
        let got = p.interval_query(rho, L, 2, 5);
        assert_eq!(
            got.rects(),
            want.rects(),
            "{} grid {:?} interval diverges",
            p.name(),
            grids[gi],
        );
    }
}

#[test]
fn fr_sharded_is_bit_identical_across_shard_grids() {
    assert_bit_identical(EngineSpec::Fr(fr_cfg()), 4.0 / (L * L));
}

#[test]
fn pa_sharded_is_bit_identical_across_shard_grids() {
    assert_bit_identical(EngineSpec::Pa(pa_cfg()), 4.0 / (L * L));
}

#[test]
fn sharded_stats_track_router_level_protocol_counts() {
    let pop = boundary_population();
    let mut plane = sharded(EngineSpec::Fr(fr_cfg()), 2, 2).build(0);
    assert_eq!(plane.name(), "sharded-fr");
    plane.bulk_load(&pop, 0);
    let st = plane.stats();
    assert_eq!(st.updates_applied, pop.len() as u64);
    assert_eq!(st.rejected_updates, 0);
    // Halo replication means shard object totals meet or exceed the
    // distinct population.
    assert!(st.objects >= pop.len(), "{} < {}", st.objects, pop.len());
    let json = plane.shard_metrics_json().expect("sharded plane reports");
    assert!(json.starts_with('[') && json.contains("\"shard\":3"));
}

#[test]
fn sharded_checkpoint_restores_bit_identically() {
    let pop = boundary_population();
    let rho = 4.0 / (L * L);
    let mut plane = sharded(EngineSpec::Fr(fr_cfg()), 2, 2).build(0);
    plane.bulk_load(&pop, 0);
    plane.advance_to(1);
    plane.apply_batch(&churn(&pop, 1));
    let cp = plane.checkpoint().expect("sharded checkpoint");
    let q = PdrQuery::new(rho, L, 2);
    let want = plane.query(&q).regions;

    let mut restored = sharded(EngineSpec::Fr(fr_cfg()), 2, 2).build(0);
    restored.restore_from(&cp).expect("restores");
    assert_eq!(restored.query(&q).regions.rects(), want.rects());

    // A checkpoint is self-describing: a plane built with a different
    // shard grid reshapes itself to the checkpoint's partition and
    // still answers bit-identically.
    let mut other = sharded(EngineSpec::Fr(fr_cfg()), 2, 1).build(0);
    other.restore_from(&cp).expect("reshapes on restore");
    assert_eq!(other.query(&q).regions.rects(), want.rects());
}
