//! Differential fuzz of the adaptive shard plane: starting from a
//! single root leaf, random interleavings of apply / advance / query /
//! subscribe / split / merge / crash-restore must stay **bit-identical**
//! to an unsharded oracle *and* to a static 2×2 grid, with zero lost or
//! duplicated updates across every live-migration cutover (checked via
//! the router's owned-object conservation law: the per-leaf owned
//! counts always sum to the live population).
//!
//! Also the migration edge cases: routing bboxes straddling a freshly
//! created cut at `cut ± l_max/2 ± ε`, deletes whose old motion was
//! reported before the split that separated them from their object,
//! and a crash at every WAL-record boundary of the handoff (the plane
//! must be untouched — splits are atomic: all-or-nothing at cutover).

use pdr_core::{
    DensityEngine, EngineSpec, FrConfig, PdrQuery, QtPolicy, SplitPolicy, SubscriptionTable,
    TopologyError,
};
use pdr_geometry::{Point, Rect, RegionSet};
use pdr_mobject::{MotionState, ObjectId, TimeHorizon, Update};
use std::collections::BTreeMap;

const EXTENT: f64 = 100.0;
const L: f64 = 10.0;
const EPS: f64 = 1e-9;

struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    fn f64(&mut self) -> f64 {
        self.next() as f64 / (1u64 << 31) as f64
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn in_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.f64() * (hi - lo)
    }
}

fn fr_cfg() -> FrConfig {
    FrConfig {
        extent: EXTENT,
        m: 20,
        horizon: TimeHorizon::new(4, 4),
        buffer_pages: 16,
        threads: 1,
    }
}

fn adaptive_spec() -> EngineSpec {
    EngineSpec::Sharded {
        adaptive: None,
        inner: Box::new(EngineSpec::Fr(fr_cfg())),
        sx: 1,
        sy: 1,
        l_max: L,
    }
}

fn static_spec(sx: u32, sy: u32) -> EngineSpec {
    EngineSpec::Sharded {
        adaptive: None,
        inner: Box::new(EngineSpec::Fr(fr_cfg())),
        sx,
        sy,
        l_max: L,
    }
}

fn canonical(ans: &RegionSet) -> RegionSet {
    let mut c = ans.clone();
    c.canonicalize();
    c
}

/// The dense corner every deterministic split targets: splitting the
/// leaf that owns this point drives the partition ≥ 3 levels deep.
const HOT: Point = Point { x: 30.0, y: 30.0 };

fn hot_leaf(eng: &pdr_core::ShardedEngine) -> usize {
    let part = eng.map();
    (0..part.shards())
        .find(|&i| part.owned(i).contains_half_open(HOT))
        .expect("owned rects tile the plane")
}

fn random_motion(rng: &mut Lcg, t_ref: u64) -> MotionState {
    // Half the traffic clusters around the hot corner so the leaf the
    // deterministic splits chase stays genuinely loaded.
    let p = if rng.below(2) == 0 {
        Point::new(
            (HOT.x + rng.in_range(-8.0, 8.0)).clamp(0.0, EXTENT),
            (HOT.y + rng.in_range(-8.0, 8.0)).clamp(0.0, EXTENT),
        )
    } else {
        Point::new(rng.in_range(0.0, EXTENT), rng.in_range(0.0, EXTENT))
    };
    MotionState::new(
        p,
        Point::new(rng.in_range(-1.5, 1.5), rng.in_range(-1.5, 1.5)),
        t_ref,
    )
}

fn random_region(rng: &mut Lcg) -> Rect {
    if rng.below(3) == 0 {
        return Rect::new(0.0, 0.0, EXTENT, EXTENT);
    }
    let x_lo = rng.in_range(0.0, EXTENT - 25.0);
    let y_lo = rng.in_range(0.0, EXTENT - 25.0);
    Rect::new(
        x_lo,
        y_lo,
        x_lo + rng.in_range(20.0, EXTENT - x_lo),
        y_lo + rng.in_range(20.0, EXTENT - y_lo),
    )
}

enum LogRec {
    Advance(u64),
    Batch(Vec<Update>),
}

fn run_fuzz(seed: u64, steps: usize) {
    let mut rng = Lcg(seed);
    let mut oracle = EngineSpec::Fr(fr_cfg()).build(0);
    let mut fixed = static_spec(2, 2).build(0);
    let mut adaptive = adaptive_spec().build(0);

    let mut now = 0u64;
    let mut next_oid = 0u64;
    let mut live: Vec<(ObjectId, MotionState)> = Vec::new();
    let initial: Vec<(ObjectId, MotionState)> = (0..220)
        .map(|_| {
            let id = ObjectId(next_oid);
            next_oid += 1;
            (id, random_motion(&mut rng, 0))
        })
        .collect();
    live.extend(initial.iter().copied());
    oracle.bulk_load(&initial, 0);
    fixed.bulk_load(&initial, 0);
    adaptive.bulk_load(&initial, 0);

    let mut cp = adaptive.checkpoint().expect("sharded checkpoint");
    let mut log: Vec<LogRec> = Vec::new();
    let mut ticks_since_cp = 0u64;
    let mut mirrors: BTreeMap<u64, Vec<Rect>> = BTreeMap::new();
    let mut max_depth_seen = 0u32;

    for step in 0..steps {
        match rng.below(12) {
            0 => {
                if mirrors.len() < 4 {
                    let rho = rng.in_range(0.02, 0.08);
                    let region = random_region(&mut rng);
                    let policy = if rng.below(2) == 0 {
                        QtPolicy::NowPlus(rng.below(3))
                    } else {
                        QtPolicy::Fixed(now + rng.below(4))
                    };
                    let id = adaptive
                        .register_subscription(rho, L, region, policy)
                        .expect("edge within l_max");
                    mirrors.insert(id.0, Vec::new());
                }
            }
            1 => {
                if let Some(&id) = mirrors
                    .keys()
                    .nth(rng.below(mirrors.len().max(1) as u64) as usize)
                {
                    assert!(adaptive.unregister_subscription(pdr_core::SubId(id)));
                    mirrors.remove(&id);
                }
            }
            2 => {
                // Keep the log shorter than the update window `U`, or a
                // replayed batch would (correctly) be screened as stale.
                if ticks_since_cp >= 3 {
                    cp = adaptive.checkpoint().expect("checkpoint");
                    log.clear();
                    ticks_since_cp = 0;
                }
                now += 1;
                ticks_since_cp += 1;
                oracle.advance_to(now);
                fixed.advance_to(now);
                adaptive.advance_to(now);
                log.push(LogRec::Advance(now));
            }
            3 => {
                // Crash the adaptive plane: restore the last composed
                // checkpoint (which may carry an older topology — the
                // partition is part of the checkpoint, so the plane
                // reshapes) and replay the logged traffic.
                adaptive.restore_from(&cp).expect("recovery");
                for rec in &log {
                    match rec {
                        LogRec::Advance(t) => adaptive.advance_to(*t),
                        LogRec::Batch(batch) => adaptive.apply_batch(batch),
                    }
                }
            }
            4 => {
                cp = adaptive.checkpoint().expect("checkpoint");
                log.clear();
                ticks_since_cp = 0;
            }
            5 | 6 => {
                let eng = adaptive.as_sharded_mut().expect("adaptive plane");
                // Drive the hot corner at least three levels deep, then
                // split arbitrary leaves.
                let idx = if eng.splits() < 3 {
                    hot_leaf(eng)
                } else {
                    rng.below(eng.map().shards() as u64) as usize
                };
                match eng.split_shard(idx) {
                    Ok(rep) => assert_eq!(rep.created.len(), 4, "step {step}"),
                    Err(TopologyError::Limits) => {}
                    Err(e) => panic!("split failed at step {step}: {e:?}"),
                }
            }
            7 => {
                let eng = adaptive.as_sharded_mut().expect("adaptive plane");
                let groups = eng.map().sibling_groups();
                if !groups.is_empty() {
                    let g = groups[rng.below(groups.len() as u64) as usize];
                    eng.merge_shards(g).expect("sibling merge");
                }
            }
            _ => {
                let mut batch = Vec::new();
                for _ in 0..(1 + rng.below(12)) {
                    if !live.is_empty() && rng.below(3) == 0 {
                        let k = rng.below(live.len() as u64) as usize;
                        let (id, motion) = live.swap_remove(k);
                        batch.push(Update::delete(id, now, motion));
                    } else {
                        let motion = random_motion(&mut rng, now);
                        let id = ObjectId(next_oid);
                        next_oid += 1;
                        let u = Update::insert(id, now, motion);
                        live.push((id, motion.rebased_to(now)));
                        batch.push(u);
                    }
                }
                oracle.apply_batch(&batch);
                fixed.apply_batch(&batch);
                adaptive.apply_batch(&batch);
                log.push(LogRec::Batch(batch));
            }
        }

        {
            let eng = adaptive.as_sharded().expect("adaptive plane");
            max_depth_seen =
                max_depth_seen.max(eng.map().leaves().iter().map(|l| l.depth()).max().unwrap());
            // Conservation: no cutover may lose or duplicate an owned
            // object — every live object has exactly one owner leaf.
            let owned: u64 = eng.owned_objects().iter().sum();
            assert_eq!(
                owned,
                live.len() as u64,
                "owned-object conservation broke at step {step}"
            );
        }

        let deltas = adaptive.maintain_subscriptions(now);
        for d in &deltas {
            assert!(!d.degraded, "no faults armed, step {step}");
            if let Some(m) = mirrors.get_mut(&d.id.0) {
                d.apply_to(m);
            }
        }

        // Every standing subscription matches a from-scratch oracle
        // query clipped to its region — both the plane's committed
        // answer and the external mirror reconstructed from deltas
        // (across re-routes and resync markers).
        let subs: Vec<_> = adaptive
            .subscriptions()
            .expect("plane has a table")
            .subs()
            .copied()
            .collect();
        assert_eq!(subs.len(), mirrors.len(), "step {step}");
        for sub in subs {
            let q_t = sub.policy.resolve(now);
            let reference = SubscriptionTable::clip(
                &canonical(&oracle.query(&PdrQuery::new(sub.rho, sub.l, q_t)).regions),
                sub.region,
            );
            let table = adaptive.subscriptions().expect("plane has a table");
            assert_eq!(
                table.answer(sub.id).expect("registered"),
                reference.rects(),
                "committed answer diverged: step {step}, sub {:?}",
                sub.id
            );
            assert_eq!(
                mirrors[&sub.id.0].as_slice(),
                reference.rects(),
                "delta mirror diverged: step {step}, sub {:?}",
                sub.id
            );
        }

        // Snapshot queries: adaptive and the static grid are both
        // bit-identical to the canonical oracle answer.
        for q_t in [now, now + 2] {
            for &rho in &[0.03, 0.06] {
                let q = PdrQuery::new(rho, L, q_t);
                let want = canonical(&oracle.query(&q).regions);
                assert_eq!(
                    adaptive.query(&q).regions.rects(),
                    want.rects(),
                    "adaptive diverged: step {step}, q_t {q_t}, rho {rho}"
                );
                assert_eq!(
                    fixed.query(&q).regions.rects(),
                    want.rects(),
                    "static grid diverged: step {step}, q_t {q_t}, rho {rho}"
                );
            }
        }
    }

    let eng = adaptive.as_sharded().expect("adaptive plane");
    assert!(eng.splits() >= 3, "only {} splits exercised", eng.splits());
    assert!(max_depth_seen >= 3, "never got {max_depth_seen} < 3 deep");
}

#[test]
fn adaptive_fuzz_seed_1() {
    run_fuzz(0xADA7_0001, 60);
}

#[test]
fn adaptive_fuzz_seed_2() {
    run_fuzz(0xADA7_0002, 60);
}

#[test]
fn adaptive_fuzz_seed_3() {
    run_fuzz(0xADA7_0003, 60);
}

// ---------------------------------------------------------------------
// Migration edge cases
// ---------------------------------------------------------------------

/// Objects hugging the cuts a depth-2 split tree creates over [0,100]²
/// (x or y ∈ {25, 50, 75}), at the exact cut and at `cut ± l_max/2 ± ε`
/// — the bbox-straddling band that decides halo membership.
fn straddler_population() -> Vec<(ObjectId, MotionState)> {
    let mut pop = Vec::new();
    let mut id = 0u64;
    let offsets = [
        0.0,
        L / 2.0,
        -L / 2.0,
        L / 2.0 + EPS,
        L / 2.0 - EPS,
        -L / 2.0 - EPS,
        -L / 2.0 + EPS,
    ];
    for &cut in &[25.0, 50.0, 75.0] {
        for &d in &offsets {
            for &y in &[12.0, 37.5, 62.5, 88.0] {
                pop.push((
                    ObjectId(id),
                    MotionState::new(Point::new(cut + d, y), Point::new(0.0, 0.0), 0),
                ));
                id += 1;
                pop.push((
                    ObjectId(id),
                    MotionState::new(Point::new(y, cut + d), Point::new(0.0, 0.0), 0),
                ));
                id += 1;
            }
        }
        // Movers whose trajectories cross the cut inside the horizon,
        // so their routing bboxes straddle it in time as well as space.
        for k in 0..8 {
            pop.push((
                ObjectId(id),
                MotionState::new(
                    Point::new(cut - 4.0, 11.0 * k as f64 + 2.0),
                    Point::new(2.5, if k % 2 == 0 { 0.75 } else { -0.75 }),
                    0,
                ),
            ));
            id += 1;
        }
    }
    pop
}

fn build_pair() -> (Box<dyn DensityEngine>, Box<dyn DensityEngine>) {
    let pop = straddler_population();
    let mut oracle = EngineSpec::Fr(fr_cfg()).build(0);
    let mut adaptive = adaptive_spec().build(0);
    oracle.bulk_load(&pop, 0);
    adaptive.bulk_load(&pop, 0);
    (oracle, adaptive)
}

fn assert_matches(oracle: &dyn DensityEngine, adaptive: &dyn DensityEngine, now: u64, ctx: &str) {
    for q_t in now..=now + 2 {
        for &rho in &[0.02, 0.05, 0.1] {
            let q = PdrQuery::new(rho, L, q_t);
            let want = canonical(&oracle.query(&q).regions);
            assert_eq!(
                adaptive.query(&q).regions.rects(),
                want.rects(),
                "{ctx}: q_t {q_t}, rho {rho}"
            );
        }
    }
}

#[test]
fn split_keeps_straddling_bboxes_exact() {
    let (oracle, mut adaptive) = build_pair();
    // Depth 1 (cut at 50), then depth 2 in every quadrant (cuts at
    // 25 / 75): every straddler band now crosses a live shard edge.
    adaptive
        .as_sharded_mut()
        .unwrap()
        .split_shard(0)
        .expect("root split");
    assert_matches(oracle.as_ref(), adaptive.as_ref(), 0, "after root split");
    for &c in &[
        Point::new(10.0, 10.0),
        Point::new(90.0, 10.0),
        Point::new(10.0, 90.0),
        Point::new(90.0, 90.0),
    ] {
        let eng = adaptive.as_sharded_mut().unwrap();
        let idx = (0..eng.map().shards())
            .find(|&i| eng.map().owned(i).contains_half_open(c))
            .expect("owned rects tile the plane");
        eng.split_shard(idx).expect("quadrant split");
    }
    let eng = adaptive.as_sharded().unwrap();
    assert_eq!(eng.map().shards(), 16);
    assert_eq!(
        eng.owned_objects().iter().sum::<u64>(),
        straddler_population().len() as u64
    );
    assert_matches(oracle.as_ref(), adaptive.as_ref(), 0, "depth-2 tree");
}

#[test]
fn old_motion_deletes_route_correctly_mid_migration() {
    let (mut oracle, mut adaptive) = build_pair();
    let pop = straddler_population();
    // Report at t=0, split at t=1: the split children inherit motions
    // whose t_ref predates the topology they live in.
    oracle.advance_to(1);
    adaptive.advance_to(1);
    adaptive
        .as_sharded_mut()
        .unwrap()
        .split_shard(0)
        .expect("split between report and retraction");
    // Retract every straddler by its *old* motion and re-report it on
    // the far side of the cut it hugged — the delete must route by the
    // old bbox (reaching the pre-split copies in both children), the
    // insert by the new one.
    let mut batch = Vec::new();
    for &(id, m) in &pop {
        if id.0 % 3 != 0 {
            continue;
        }
        batch.push(Update::delete(id, 1, m));
        let p = m.position_at(1);
        let flipped = Point::new((p.x + 30.0) % EXTENT, p.y);
        batch.push(Update::insert(
            id,
            1,
            MotionState::new(flipped, Point::new(-1.0, 0.5), 1),
        ));
    }
    oracle.apply_batch(&batch);
    adaptive.apply_batch(&batch);
    assert_matches(oracle.as_ref(), adaptive.as_ref(), 1, "post-retraction");
    assert_eq!(
        adaptive
            .as_sharded()
            .unwrap()
            .owned_objects()
            .iter()
            .sum::<u64>(),
        pop.len() as u64
    );
    // And a merge straight after heals the partition without reviving
    // any retracted trajectory.
    let eng = adaptive.as_sharded_mut().unwrap();
    let g = eng.map().sibling_groups()[0];
    eng.merge_shards(g).expect("merge back");
    assert_matches(oracle.as_ref(), adaptive.as_ref(), 1, "post-merge");
}

#[test]
fn handoff_crash_at_every_record_boundary_is_atomic() {
    let (mut oracle, mut adaptive) = build_pair();
    let pop = straddler_population();
    // Accumulate a WAL tail beyond the bulk-load checkpoint: two ticks
    // and two churn batches → four records in the handoff.
    for t in 1..=2u64 {
        oracle.advance_to(t);
        adaptive.advance_to(t);
        let mut batch = Vec::new();
        for &(id, m) in pop.iter().filter(|(id, _)| id.0 % 5 == t % 5) {
            batch.push(Update::delete(id, t, m));
            batch.push(Update::insert(
                id,
                t,
                MotionState::new(m.position_at(t), Point::new(0.5, -0.5), t),
            ));
        }
        oracle.apply_batch(&batch);
        adaptive.apply_batch(&batch);
    }
    // NB: the churn above re-reports some objects, so refresh the live
    // table the owned-count law is checked against.
    let live: u64 = adaptive.as_sharded().unwrap().owned_objects().iter().sum();
    let epoch_before = adaptive.as_sharded().unwrap().part_epoch();

    // Crash the handoff at every WAL-record boundary: each attempt must
    // abort without touching the plane, then the real split lands.
    let mut aborted = 0usize;
    let mut k = 0usize;
    loop {
        let eng = adaptive.as_sharded_mut().unwrap();
        match eng.split_shard_aborting(0, k) {
            Err(TopologyError::Aborted) => {
                aborted += 1;
                let eng = adaptive.as_sharded().unwrap();
                assert_eq!(eng.map().shards(), 1, "crash at record {k} leaked a flip");
                assert_eq!(eng.part_epoch(), epoch_before);
                assert_eq!(eng.owned_objects().iter().sum::<u64>(), live);
                assert_matches(
                    oracle.as_ref(),
                    adaptive.as_ref(),
                    2,
                    &format!("aborted at record {k}"),
                );
                k += 1;
            }
            Ok(rep) => {
                // Each of the four children replays the full tail
                // (whose record count equals the aborted boundaries
                // minus the end-of-tail one).
                assert_eq!(rep.records_replayed, 4 * (aborted as u64 - 1));
                break;
            }
            Err(e) => panic!("unexpected split failure: {e:?}"),
        }
    }
    // 4 tail records → boundaries 0..=4 all abort; the 6th attempt
    // (crash point beyond the tail) completes.
    assert_eq!(aborted, 5);
    let eng = adaptive.as_sharded().unwrap();
    assert_eq!(eng.map().shards(), 4);
    assert!(eng.part_epoch() > epoch_before);
    assert_eq!(eng.owned_objects().iter().sum::<u64>(), live);
    assert_matches(oracle.as_ref(), adaptive.as_ref(), 2, "after real split");
}

#[test]
fn auto_rebalance_splits_hot_leaves_and_merges_cold_ones() {
    let pop = straddler_population();
    let mut oracle = EngineSpec::Fr(fr_cfg()).build(0);
    let mut adaptive = EngineSpec::Sharded {
        adaptive: Some(SplitPolicy {
            split_threshold: 60,
            merge_threshold: 25,
            min_interval: 1,
            ..Default::default()
        }),
        inner: Box::new(EngineSpec::Fr(fr_cfg())),
        sx: 1,
        sy: 1,
        l_max: L,
    }
    .build(0);
    oracle.bulk_load(&pop, 0);
    adaptive.bulk_load(&pop, 0);
    for t in 1..=4u64 {
        oracle.advance_to(t);
        adaptive.advance_to(t);
        assert_matches(oracle.as_ref(), adaptive.as_ref(), t, "hot phase");
    }
    let splits = adaptive.as_sharded().unwrap().splits();
    assert!(splits >= 1, "policy never split a hot root");
    // Retract almost everything: the survivors fit one leaf, so the
    // policy must fold cold sibling groups back together.
    let mut batch = Vec::new();
    for &(id, m) in pop.iter().filter(|(id, _)| id.0 % 10 != 0) {
        batch.push(Update::delete(id, 4, m));
    }
    oracle.apply_batch(&batch);
    adaptive.apply_batch(&batch);
    for t in 5..=8u64 {
        oracle.advance_to(t);
        adaptive.advance_to(t);
        assert_matches(oracle.as_ref(), adaptive.as_ref(), t, "cold phase");
    }
    let eng = adaptive.as_sharded().unwrap();
    assert!(eng.merges() >= 1, "policy never merged a cold group");
    assert_eq!(
        eng.owned_objects().iter().sum::<u64>(),
        pop.iter().filter(|(id, _)| id.0 % 10 == 0).count() as u64
    );
}
