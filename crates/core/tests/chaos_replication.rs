//! Chaos fuzz of the replication plane: a primary and two log-shipping
//! replicas run under seeded random interleavings of writes, shipment
//! loss/duplication/re-delivery, primary crash-restores, replica loss,
//! and one mid-run failover (graceful promote + epoch fencing of the
//! deposed primary). An unfaulted **oracle** plane receives exactly the
//! acknowledged write stream and nothing else.
//!
//! Invariants, at 1×1 (routing degenerate) and 2×2 (cut lines + halos)
//! grids:
//!
//! * **No acknowledged update is ever lost** — after convergence every
//!   node answers bit-identically to the oracle.
//! * **Duplicated or re-delivered shipments are acked, not reapplied**
//!   — the replica's answers are unchanged and the duplicate counter
//!   advances instead.
//! * **Epoch fencing is absolute** — a deposed primary's writes are
//!   dropped and counted, and its shipments are refused with the typed
//!   `Fenced` error by any node that has seen the newer epoch.

use pdr_core::{DensityEngine, EngineSpec, FrConfig, PdrQuery, RecoverError};
use pdr_geometry::Point;
use pdr_mobject::{MotionState, ObjectId, TimeHorizon, Timestamp, Update};
use std::collections::BTreeMap;

const EXTENT: f64 = 100.0;
const IDS: u64 = 40;

struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    fn f64(&mut self) -> f64 {
        self.next() as f64 / (1u64 << 31) as f64
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn in_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.f64() * (hi - lo)
    }
}

fn fr_cfg() -> FrConfig {
    FrConfig {
        extent: EXTENT,
        m: 20, // cell edge 5 ≤ l/2 for the l ≥ 10 probes below
        horizon: TimeHorizon::new(4, 2),
        buffer_pages: 8,
        threads: 1,
    }
}

fn sharded_spec(sx: u32, sy: u32) -> EngineSpec {
    EngineSpec::Sharded {
        adaptive: None,
        inner: Box::new(EngineSpec::Fr(fr_cfg())),
        sx,
        sy,
        l_max: 14.0,
    }
}

fn random_motion(rng: &mut Lcg, t_ref: Timestamp) -> MotionState {
    MotionState::new(
        Point::new(rng.in_range(0.0, EXTENT), rng.in_range(0.0, EXTENT)),
        Point::new(rng.in_range(-1.0, 1.0), rng.in_range(-1.0, 1.0)),
        t_ref,
    )
}

fn random_batch(
    rng: &mut Lcg,
    shadow: &mut BTreeMap<ObjectId, MotionState>,
    t: Timestamp,
) -> Vec<Update> {
    let mut batch = Vec::new();
    for _ in 0..(1 + rng.below(7)) {
        let id = ObjectId(rng.below(IDS));
        let insert = Update::insert(id, t, random_motion(rng, t));
        if let Some(old) = shadow.get(&id).copied() {
            batch.push(Update::delete(id, t, old));
        }
        shadow.insert(id, insert.motion());
        batch.push(insert);
    }
    batch
}

fn probes(t: Timestamp) -> Vec<PdrQuery> {
    vec![
        PdrQuery::new(0.02, 10.0, t),
        PdrQuery::new(0.01, 12.0, t + 1),
        PdrQuery::new(0.03, 14.0, t + 2),
    ]
}

/// Ships the current primary's log to `replica` until it is caught up,
/// self-healing a refused shipment with an empty-offsets bootstrap.
/// Panics on a `Fenced` refusal — the caller only syncs from the live
/// lineage, where fencing would be a split-brain bug.
fn sync_from(primary: &dyn DensityEngine, replica: &mut dyn DensityEngine, ctx: &str) {
    let plane = primary.as_sharded().expect("primary surface");
    let rep = replica.as_replica_mut().expect("replica surface");
    let ship = plane.wal_since(rep.applied_epoch(), rep.applied_offsets());
    if let Err(e) = rep.ingest(&ship) {
        assert!(
            !matches!(e, RecoverError::Fenced { .. }),
            "live-lineage sync must never fence ({e:?}), {ctx}"
        );
        let ship = plane.wal_since(rep.applied_epoch(), &[]);
        rep.ingest(&ship)
            .unwrap_or_else(|e| panic!("bootstrap must self-heal ({e:?}), {ctx}"));
    }
    assert_eq!(rep.lag(), 0, "caught up after sync, {ctx}");
}

/// Compares two engines over the probe set, bit-for-bit.
fn assert_identical(a: &dyn DensityEngine, b: &dyn DensityEngine, t: Timestamp, ctx: &str) {
    for q in probes(t) {
        let ra = a.query(&q);
        let rb = b.query(&q);
        assert_eq!(
            ra.regions.rects(),
            rb.regions.rects(),
            "answers diverged on {q:?}, {ctx}"
        );
    }
}

#[test]
fn chaos_cluster_converges_to_oracle_under_faults_and_failover() {
    let mut failovers = 0u32;
    for (sx, sy) in [(1, 1), (2, 2)] {
        for seed in [0x01CE_D05Eu64, 0x0FA1_10E5, 0x5EED_CAFE] {
            failovers += chaos_case(sx, sy, seed) as u32;
        }
    }
    // The schedule is seeded, so this is deterministic: the suite must
    // actually exercise the promote + fencing path, not just happen to.
    assert!(failovers >= 3, "failover path under-covered: {failovers}/6");
}

/// Runs one seeded chaos schedule; returns whether a failover fired.
fn chaos_case(sx: u32, sy: u32, seed: u64) -> bool {
    let ctx = |step: usize| format!("grid {sx}x{sy} seed {seed:#x} step {step}");
    let spec = sharded_spec(sx, sy);
    // The oracle receives exactly the acknowledged writes, unfaulted.
    let mut oracle = spec.try_build(0).expect("oracle builds");
    let mut primary = spec.try_build(0).expect("primary builds");
    let mut replicas = vec![
        spec.try_build_replica(0).expect("replica A builds"),
        spec.try_build_replica(0).expect("replica B builds"),
    ];
    // The deposed primary after the failover event, kept around to
    // prove fencing, together with its frozen clock (it receives no
    // advances after losing the crown, so probes must use its time).
    let mut deposed: Option<(Box<dyn DensityEngine>, Timestamp)> = None;

    let mut rng = Lcg(seed);
    let mut shadow = BTreeMap::new();
    let mut t: Timestamp = 0;
    // A shipment deliberately held back for later re-delivery.
    let mut delayed: Option<(usize, pdr_core::LogShipment)> = None;
    let mut dup_acks = 0u64;

    for step in 0..80 {
        match rng.below(12) {
            // Writes go to the live primary AND the oracle: once both
            // applied, the update is acknowledged and must survive.
            0..=3 => {
                let batch = random_batch(&mut rng, &mut shadow, t);
                primary.apply_batch(&batch);
                oracle.apply_batch(&batch);
            }
            4 => {
                t += 1;
                primary.advance_to(t);
                oracle.advance_to(t);
            }
            // Normal sync of a random replica, then a caught-up
            // bit-identity check against the primary.
            5..=6 => {
                let i = rng.below(replicas.len() as u64) as usize;
                sync_from(primary.as_ref(), replicas[i].as_mut(), &ctx(step));
                assert_identical(primary.as_ref(), replicas[i].as_ref(), t, &ctx(step));
            }
            // Duplicate delivery: the same shipment ingested twice.
            // The second pass must ack without reapplying.
            7 => {
                let i = rng.below(replicas.len() as u64) as usize;
                let plane = primary.as_sharded().expect("primary surface");
                let rep = replicas[i].as_replica_mut().expect("replica surface");
                let ship = plane.wal_since(rep.applied_epoch(), rep.applied_offsets());
                if rep.ingest(&ship).is_ok() {
                    let before = rep.duplicates();
                    let second = rep.ingest(&ship).unwrap_or_else(|e| {
                        panic!("duplicate delivery must ack ({e:?}), {}", ctx(step))
                    });
                    let shipped_bytes = ship.segments.iter().any(|s| !s.bytes.is_empty());
                    if shipped_bytes && !second.bootstrapped {
                        assert!(
                            rep.duplicates() > before,
                            "re-delivery must count as duplicate, {}",
                            ctx(step)
                        );
                        dup_acks += 1;
                    }
                    assert_identical(primary.as_ref(), replicas[i].as_ref(), t, &ctx(step));
                }
            }
            // Hold a shipment back now, re-deliver it (stale and
            // out-of-order) at a later step.
            8 => match delayed.take() {
                None => {
                    let i = rng.below(replicas.len() as u64) as usize;
                    let plane = primary.as_sharded().expect("primary surface");
                    let rep = replicas[i].as_replica().expect("replica surface");
                    delayed = Some((
                        i,
                        plane.wal_since(rep.applied_epoch(), rep.applied_offsets()),
                    ));
                }
                Some((i, ship)) => {
                    // By now the replica may have moved past it, the
                    // epoch may have changed, or a failover happened:
                    // every outcome except silent divergence is legal.
                    let rep = replicas.get_mut(i).and_then(|r| r.as_replica_mut());
                    if let Some(rep) = rep {
                        match rep.ingest(&ship) {
                            Ok(_) | Err(RecoverError::Mismatch(_)) => {}
                            Err(RecoverError::Fenced { stale, current }) => {
                                assert!(stale < current, "{}", ctx(step));
                            }
                            Err(e) => {
                                panic!("stale re-delivery broke ingest ({e:?}), {}", ctx(step))
                            }
                        }
                    }
                }
            },
            // Primary crash: checkpoint + restore is state-identical
            // but resets WAL segments under a fresh segment epoch, so
            // replicas must re-bootstrap transparently.
            9 => {
                if let Some(cp) = primary.checkpoint() {
                    primary
                        .restore_from(&cp)
                        .unwrap_or_else(|e| panic!("restore ({e:?}), {}", ctx(step)));
                }
            }
            // Replica loss: fresh, empty, bootstraps on next sync.
            10 => {
                let i = rng.below(replicas.len() as u64) as usize;
                replicas[i] = spec.try_build_replica(0).expect("replica rebuilds");
                if let Some((j, _)) = delayed {
                    if i == j {
                        delayed = None;
                    }
                }
            }
            // Failover (once per run): gracefully promote replica 0 —
            // final sync, promote, fence the deposed primary.
            11 if deposed.is_none() && step > 20 => {
                sync_from(primary.as_ref(), replicas[0].as_mut(), &ctx(step));
                let mut new_primary = replicas.remove(0);
                let epoch = new_primary
                    .as_replica_mut()
                    .expect("promotable replica")
                    .promote();
                assert!(epoch >= 2, "promotion bumps the epoch, {}", ctx(step));
                // Promotion preserves the replicated state exactly.
                assert_identical(oracle.as_ref(), new_primary.as_ref(), t, &ctx(step));
                let old = std::mem::replace(&mut primary, new_primary);
                // The deposed primary observes the newer epoch (as it
                // would on the next ship_log contact) and fences.
                let old_plane = old.as_sharded().expect("deposed primary surface");
                assert!(old_plane.fence_if_stale(epoch), "fence engages");
                deposed = Some((old, t));
            }
            _ => {}
        }
    }

    // Post-chaos fencing proof on the deposed primary, if a failover
    // happened this run.
    let failed_over = deposed.is_some();
    if let Some((mut old, t_dep)) = deposed {
        let new_epoch = primary.as_sharded().expect("primary surface").repl_epoch();
        let old_plane = old.as_sharded().expect("deposed surface");
        let stale_ship = old_plane.wal_since(0, &[]);
        assert!(
            stale_ship.repl_epoch < new_epoch,
            "deposed primary ships under its stale epoch"
        );
        let writes_before = old_plane.fenced_writes();
        let snapshot: Vec<_> = probes(t_dep).iter().map(|q| old.query(q)).collect();
        let batch = random_batch(&mut rng, &mut shadow.clone(), t);
        old.apply_batch(&batch);
        let old_plane = old.as_sharded().expect("deposed surface");
        assert!(
            old_plane.fenced_writes() > writes_before,
            "fenced writes are counted, grid {sx}x{sy} seed {seed:#x}"
        );
        for (q, before) in probes(t_dep).iter().zip(&snapshot) {
            let after = old.query(q);
            assert_eq!(
                before.regions.rects(),
                after.regions.rects(),
                "fenced write must not mutate state on {q:?}"
            );
        }
        // A node that follows the new lineage refuses the deposed
        // primary's shipment with the typed error.
        sync_from(
            primary.as_ref(),
            replicas[0].as_mut(),
            "post-chaos catch-up",
        );
        let rep = replicas[0].as_replica_mut().expect("replica surface");
        assert!(rep.repl_epoch() >= new_epoch, "follower learned the epoch");
        match rep.ingest(&stale_ship) {
            Err(RecoverError::Fenced { stale, current }) => {
                assert!(stale < current, "grid {sx}x{sy} seed {seed:#x}");
            }
            other => panic!(
                "stale-epoch shipment must be fenced, got {other:?}, \
                 grid {sx}x{sy} seed {seed:#x}"
            ),
        }
    }

    // Convergence: every surviving node answers bit-identically to the
    // unfaulted oracle — no acknowledged update was lost anywhere.
    assert_identical(
        oracle.as_ref(),
        primary.as_ref(),
        t,
        &format!("primary vs oracle, grid {sx}x{sy} seed {seed:#x}"),
    );
    for (i, r) in replicas.iter_mut().enumerate() {
        sync_from(primary.as_ref(), r.as_mut(), "final convergence");
        assert_identical(
            oracle.as_ref(),
            r.as_ref(),
            t,
            &format!("replica {i} vs oracle, grid {sx}x{sy} seed {seed:#x}"),
        );
    }
    assert!(
        oracle.stats().objects > 0,
        "fuzz produced no population, grid {sx}x{sy} seed {seed:#x}"
    );
    let _ = dup_acks; // coverage varies by seed; asserted per-event above
    failed_over
}

// ---------------------------------------------------------------------
// Shipment idempotence and fencing, deterministically
// ---------------------------------------------------------------------

/// Replaying the same `LogShipment` twice acks without reapplying: the
/// duplicate counter advances, zero records are re-ingested, and the
/// answers are unchanged.
#[test]
fn duplicate_shipment_is_acked_not_reapplied() {
    let spec = sharded_spec(2, 2);
    let mut primary = spec.try_build(0).expect("primary builds");
    let mut replica = spec.try_build_replica(0).expect("replica builds");
    let mut rng = Lcg(0xD0_D0);
    let mut shadow = BTreeMap::new();

    for t in 0..4u64 {
        primary.advance_to(t);
        let batch = random_batch(&mut rng, &mut shadow, t);
        primary.apply_batch(&batch);
    }
    // Bootstrap first, then cut a purely incremental shipment: a
    // checkpoint-carrying shipment legitimately re-bootstraps on
    // re-delivery, so the duplicate-skip path is the incremental one.
    sync_from(primary.as_ref(), replica.as_mut(), "bootstrap");
    for t in 4..6u64 {
        primary.advance_to(t);
        let batch = random_batch(&mut rng, &mut shadow, t);
        primary.apply_batch(&batch);
    }
    let plane = primary.as_sharded().expect("primary surface");
    let rep = replica.as_replica_mut().expect("replica surface");
    let ship = plane.wal_since(rep.applied_epoch(), rep.applied_offsets());
    assert!(ship.checkpoint.is_none(), "incremental shipment");
    let first = rep.ingest(&ship).expect("first delivery applies");
    assert!(first.records > 0, "fixture ships real records");
    assert!(!first.bootstrapped, "{first:?}");

    let answers_before: Vec<_> = probes(5).iter().map(|q| replica.query(q)).collect();
    let rep = replica.as_replica_mut().expect("replica surface");
    let second = rep.ingest(&ship).expect("duplicate delivery is acked");
    assert_eq!(second.records, 0, "nothing reapplied: {second:?}");
    assert!(!second.bootstrapped, "{second:?}");
    assert!(rep.duplicates() > 0, "duplicate counted");
    assert_eq!(rep.lag(), 0, "still caught up");
    for (q, before) in probes(5).iter().zip(&answers_before) {
        let after = replica.query(q);
        assert_eq!(
            before.regions.rects(),
            after.regions.rects(),
            "duplicate delivery changed the answer to {q:?}"
        );
    }
    assert_identical(primary.as_ref(), replica.as_ref(), 5, "after duplicate");
}

/// A shipment cut under a stale replication epoch is refused with the
/// typed `Fenced` error and leaves the replica untouched.
#[test]
fn stale_epoch_shipment_is_fenced_with_typed_error() {
    let spec = sharded_spec(2, 2);
    let mut old_primary = spec.try_build(0).expect("old primary builds");
    let mut replica = spec.try_build_replica(0).expect("replica builds");
    let mut promoted = spec.try_build_replica(0).expect("second replica builds");
    let mut rng = Lcg(0xFE_11CE);
    let mut shadow = BTreeMap::new();

    for t in 0..3u64 {
        old_primary.advance_to(t);
        let batch = random_batch(&mut rng, &mut shadow, t);
        old_primary.apply_batch(&batch);
    }
    // Both replicas catch up under epoch 1, then one is promoted.
    sync_from(old_primary.as_ref(), replica.as_mut(), "pre-promotion");
    sync_from(old_primary.as_ref(), promoted.as_mut(), "pre-promotion");
    let epoch = promoted
        .as_replica_mut()
        .expect("promotable replica")
        .promote();
    assert!(epoch >= 2);

    // A write lands on the new lineage; the follower syncs from it and
    // thereby learns the new epoch.
    let batch = random_batch(&mut rng, &mut shadow, 3);
    promoted.apply_batch(&batch);
    sync_from(promoted.as_ref(), replica.as_mut(), "post-promotion");
    let rep = replica.as_replica().expect("replica surface");
    assert_eq!(rep.repl_epoch(), epoch, "follower carries the new epoch");
    let fenced_before = rep.fenced_shipments();

    // The deposed primary's shipment (epoch 1) must be refused, typed,
    // with the answers unchanged.
    let stale_ship = old_primary
        .as_sharded()
        .expect("old primary surface")
        .wal_since(0, &[]);
    assert!(stale_ship.repl_epoch < epoch);
    let answers_before: Vec<_> = probes(3).iter().map(|q| replica.query(q)).collect();
    let rep = replica.as_replica_mut().expect("replica surface");
    match rep.ingest(&stale_ship) {
        Err(RecoverError::Fenced { stale, current }) => {
            assert_eq!(stale, stale_ship.repl_epoch);
            assert_eq!(current, epoch);
        }
        other => panic!("expected Fenced, got {other:?}"),
    }
    assert_eq!(rep.fenced_shipments(), fenced_before + 1);
    for (q, before) in probes(3).iter().zip(&answers_before) {
        let after = replica.query(q);
        assert_eq!(
            before.regions.rects(),
            after.regions.rects(),
            "fenced shipment changed the answer to {q:?}"
        );
    }
    // The refused error is printable and names both epochs.
    let msg = format!(
        "{}",
        RecoverError::Fenced {
            stale: stale_ship.repl_epoch,
            current: epoch
        }
    );
    assert!(msg.contains("fenced"), "{msg}");
    assert!(msg.contains("stale"), "{msg}");
}

/// A promoted replica refuses to ingest anything further — promotion is
/// a one-way door out of follower mode.
#[test]
fn promoted_replica_no_longer_ingests() {
    let spec = sharded_spec(1, 1);
    let mut primary = spec.try_build(0).expect("primary builds");
    let mut replica = spec.try_build_replica(0).expect("replica builds");
    let mut rng = Lcg(0x90_0D);
    let mut shadow = BTreeMap::new();
    primary.advance_to(1);
    primary.apply_batch(&random_batch(&mut rng, &mut shadow, 1));
    sync_from(primary.as_ref(), replica.as_mut(), "pre-promotion");

    let plane = primary.as_sharded().expect("primary surface");
    let ship = plane.wal_since(0, &[]);
    let rep = replica.as_replica_mut().expect("replica surface");
    let epoch = rep.promote();
    assert_eq!(rep.promote(), epoch, "promotion is idempotent");
    assert!(
        matches!(rep.ingest(&ship), Err(RecoverError::Mismatch(_))),
        "promoted nodes must not follow"
    );
    // The flipped engine now exposes the primary surface instead.
    assert!(replica.as_replica().is_none());
    assert!(replica.as_sharded().is_some());
    let before = replica.stats().objects;
    replica.apply_batch(&random_batch(&mut rng, &mut shadow, 1));
    assert!(
        replica.stats().objects >= before,
        "promoted node accepts writes"
    );
}
