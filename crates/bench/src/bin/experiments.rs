//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run --release -p pdr-bench --bin experiments -- <id> [--scale quick|paper] [--seed N]
//! ```
//!
//! ids: `table1 fig1_3 fig7 fig8a fig8b fig8c fig8d fig9a fig9b fig10a
//! fig10b ablation_poly_grid all`
//!
//! Each run prints an aligned table to stdout and writes the same rows
//! as CSV under `results/`. Paper-vs-measured commentary lives in
//! EXPERIMENTS.md.

use pdr_bench::{
    build_engine, build_pa, build_workload, cost_engine, f3, fr_config, pa_config,
    query_timestamps, score_engine, time_it, truth_pairs, Scale, Table,
};
use pdr_core::{accuracy, exact_dense_regions, DhMode, EngineSpec, PdrQuery};
use pdr_geometry::{Point, Rect};
use pdr_mobject::Update;
use pdr_storage::CostModel;
use pdr_workload::config::ExperimentConfig;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut id = String::from("all");
    let mut scale = Scale::Quick;
    let mut seed = 20070415u64; // ICDE 2007
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = Scale::parse(args.get(i).map(String::as_str).unwrap_or(""))
                    .unwrap_or_else(|| usage("bad --scale (quick|paper)"));
            }
            "--seed" => {
                i += 1;
                seed = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage("bad --seed"));
            }
            other if !other.starts_with('-') => id = other.to_string(),
            other => usage(&format!("unknown flag {other}")),
        }
        i += 1;
    }

    let cfg = scale.config();
    eprintln!(
        "# scale = {scale:?}, seed = {seed}, H = {}, default dataset = {} objects",
        cfg.horizon(),
        cfg.default_objects()
    );

    match id.as_str() {
        "table1" => table1(&cfg),
        "fig1_3" => fig1_3(),
        "fig7" => fig7(&cfg, seed),
        "fig8a" | "fig8b" => fig8ab(&cfg, scale, seed),
        "fig8c" | "fig8d" => fig8cd(&cfg, scale, seed),
        "fig9a" => fig9a(&cfg, scale, seed),
        "fig9b" => fig9b(&cfg, seed),
        "fig10a" => fig10a(&cfg, scale, seed),
        "fig10b" => fig10b(&cfg, scale, seed),
        "ablation_poly_grid" => ablation_poly_grid(&cfg, seed),
        "ablation_refinement_index" => ablation_refinement_index(&cfg, scale, seed),
        "all" => {
            table1(&cfg);
            fig1_3();
            fig7(&cfg, seed);
            fig8ab(&cfg, scale, seed);
            fig8cd(&cfg, scale, seed);
            fig9a(&cfg, scale, seed);
            fig9b(&cfg, seed);
            fig10a(&cfg, scale, seed);
            fig10b(&cfg, scale, seed);
            ablation_poly_grid(&cfg, seed);
            ablation_refinement_index(&cfg, scale, seed);
        }
        other => usage(&format!("unknown experiment {other}")),
    }
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("usage: experiments <table1|fig1_3|fig7|fig8a|fig8b|fig8c|fig8d|fig9a|fig9b|fig10a|fig10b|ablation_poly_grid|ablation_refinement_index|all> [--scale quick|paper] [--seed N]");
    std::process::exit(2)
}

fn banner(name: &str, what: &str) {
    println!("\n=== {name}: {what} ===");
}

fn finish(table: &Table, name: &str) {
    print!("{}", table.render());
    match table.write_csv(name) {
        Ok(p) => println!("[csv written to {}]", p.display()),
        Err(e) => println!("[csv write failed: {e}]"),
    }
}

// ---------------------------------------------------------------------
// Table 1 — experimental setup
// ---------------------------------------------------------------------

fn table1(cfg: &ExperimentConfig) {
    banner("table1", "experimental setup (defaults in brackets)");
    print!("{}", cfg.render_table());
}

// ---------------------------------------------------------------------
// Figures 1 & 3 — defects of prior work, fixed by PDR
// ---------------------------------------------------------------------

fn fig1_3() {
    banner(
        "fig1_3",
        "answer loss / ambiguity / local density on the paper's micro scenes",
    );
    let mut t = Table::new(&["scene", "method", "verdict"]);

    // Scene (a): answer loss.
    {
        use pdr_core::baselines::dense_cell_query;
        use pdr_geometry::GridSpec;
        let grid = GridSpec::unit_origin(4.0, 4);
        let pts = vec![
            Point::new(1.9, 1.9),
            Point::new(2.1, 1.9),
            Point::new(1.9, 2.1),
            Point::new(2.1, 2.1),
        ];
        let cells = dense_cell_query(&pts, grid, 4.0);
        let q = PdrQuery::new(4.0, 1.0, 0);
        let pdr = exact_dense_regions(&pts, &grid.bounds(), &q);
        t.row(&[
            "1(a) answer loss".into(),
            "dense-cell [4]".into(),
            format!("{} regions (dense square straddles cells)", cells.len()),
        ]);
        t.row(&[
            "1(a) answer loss".into(),
            "PDR".into(),
            format!("{} regions, area {}", pdr.len(), f3(pdr.area())),
        ]);
    }

    // Scene (b): ambiguity.
    {
        use pdr_core::baselines::{edq_region, effective_density_query};
        let mut pts = vec![Point::new(3.0, 3.0); 4];
        pts.extend(vec![Point::new(4.5, 3.0); 4]);
        let bounds = Rect::new(0.0, 0.0, 8.0, 8.0);
        let q = PdrQuery::new(1.0, 2.0, 0);
        let squares = effective_density_query(&pts, &bounds, &q);
        let edq = edq_region(&squares, 2.0);
        let pdr = exact_dense_regions(&pts, &bounds, &q);
        t.row(&[
            "1(b) ambiguity".into(),
            "EDQ [7]".into(),
            format!(
                "{} disjoint squares, area {} (overlapping alternatives dropped)",
                squares.len(),
                f3(edq.area())
            ),
        ]);
        t.row(&[
            "1(b) ambiguity".into(),
            "PDR".into(),
            format!("all dense points, area {}", f3(pdr.area())),
        ]);
    }

    // Scene (c): local density.
    {
        let pts: Vec<Point> = (0..8)
            .map(|i| Point::new(0.3 + 0.05 * i as f64, 0.5 + 0.2 * (i % 4) as f64))
            .collect();
        let bounds = Rect::new(0.0, 0.0, 4.0, 4.0);
        let q = PdrQuery::new(1.0, 1.0, 0);
        let pdr = exact_dense_regions(&pts, &bounds, &q);
        let pocket = Point::new(1.9, 1.0);
        t.row(&[
            "1(c) local density".into(),
            "region density".into(),
            "2x2 square qualifies despite an empty pocket".into(),
        ]);
        t.row(&[
            "1(c) local density".into(),
            "PDR".into(),
            format!("pocket {:?} excluded: {}", pocket, !pdr.contains(pocket)),
        ]);
    }
    finish(&t, "fig1_3");
}

// ---------------------------------------------------------------------
// Figure 7 — example snapshot with FR and PA dense regions
// ---------------------------------------------------------------------

fn fig7(cfg: &ExperimentConfig, seed: u64) {
    banner("fig7", "example: snapshot + dense regions (FR exact vs PA)");
    let n = cfg.object_counts[0]; // the CH40K example
    let w = build_workload(cfg, n, seed);
    let fr = build_engine(&EngineSpec::Fr(fr_config(cfg, n, 100)), &w);
    let l = cfg.edge_lengths[0];
    // Concrete PA: the picture needs the rho iso-contour, which only
    // the concrete engine exposes.
    let pa = build_pa(cfg, &w, l, 20, 5);
    let q_t = cfg.horizon() / 2;
    let q = PdrQuery::new(cfg.rho(2.0, n), l, q_t);

    let fr_ans = fr.query(&q);
    let pa_ans = pa.query(q.rho, q_t);
    let acc = accuracy(&fr_ans.regions, &pa_ans.regions);

    // Dump the snapshot and both region sets.
    let mut obj = Table::new(&["x", "y"]);
    for p in w.sim.positions_at(q_t).iter().take(20_000) {
        obj.row(&[f3(p.x), f3(p.y)]);
    }
    let _ = obj.write_csv("fig7_objects");
    for (name, rs) in [("fig7_fr", &fr_ans.regions), ("fig7_pa", &pa_ans.regions)] {
        let mut t = Table::new(&["x_lo", "y_lo", "x_hi", "y_hi"]);
        for r in rs.rects() {
            t.row(&[f3(r.x_lo), f3(r.y_lo), f3(r.x_hi), f3(r.y_hi)]);
        }
        let _ = t.write_csv(name);
    }

    let mut t = Table::new(&["method", "regions", "area", "r_fp", "r_fn"]);
    t.row(&[
        "FR (exact)".into(),
        fr_ans.regions.len().to_string(),
        f3(fr_ans.regions.area()),
        "0.000".into(),
        "0.000".into(),
    ]);
    t.row(&[
        "PA".into(),
        pa_ans.regions.len().to_string(),
        f3(pa_ans.regions.area()),
        f3(acc.r_fp),
        f3(acc.r_fn),
    ]);
    finish(&t, "fig7");
    println!("[region CSVs: results/fig7_objects.csv, fig7_fr.csv, fig7_pa.csv]");

    // The actual picture: snapshot + FR regions + PA regions + the
    // rho iso-contour of the approximated surface.
    let world = Rect::new(0.0, 0.0, cfg.extent, cfg.extent);
    let mut scene = pdr_bench::render::SvgScene::new(world, 900.0);
    let positions = w.sim.positions_at(q_t);
    scene.draw_points(&positions, 0.7, "#555555", 0.45);
    scene.draw_region(&fr_ans.regions, "#d62728", 0.35, "#d62728");
    scene.draw_region(&pa_ans.regions, "#1f77b4", 0.25, "#1f77b4");
    scene.draw_contours(&pa.contours(q.rho, q_t, 400), "#1f77b4", 1.0);
    scene.draw_label(
        pdr_geometry::Point::new(10.0, cfg.extent - 20.0),
        "red: FR (exact) / blue: PA + rho-contour",
        16.0,
        "black",
    );
    match scene.write("fig7") {
        Ok(p) => println!("[svg written to {}]", p.display()),
        Err(e) => println!("[svg write failed: {e}]"),
    }
}

// ---------------------------------------------------------------------
// Figure 8(a)/(b) — error ratios vs l and varrho
// ---------------------------------------------------------------------

fn fig8ab(cfg: &ExperimentConfig, scale: Scale, seed: u64) {
    banner(
        "fig8ab",
        "r_fp (PA vs optimistic DH) and r_fn (PA vs pessimistic DH) vs l, varrho",
    );
    let n = cfg.default_objects();
    let w = build_workload(cfg, n, seed);
    let fr = build_engine(&EngineSpec::Fr(fr_config(cfg, n, 100)), &w); // truth provider
    let dh = fr_config(cfg, n, 100); // DH(m=100), same histogram shape
    let dh_opt = build_engine(&EngineSpec::Dh(dh, DhMode::Optimistic), &w);
    let dh_pes = build_engine(&EngineSpec::Dh(dh, DhMode::Pessimistic), &w);
    let q_ts = query_timestamps(cfg, scale.queries_per_point());
    let model = CostModel {
        random_io_ms: cfg.random_io_ms,
    };

    let mut ta = Table::new(&["l", "varrho", "r_fp_PA", "r_fp_optDH"]);
    let mut tb = Table::new(&["l", "varrho", "r_fn_PA", "r_fn_pesDH"]);
    for &l in &cfg.edge_lengths {
        let pa = build_engine(&EngineSpec::Pa(pa_config(cfg, l, 20, 5)), &w);
        for &varrho in &cfg.relative_thresholds {
            let rho = cfg.rho(varrho, n);
            let queries = truth_pairs(fr.as_ref(), rho, l, &q_ts);
            let pa_s = score_engine(pa.as_ref(), &queries, &model);
            let opt_s = score_engine(dh_opt.as_ref(), &queries, &model);
            let pes_s = score_engine(dh_pes.as_ref(), &queries, &model);
            ta.row(&[f3(l), f3(varrho), f3(pa_s.r_fp), f3(opt_s.r_fp)]);
            tb.row(&[f3(l), f3(varrho), f3(pa_s.r_fn), f3(pes_s.r_fn)]);
        }
    }
    println!("-- fig8a: false positive ratio --");
    finish(&ta, "fig8a");
    println!("-- fig8b: false negative ratio --");
    finish(&tb, "fig8b");
}

// ---------------------------------------------------------------------
// Figure 8(c)/(d) — error ratio vs memory
// ---------------------------------------------------------------------

fn fig8cd(cfg: &ExperimentConfig, scale: Scale, seed: u64) {
    banner("fig8cd", "error ratio vs memory (l = 30, varrho = 2)");
    let n = cfg.default_objects();
    let w = build_workload(cfg, n, seed);
    let fr = build_engine(&EngineSpec::Fr(fr_config(cfg, n, 100)), &w);
    let l = cfg.edge_lengths[0];
    let rho = cfg.rho(2.0, n);
    let q_ts = query_timestamps(cfg, scale.queries_per_point());
    let model = CostModel {
        random_io_ms: cfg.random_io_ms,
    };

    let mut tc = Table::new(&["method", "config", "memory_MB", "r_fp"]);
    let mut td = Table::new(&["method", "config", "memory_MB", "r_fn"]);

    // Truth per timestamp (reused across all configurations).
    let queries = truth_pairs(fr.as_ref(), rho, l, &q_ts);
    let mb = |bytes: usize| f3(bytes as f64 / (1024.0 * 1024.0));

    // DH sweeps over histogram resolution.
    for &cells in &cfg.histogram_cells {
        let m = (cells as f64).sqrt() as u32;
        let dh = fr_config(cfg, n, m);
        let opt = build_engine(&EngineSpec::Dh(dh, DhMode::Optimistic), &w);
        let pes = build_engine(&EngineSpec::Dh(dh, DhMode::Pessimistic), &w);
        let opt_s = score_engine(opt.as_ref(), &queries, &model);
        let pes_s = score_engine(pes.as_ref(), &queries, &model);
        tc.row(&[
            "optimistic-DH".into(),
            format!("m2={cells}"),
            mb(opt.stats().memory_bytes),
            f3(opt_s.r_fp),
        ]);
        td.row(&[
            "pessimistic-DH".into(),
            format!("m2={cells}"),
            mb(pes.stats().memory_bytes),
            f3(pes_s.r_fn),
        ]);
    }

    // PA sweeps over (g, k).
    let variants: Vec<(u32, usize)> = vec![(10, 3), (20, 3), (20, 4), (20, 5), (40, 5)];
    for (g, k) in variants {
        let pa = build_engine(&EngineSpec::Pa(pa_config(cfg, l, g, k)), &w);
        let s = score_engine(pa.as_ref(), &queries, &model);
        let mem = mb(pa.stats().memory_bytes);
        tc.row(&["PA".into(), format!("g={g},k={k}"), mem.clone(), f3(s.r_fp)]);
        td.row(&["PA".into(), format!("g={g},k={k}"), mem, f3(s.r_fn)]);
    }
    println!("-- fig8c: r_fp vs memory --");
    finish(&tc, "fig8c");
    println!("-- fig8d: r_fn vs memory --");
    finish(&td, "fig8d");
}

// ---------------------------------------------------------------------
// Figure 9(a) — query CPU of PA vs DH
// ---------------------------------------------------------------------

fn fig9a(cfg: &ExperimentConfig, scale: Scale, seed: u64) {
    banner(
        "fig9a",
        "query CPU vs varrho: PA vs DH (classification + answer assembly)",
    );
    let n = cfg.default_objects();
    let w = build_workload(cfg, n, seed);
    let dh = build_engine(
        &EngineSpec::Dh(fr_config(cfg, n, 100), DhMode::Optimistic),
        &w,
    );
    let q_ts = query_timestamps(cfg, scale.queries_per_point());
    let model = CostModel {
        random_io_ms: cfg.random_io_ms,
    };

    let mut t = Table::new(&["l", "varrho", "PA_ms", "DH_ms"]);
    for &l in &cfg.edge_lengths {
        let pa = build_engine(&EngineSpec::Pa(pa_config(cfg, l, 20, 5)), &w);
        for &varrho in &cfg.relative_thresholds {
            let rho = cfg.rho(varrho, n);
            let queries: Vec<PdrQuery> =
                q_ts.iter().map(|&q_t| PdrQuery::new(rho, l, q_t)).collect();
            let pa_s = cost_engine(pa.as_ref(), &queries, &model);
            let dh_s = cost_engine(dh.as_ref(), &queries, &model);
            t.row(&[f3(l), f3(varrho), f3(pa_s.cpu_ms), f3(dh_s.cpu_ms)]);
        }
    }
    finish(&t, "fig9a");
}

// ---------------------------------------------------------------------
// Figure 9(b) — maintenance CPU per location update
// ---------------------------------------------------------------------

fn fig9b(cfg: &ExperimentConfig, seed: u64) {
    banner("fig9b", "maintenance CPU per location update: PA vs DH");
    let n = cfg.default_objects().min(50_000);
    let mut w = build_workload(cfg, n, seed);

    // Collect a real update stream from the simulator.
    let mut updates: Vec<Update> = Vec::new();
    while updates.len() < 20_000 {
        let batch = w.sim.tick();
        updates.extend(batch.iter().copied());
        if w.sim.t_now() > 10 * cfg.horizon() {
            break; // safety net for tiny workloads
        }
    }
    // Measure a fresh pass over the recorded stream, advancing each
    // engine's window with the stream so every update does the full
    // steady-state amount of work.
    let replay = |spec: EngineSpec| {
        let mut e = build_engine(&spec, &w);
        let mut t_base = 0;
        let (_, d) = time_it(|| {
            for u in &updates {
                if u.t_now > t_base {
                    e.advance_to(u.t_now);
                    t_base = u.t_now;
                }
                e.apply_batch(std::slice::from_ref(u));
            }
        });
        d
    };
    let dh_time = replay(EngineSpec::Dh(fr_config(cfg, n, 100), DhMode::Optimistic));
    let pa_time = replay(EngineSpec::Pa(pa_config(cfg, cfg.edge_lengths[0], 20, 5)));

    let mut t = Table::new(&["method", "updates", "us_per_update"]);
    let per = |d: std::time::Duration| d.as_secs_f64() * 1e6 / updates.len() as f64;
    t.row(&["DH".into(), updates.len().to_string(), f3(per(dh_time))]);
    t.row(&["PA".into(), updates.len().to_string(), f3(per(pa_time))]);
    finish(&t, "fig9b");
}

// ---------------------------------------------------------------------
// Figure 10(a) — total query cost (CPU + I/O) of FR vs PA
// ---------------------------------------------------------------------

fn fig10a(cfg: &ExperimentConfig, scale: Scale, seed: u64) {
    banner(
        "fig10a",
        "total query cost vs varrho: PA vs FR (CPU + 10ms/IO)",
    );
    let n = cfg.default_objects();
    let w = build_workload(cfg, n, seed);
    let fr = build_engine(&EngineSpec::Fr(fr_config(cfg, n, 100)), &w);
    let q_ts = query_timestamps(cfg, scale.queries_per_point());
    let model = CostModel {
        random_io_ms: cfg.random_io_ms,
    };

    let mut t = Table::new(&["l", "varrho", "PA_ms", "FR_ms", "FR_io"]);
    for &l in &cfg.edge_lengths {
        let pa = build_engine(&EngineSpec::Pa(pa_config(cfg, l, 20, 5)), &w);
        for &varrho in &cfg.relative_thresholds {
            let rho = cfg.rho(varrho, n);
            let queries: Vec<PdrQuery> =
                q_ts.iter().map(|&q_t| PdrQuery::new(rho, l, q_t)).collect();
            let pa_s = cost_engine(pa.as_ref(), &queries, &model);
            let fr_s = cost_engine(fr.as_ref(), &queries, &model);
            t.row(&[
                f3(l),
                f3(varrho),
                f3(pa_s.cpu_ms),
                f3(fr_s.total_ms),
                format!("{:.1}", fr_s.io),
            ]);
        }
    }
    finish(&t, "fig10a");
}

// ---------------------------------------------------------------------
// Figure 10(b) — query cost vs dataset size
// ---------------------------------------------------------------------

fn fig10b(cfg: &ExperimentConfig, scale: Scale, seed: u64) {
    banner(
        "fig10b",
        "total query cost vs dataset size (l = 30, varrho = 2)",
    );
    let l = cfg.edge_lengths[0];
    let q_ts = query_timestamps(cfg, scale.queries_per_point());
    let model = CostModel {
        random_io_ms: cfg.random_io_ms,
    };
    let mut t = Table::new(&["objects", "PA_ms", "FR_ms", "FR_io"]);
    for &n in &cfg.object_counts {
        let w = build_workload(cfg, n, seed);
        let fr = build_engine(&EngineSpec::Fr(fr_config(cfg, n, 100)), &w);
        let pa = build_engine(&EngineSpec::Pa(pa_config(cfg, l, 20, 5)), &w);
        let rho = cfg.rho(2.0, n);
        let queries: Vec<PdrQuery> = q_ts.iter().map(|&q_t| PdrQuery::new(rho, l, q_t)).collect();
        let pa_s = cost_engine(pa.as_ref(), &queries, &model);
        let fr_s = cost_engine(fr.as_ref(), &queries, &model);
        t.row(&[
            n.to_string(),
            f3(pa_s.cpu_ms),
            f3(fr_s.total_ms),
            format!("{:.1}", fr_s.io),
        ]);
    }
    finish(&t, "fig10b");
}

// ---------------------------------------------------------------------
// Ablation — multi-polynomial grid vs single global polynomial
// ---------------------------------------------------------------------

fn ablation_poly_grid(cfg: &ExperimentConfig, seed: u64) {
    banner(
        "ablation_poly_grid",
        "PA accuracy: single global polynomial vs g x g grid (Section 6.4)",
    );
    let n = cfg.default_objects().min(20_000);
    let w = build_workload(cfg, n, seed);
    let fr = build_engine(&EngineSpec::Fr(fr_config(cfg, n, 100)), &w);
    let l = cfg.edge_lengths[0];
    let rho = cfg.rho(2.0, n);
    let q_t = cfg.horizon() / 2;
    let queries = truth_pairs(fr.as_ref(), rho, l, &[q_t]);
    let model = CostModel {
        random_io_ms: cfg.random_io_ms,
    };

    let mut t = Table::new(&["g", "k", "memory_MB", "r_fp", "r_fn"]);
    for (g, k) in [(1u32, 5usize), (1, 8), (5, 5), (20, 5), (40, 5)] {
        let pa = build_engine(&EngineSpec::Pa(pa_config(cfg, l, g, k)), &w);
        let s = score_engine(pa.as_ref(), &queries, &model);
        t.row(&[
            g.to_string(),
            k.to_string(),
            f3(pa.stats().memory_bytes as f64 / (1024.0 * 1024.0)),
            f3(s.r_fp),
            f3(s.r_fn),
        ]);
    }
    finish(&t, "ablation_poly_grid");
}

// ---------------------------------------------------------------------
// Ablation — TPR-tree vs velocity-bounded grid as the refinement index
// ---------------------------------------------------------------------

fn ablation_refinement_index(cfg: &ExperimentConfig, scale: Scale, seed: u64) {
    banner(
        "ablation_refinement_index",
        "FR total query cost: TPR-tree vs grid refinement index",
    );
    let n = cfg.default_objects();
    let w = build_workload(cfg, n, seed);
    let fr_cfg = fr_config(cfg, n, 100);
    let fr_tpr = build_engine(&EngineSpec::Fr(fr_cfg), &w);
    let fr_grid = build_engine(
        &EngineSpec::FrGrid {
            fr: fr_cfg,
            buckets_per_side: 32,
        },
        &w,
    );

    let l = cfg.edge_lengths[0];
    let q_ts = query_timestamps(cfg, scale.queries_per_point());
    let model = CostModel {
        random_io_ms: cfg.random_io_ms,
    };
    let mut t = Table::new(&[
        "varrho",
        "TPR_ms",
        "TPR_io",
        "Grid_ms",
        "Grid_io",
        "answers_equal",
    ]);
    for &varrho in &[1.0, 3.0, 5.0] {
        let rho = cfg.rho(varrho, n);
        let (mut a_ms, mut a_io) = (0.0, 0u64);
        let (mut b_ms, mut b_io) = (0.0, 0u64);
        let mut equal = true;
        for &q_t in &q_ts {
            let q = PdrQuery::new(rho, l, q_t);
            let a = fr_tpr.query(&q);
            a_ms += a.total_ms(&model);
            a_io += a.io.misses + a.io.writebacks;
            let b = fr_grid.query(&q);
            b_ms += b.total_ms(&model);
            b_io += b.io.misses + b.io.writebacks;
            if a.regions.symmetric_difference_area(&b.regions) > 1e-9 {
                equal = false;
            }
        }
        let k = q_ts.len() as f64;
        t.row(&[
            f3(varrho),
            f3(a_ms / k),
            format!("{:.1}", a_io as f64 / k),
            f3(b_ms / k),
            format!("{:.1}", b_io as f64 / k),
            equal.to_string(),
        ]);
    }
    finish(&t, "ablation_refinement_index");
}
