//! Minimal SVG rendering of snapshots, dense regions and contours.
//!
//! Figure 7 of the paper is a *picture*: the object snapshot with the
//! dense regions found by FR and PA drawn over it. This module renders
//! the same picture as a standalone SVG (no external crates — SVG is
//! plain text), so `experiments fig7` produces something a reader can
//! actually look at next to the paper.

use pdr_chebyshev::Contour;
use pdr_geometry::{Point, Rect, RegionSet};
use std::fmt::Write as _;

/// An SVG scene over a square world rectangle.
pub struct SvgScene {
    world: Rect,
    size_px: f64,
    body: String,
}

impl SvgScene {
    /// Creates a scene mapping `world` onto a `size_px × size_px`
    /// image (Y flipped so north is up).
    pub fn new(world: Rect, size_px: f64) -> Self {
        assert!(!world.is_degenerate(), "degenerate world rect");
        assert!(size_px > 0.0);
        SvgScene {
            world,
            size_px,
            body: String::new(),
        }
    }

    fn sx(&self, x: f64) -> f64 {
        (x - self.world.x_lo) / self.world.width() * self.size_px
    }

    fn sy(&self, y: f64) -> f64 {
        // SVG's y grows downward.
        (self.world.y_hi - y) / self.world.height() * self.size_px
    }

    /// Draws every object position as a small dot.
    pub fn draw_points(&mut self, points: &[Point], radius_px: f64, color: &str, opacity: f64) {
        for p in points {
            let _ = writeln!(
                self.body,
                r#"<circle cx="{:.2}" cy="{:.2}" r="{radius_px}" fill="{color}" fill-opacity="{opacity}"/>"#,
                self.sx(p.x),
                self.sy(p.y),
            );
        }
    }

    /// Draws a region as filled rectangles.
    pub fn draw_region(&mut self, region: &RegionSet, fill: &str, opacity: f64, stroke: &str) {
        for r in region.rects() {
            let _ = writeln!(
                self.body,
                r#"<rect x="{:.2}" y="{:.2}" width="{:.2}" height="{:.2}" fill="{fill}" fill-opacity="{opacity}" stroke="{stroke}" stroke-width="0.4"/>"#,
                self.sx(r.x_lo),
                self.sy(r.y_hi),
                r.width() / self.world.width() * self.size_px,
                r.height() / self.world.height() * self.size_px,
            );
        }
    }

    /// Draws contour polylines.
    pub fn draw_contours(&mut self, contours: &[Contour], color: &str, width_px: f64) {
        for c in contours {
            if c.points.len() < 2 {
                continue;
            }
            let mut d = String::new();
            for (i, p) in c.points.iter().enumerate() {
                let _ = write!(
                    d,
                    "{}{:.2},{:.2} ",
                    if i == 0 { "M" } else { "L" },
                    self.sx(p.x),
                    self.sy(p.y)
                );
            }
            if c.closed {
                d.push('Z');
            }
            let _ = writeln!(
                self.body,
                r#"<path d="{d}" fill="none" stroke="{color}" stroke-width="{width_px}"/>"#
            );
        }
    }

    /// Adds a text label at world coordinates.
    pub fn draw_label(&mut self, at: Point, text: &str, size_px: f64, color: &str) {
        let _ = writeln!(
            self.body,
            r#"<text x="{:.2}" y="{:.2}" font-size="{size_px}" fill="{color}" font-family="sans-serif">{text}</text>"#,
            self.sx(at.x),
            self.sy(at.y),
        );
    }

    /// Finalizes the document.
    pub fn finish(self) -> String {
        format!(
            concat!(
                r#"<svg xmlns="http://www.w3.org/2000/svg" width="{s}" height="{s}" "#,
                r#"viewBox="0 0 {s} {s}">"#,
                "\n<rect width=\"{s}\" height=\"{s}\" fill=\"white\"/>\n{body}</svg>\n"
            ),
            s = self.size_px,
            body = self.body
        )
    }

    /// Writes the SVG under `results/` and returns the path.
    pub fn write(self, name: &str) -> std::io::Result<std::path::PathBuf> {
        let dir = std::path::Path::new("results");
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{name}.svg"));
        std::fs::write(&path, self.finish())?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_well_formed_svg() {
        let mut scene = SvgScene::new(Rect::new(0.0, 0.0, 100.0, 100.0), 400.0);
        scene.draw_points(&[Point::new(50.0, 50.0)], 1.5, "black", 0.8);
        scene.draw_region(
            &RegionSet::from_rects([Rect::new(10.0, 10.0, 30.0, 30.0)]),
            "red",
            0.3,
            "darkred",
        );
        scene.draw_contours(
            &[Contour {
                points: vec![Point::new(0.0, 0.0), Point::new(10.0, 10.0)],
                closed: false,
            }],
            "blue",
            1.0,
        );
        scene.draw_label(Point::new(5.0, 95.0), "FR", 12.0, "black");
        let svg = scene.finish();
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
        assert!(svg.contains("<circle"));
        assert!(svg.contains("<rect"));
        assert!(svg.contains("<path"));
        assert!(svg.contains("<text"));
        // Y flip: world y=95 near the top of a 400px image.
        assert!(svg.contains(r#"y="20.00""#));
    }

    #[test]
    fn coordinates_map_into_the_viewport() {
        let mut scene = SvgScene::new(Rect::new(0.0, 0.0, 1000.0, 1000.0), 500.0);
        scene.draw_points(&[Point::new(1000.0, 0.0)], 1.0, "black", 1.0);
        let svg = scene.finish();
        assert!(svg.contains(r#"cx="500.00" cy="500.00""#));
    }
}
