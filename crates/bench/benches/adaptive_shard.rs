//! Hotspot-adaptive sharding bench: a skewed moving-object stream
//! (Gaussian hotspots over a uniform background, protocol-shaped churn)
//! drives an adaptive plane (1×1 root + split/merge policy), a fixed
//! uniform grid at the same shard budget, and an unsharded reference
//! through identical traffic. Every answer is checked rectangle-for-
//! rectangle identical, per-query latency is sampled for p95s, and a
//! log-shipping replica is carried across the adaptive plane's
//! topology changes (it must re-bootstrap and answer bit-identically).
//!
//! Writes `BENCH_adaptive_shard.json` at the workspace root.
//!
//! Usage: `cargo bench --bench adaptive_shard [-- <n_objects> <ticks>]`
//! (defaults: 4000 objects, 10 ticks). NOTE: the adaptive-vs-fixed p95
//! ratio measures *useful parallelism* — on a single-core host the
//! fan-out cannot win and the JSON records `available_parallelism` so
//! the reader can interpret the ratio.

use pdr_core::{DensityEngine, EngineSpec, FrConfig, PdrQuery, SplitPolicy};
use pdr_geometry::RegionSet;
use pdr_mobject::{TimeHorizon, Update};
use pdr_workload::{SkewConfig, SkewedWorkload};
use std::time::Instant;

const EXTENT: f64 = 100.0;
const L: f64 = 10.0;

fn fr_spec() -> EngineSpec {
    EngineSpec::Fr(FrConfig {
        extent: EXTENT,
        m: 20,
        horizon: TimeHorizon::new(4, 4),
        buffer_pages: 256,
        threads: 1,
    })
}

fn adaptive_spec(split_threshold: u64) -> EngineSpec {
    EngineSpec::Sharded {
        adaptive: Some(SplitPolicy {
            split_threshold,
            merge_threshold: split_threshold / 8,
            min_interval: 1,
            max_depth: 6,
            max_shards: 16,
        }),
        inner: Box::new(fr_spec()),
        sx: 1,
        sy: 1,
        l_max: L,
    }
}

fn fixed_spec() -> EngineSpec {
    EngineSpec::Sharded {
        adaptive: None,
        inner: Box::new(fr_spec()),
        sx: 4,
        sy: 4,
        l_max: L,
    }
}

fn canonical(ans: &RegionSet) -> RegionSet {
    let mut c = ans.clone();
    c.canonicalize();
    c
}

/// p95 of per-call query latency (milliseconds) over a fixed probe set.
fn p95_query_ms(eng: &dyn DensityEngine, probes: &[PdrQuery], reps: usize) -> f64 {
    let mut samples = Vec::with_capacity(probes.len() * reps);
    for _ in 0..reps {
        for q in probes {
            let started = Instant::now();
            std::hint::black_box(eng.query(q).regions.len());
            samples.push(started.elapsed().as_secs_f64() * 1e3);
        }
    }
    samples.sort_by(f64::total_cmp);
    samples[((samples.len() as f64 * 0.95) as usize).min(samples.len() - 1)]
}

fn main() {
    let mut args = std::env::args().skip(1).filter(|a| !a.starts_with("--"));
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(1500);
    let ticks: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(8);
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    println!("adaptive_shard: n = {n}, ticks = {ticks}, cores = {cores}");

    let skew = SkewConfig {
        objects: n,
        extent: EXTENT,
        hotspots: 2,
        sigma: 4.0,
        hotspot_fraction: 0.85,
        v_max: 1.0,
        drift: 0.3,
        update_period: 4,
        seed: 0xC1CADA,
    };
    let mut stream = SkewedWorkload::new(skew);
    let pop = stream.population();
    let split_threshold = (n as u64 / 8).max(64);

    let mut reference = fr_spec().build(0);
    let mut adaptive = adaptive_spec(split_threshold).build(0);
    let mut fixed = fixed_spec().build(0);
    reference.bulk_load(&pop, 0);
    adaptive.bulk_load(&pop, 0);
    fixed.bulk_load(&pop, 0);

    // A replica follows the adaptive primary via log shipping across
    // every topology change the policy makes.
    let mut replica = adaptive_spec(split_threshold)
        .try_build_replica(0)
        .expect("replica builds");
    let mut bootstraps = 0u64;

    let mut ingest_ms_adaptive = 0.0f64;
    let mut ingest_ms_fixed = 0.0f64;
    let mut batches: Vec<Update> = Vec::new();
    for t in 1..=ticks {
        batches.clear();
        batches.extend(stream.tick(t));
        reference.advance_to(t);
        reference.apply_batch(&batches);

        let started = Instant::now();
        adaptive.advance_to(t); // policy evaluates here: splits chase the hotspots
        adaptive.apply_batch(&batches);
        ingest_ms_adaptive += started.elapsed().as_secs_f64() * 1e3;

        let started = Instant::now();
        fixed.advance_to(t);
        fixed.apply_batch(&batches);
        ingest_ms_fixed += started.elapsed().as_secs_f64() * 1e3;

        // Ship the tick to the replica. A topology change bumps the
        // WAL epoch, so the next shipment is a bootstrap (checkpoint +
        // new partition) and the replica re-shapes itself.
        let (epoch, offsets) = {
            let rep = replica.as_replica().expect("replica surface");
            (rep.applied_epoch(), rep.applied_offsets().to_vec())
        };
        let ship = adaptive
            .as_sharded()
            .expect("adaptive plane")
            .wal_since(epoch, &offsets);
        let report = replica
            .as_replica_mut()
            .expect("replica surface")
            .ingest(&ship)
            .expect("replica ingests every shipment");
        if report.bootstrapped {
            bootstraps += 1;
        }
    }

    let eng = adaptive.as_sharded().expect("adaptive plane");
    let (splits, merges, leaves, part_epoch) = (
        eng.splits(),
        eng.merges(),
        eng.map().shards(),
        eng.part_epoch(),
    );
    println!(
        "adaptive plane: {leaves} leaves after {splits} splits / {merges} merges (epoch {part_epoch})"
    );
    assert!(splits >= 1, "policy never split under a skewed stream");

    // Exactness: adaptive, fixed and replica all answer bit-identically
    // to the unsharded reference.
    let probes: Vec<PdrQuery> = [ticks, ticks + 1, ticks + 2]
        .iter()
        .flat_map(|&q_t| {
            [0.04, 0.08]
                .iter()
                .map(move |&rho| PdrQuery::new(rho, L, q_t))
                .collect::<Vec<_>>()
        })
        .collect();
    let mut replica_exact = true;
    for q in &probes {
        let want = canonical(&reference.query(q).regions);
        assert_eq!(
            adaptive.query(q).regions.rects(),
            want.rects(),
            "adaptive diverged at q_t {}",
            q.q_t
        );
        assert_eq!(
            fixed.query(q).regions.rects(),
            want.rects(),
            "fixed grid diverged at q_t {}",
            q.q_t
        );
        replica_exact &= replica.query(q).regions.rects() == want.rects();
    }
    assert!(replica_exact, "replica diverged after topology changes");

    let p95_adaptive = p95_query_ms(adaptive.as_ref(), &probes, 3);
    let p95_fixed = p95_query_ms(fixed.as_ref(), &probes, 3);
    let ratio = p95_fixed / p95_adaptive;
    println!(
        "p95 query: adaptive {p95_adaptive:.3} ms, fixed {p95_fixed:.3} ms (ratio {ratio:.2}x)"
    );

    // Load balance: the hottest shard bounds per-query latency once the
    // fan-out runs in parallel, so max-owned is the portable signal the
    // p95 ratio cannot show on a single-core host.
    let max_owned = |e: &dyn DensityEngine| {
        e.as_sharded()
            .and_then(|s| s.owned_objects().iter().copied().max())
            .unwrap_or(0)
    };
    let (bal_adaptive, bal_fixed) = (max_owned(adaptive.as_ref()), max_owned(fixed.as_ref()));
    println!("hottest shard owns: adaptive {bal_adaptive}, fixed {bal_fixed}");

    let caveat = if cores == 1 {
        "single-core host: shard fan-out is serialized, so the adaptive-vs-fixed \
         ratio reflects per-shard work balance only, not parallel speedup"
    } else {
        "multi-core host: ratio includes parallel fan-out gains"
    };
    let json = format!(
        "{{\n  \"n\": {n},\n  \"ticks\": {ticks},\n  \"available_parallelism\": {cores},\n  \
         \"skew\": {{\"hotspots\": 2, \"sigma\": 4.0, \"hotspot_fraction\": 0.85, \"drift\": 0.3, \
         \"update_period\": 4, \"seed\": {seed}}},\n  \
         \"policy\": {{\"split_threshold\": {split_threshold}, \"merge_threshold\": {merge_threshold}, \
         \"max_shards\": 16}},\n  \
         \"partition\": {{\"leaves\": {leaves}, \"splits\": {splits}, \"merges\": {merges}, \
         \"part_epoch\": {part_epoch}}},\n  \
         \"fixed_grid\": \"4x4\",\n  \"answers_identical\": true,\n  \
         \"ingest_total_ms\": {{\"adaptive\": {ingest_ms_adaptive:.3}, \"fixed\": {ingest_ms_fixed:.3}}},\n  \
         \"p95_query_ms\": {{\"adaptive\": {p95_adaptive:.4}, \"fixed\": {p95_fixed:.4}}},\n  \
         \"p95_ratio_fixed_over_adaptive\": {ratio:.3},\n  \
         \"max_owned_per_shard\": {{\"adaptive\": {bal_adaptive}, \"fixed\": {bal_fixed}}},\n  \
         \"replica\": {{\"bootstraps\": {bootstraps}, \"replica_exact\": {replica_exact}}},\n  \
         \"caveat\": \"{caveat}\"\n}}\n",
        seed = skew.seed,
        merge_threshold = split_threshold / 8,
    );
    let out =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_adaptive_shard.json");
    std::fs::write(&out, &json).expect("write BENCH_adaptive_shard.json");
    println!("wrote {}:\n{json}", out.display());
}
