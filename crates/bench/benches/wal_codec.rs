//! WAL record codec bench: wire size and recovery cost, row codec
//! (`codec1`) vs columnar varint codec (`codec2`).
//!
//! Feeds the identical simulated traffic stream — one `advance` plus
//! one protocol update batch per tick, the serve loop's journal shape —
//! through both codecs and reports, per codec: total log bytes,
//! bytes/record, bytes/update, full-log replay time, and a
//! crash-recovery prefix sweep (replay at 32 evenly spaced record
//! boundaries, the `crash_recovery` test's access pattern). Results go
//! to `BENCH_wal_codec.json`.
//!
//! Usage: `cargo bench --bench wal_codec [-- <n_objects> <ticks>]`
//! (defaults: 5 000 objects, 40 ticks).

use pdr_core::{record_boundaries, replay, Wal, WalCodec};
use pdr_mobject::TimeHorizon;
use pdr_workload::{NetworkConfig, RoadNetwork, TrafficSimulator};

const EXTENT: f64 = 800.0;
const REPLAYS: usize = 5;
const SWEEP_POINTS: usize = 32;

fn main() {
    let mut args = std::env::args().skip(1).filter(|a| !a.starts_with("--"));
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(5_000);
    let ticks: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(40);
    println!("wal_codec: n = {n}, ticks = {ticks}");

    // One traffic stream, shared by both codecs bit-for-bit.
    let net = RoadNetwork::generate(&NetworkConfig::metro(EXTENT), 21);
    let horizon = TimeHorizon::new(8, 8);
    let mut sim = TrafficSimulator::new(net, n, 21 ^ 0x5eed, horizon.max_update_time(), 0);
    let mut stream = Vec::new();
    let mut updates = 0u64;
    for _ in 0..ticks {
        let batch = sim.tick();
        updates += batch.len() as u64;
        stream.push((sim.t_now(), batch));
    }

    let mut rows = Vec::new();
    let mut bytes_per_record = Vec::new();
    for codec in WalCodec::ALL {
        let mut wal = Wal::with_codec(codec);
        for (t, batch) in &stream {
            wal.append_advance(*t);
            wal.append_batch(batch);
        }
        let bytes = wal.bytes().to_vec();
        let records = wal.records();

        // Full-log replay: the dominant cost of recovery and of a
        // replica bootstrap without a checkpoint.
        let (_, replay_wall) = pdr_bench::time_it(|| {
            for _ in 0..REPLAYS {
                replay(&bytes).expect("clean log");
            }
        });
        let replay_ms = replay_wall.as_secs_f64() * 1e3 / REPLAYS as f64;

        // Crash-recovery sweep: replay evenly spaced prefixes — the
        // boundary-sweep access pattern of the recovery test.
        let boundaries = record_boundaries(&bytes);
        let step = (boundaries.len() / SWEEP_POINTS).max(1);
        let cuts: Vec<usize> = boundaries.iter().copied().step_by(step).collect();
        let (_, sweep_wall) = pdr_bench::time_it(|| {
            for &cut in &cuts {
                replay(&bytes[..cut]).expect("prefix of a clean log");
            }
        });

        let bpr = bytes.len() as f64 / records as f64;
        bytes_per_record.push(bpr);
        println!(
            "{}: {} records, {} B total, {:.1} B/record, {:.2} B/update, \
             replay {:.2} ms, sweep({}) {:.2} ms",
            codec.label(),
            records,
            bytes.len(),
            bpr,
            bytes.len() as f64 / updates as f64,
            replay_ms,
            cuts.len(),
            sweep_wall.as_secs_f64() * 1e3
        );
        rows.push(format!(
            "    {{\"codec\": \"{}\", \"records\": {records}, \"bytes\": {}, \
             \"bytes_per_record\": {bpr:.2}, \"bytes_per_update\": {:.3}, \
             \"replay_ms\": {replay_ms:.3}, \"sweep_prefixes\": {}, \"sweep_ms\": {:.3}}}",
            codec.label(),
            bytes.len(),
            bytes.len() as f64 / updates as f64,
            cuts.len(),
            sweep_wall.as_secs_f64() * 1e3
        ));
    }

    let ratio = bytes_per_record[0] / bytes_per_record[1];
    println!("codec1/codec2 bytes-per-record ratio: {ratio:.2}x");
    let json = format!(
        "{{\n  \"n\": {n},\n  \"ticks\": {ticks},\n  \"updates\": {updates},\n  \
         \"bytes_per_record_ratio\": {ratio:.3},\n  \"results\": [\n{}\n  ]\n}}\n",
        rows.join(",\n"),
    );
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_wal_codec.json");
    std::fs::write(&out, &json).expect("write BENCH_wal_codec.json");
    println!("wrote {}:\n{json}", out.display());
}
