//! Update-side micro-benchmarks backing Figure 9(b): per-location-update
//! maintenance of the density histogram, the Chebyshev coefficients and
//! the TPR-tree. Plain `harness = false` timing.

use pdr_bench::{build_histogram, build_pa, build_workload, quick_bench, Scale};
use pdr_mobject::{Update, UpdateKind};
use pdr_tprtree::{TprConfig, TprTree};
use std::hint::black_box;

fn main() {
    let mut cfg = Scale::Quick.config();
    cfg.max_update_time = 8;
    cfg.prediction_window = 8;
    let n = 10_000;
    let mut w = build_workload(&cfg, n, 3);

    // Record a steady-state update stream. Only insertions are kept:
    // an insertion and its exact inverse deletion form a perfect
    // round-trip, so benches can apply-and-undo without state drift
    // (a simulator deletion inverts to a *rebased* insertion, which
    // would leak counts across iterations).
    let mut updates: Vec<Update> = Vec::new();
    while updates.len() < 4_000 {
        updates.extend(
            w.sim
                .tick()
                .into_iter()
                .filter(|u| matches!(u.kind, UpdateKind::Insert { .. })),
        );
    }
    // Deletions can only be applied to structures holding the motion,
    // so per-iteration benches use paired batches replayed onto fresh
    // state; to keep iteration cheap we apply and then undo.
    let mut h = build_histogram(&cfg, &w, 100);
    h.advance_to(w.sim.t_now());
    let mut pa = build_pa(&cfg, &w, 30.0, 20, 5);
    pa.advance_to(w.sim.t_now());

    println!("== fig9b_per_update_cpu ==");
    quick_bench("dh_apply", 20, || {
        for u in &updates {
            h.apply(black_box(u));
        }
        // Undo to keep counters bounded across iterations.
        for u in &updates {
            h.apply(&invert(u));
        }
    });
    quick_bench("pa_apply", 20, || {
        for u in updates.iter().take(400) {
            pa.apply(black_box(u));
        }
        for u in updates.iter().take(400) {
            pa.apply(&invert(u));
        }
    });

    // TPR-tree update throughput (delete + insert), not part of the
    // paper's charged costs but a substrate sanity check.
    println!("== tpr_update ==");
    let mut tree = TprTree::new(TprConfig::default_with_horizon(cfg.horizon() as f64), 0);
    tree.bulk_load(&w.population, 0.7);
    quick_bench("update_1k", 10, || {
        for (id, m) in w.population.iter().take(1_000) {
            tree.update(*id, m, 0);
        }
        black_box(tree.len());
    });
}

/// Swaps insert/delete so a batch can be applied and rolled back.
fn invert(u: &Update) -> Update {
    match u.kind {
        UpdateKind::Insert { motion } => Update::delete(u.id, u.t_now, motion),
        UpdateKind::Delete { old_motion } => Update::insert(u.id, u.t_now, old_motion),
    }
}
