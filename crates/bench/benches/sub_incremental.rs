//! Standing-subscription maintenance bench: incremental deltas vs
//! from-scratch recomputation.
//!
//! At 1 / 10 / 100 / 1000 standing PDR queries over one FR engine, each
//! tick applies an update batch and then pays the query plane twice:
//!
//! * **incremental** — one `maintain_subscriptions` pass: standing
//!   queries grouped by `(ρ, l, resolved q_t)` and evaluated once per
//!   group, dirty cells from the histogram's epoch diffs, refinement
//!   of the affected candidate cells only, then per-subscription
//!   clipped diffs;
//! * **recompute** — the pre-subscription serving model: one
//!   from-scratch `query` per standing subscription, clipped to its
//!   region.
//!
//! Both produce bit-identical answers (asserted every tick); the point
//! is the cost ratio, written to `BENCH_sub_incremental.json`.
//!
//! The workload models a production alert service, which is where the
//! two sharing levers of the subscription plane actually engage.
//! Subscribers pick a *region of their own* but draw `ρ` and the
//! horizon offset from a small menu of alert tiers (nobody subscribes
//! to `ρ = 0.04217`): same-tier subscriptions collapse into one group
//! evaluation plus cheap per-region clips, so group cost amortizes
//! across the fleet. Half the fleet pins a fixed forecast timestamp
//! ("the 5 PM picture", re-resolved as updates stream in): those
//! groups keep a stable cache key across ticks, and each tick
//! re-refines only the cells the tick's churn dirtied. Sliding
//! (`now + k`) groups resolve to a fresh timestamp every tick —
//! objects *move*, so yesterday's refinement cannot be reused — and
//! for them the win is the grouping alone.
//!
//! Usage: `cargo bench --bench sub_incremental [-- <n_objects>
//! <ticks>]` (defaults: 1 500 objects, 3 ticks).

use pdr_core::{DensityEngine, EngineSpec, FrConfig, PdrQuery, QtPolicy, SubscriptionTable};
use pdr_geometry::{Point, Rect};
use pdr_mobject::{MotionState, ObjectId, TimeHorizon, Update};
use std::time::Instant;

const EXTENT: f64 = 200.0;
const L: f64 = 20.0;

struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    fn f64(&mut self) -> f64 {
        self.next() as f64 / (1u64 << 31) as f64
    }

    fn in_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.f64() * (hi - lo)
    }
}

fn motion(rng: &mut Lcg, t_ref: u64) -> MotionState {
    MotionState::new(
        Point::new(rng.in_range(0.0, EXTENT), rng.in_range(0.0, EXTENT)),
        Point::new(rng.in_range(-1.0, 1.0), rng.in_range(-1.0, 1.0)),
        t_ref,
    )
}

fn region(rng: &mut Lcg) -> Rect {
    if rng.next().is_multiple_of(4) {
        return Rect::new(0.0, 0.0, EXTENT, EXTENT);
    }
    let w = rng.in_range(0.3, 0.8) * EXTENT;
    let h = rng.in_range(0.3, 0.8) * EXTENT;
    let x_lo = rng.in_range(0.0, EXTENT - w);
    let y_lo = rng.in_range(0.0, EXTENT - h);
    Rect::new(x_lo, y_lo, x_lo + w, y_lo + h)
}

fn counter(e: &dyn DensityEngine, name: &str) -> u64 {
    e.obs()
        .counters
        .iter()
        .find(|(n, _)| *n == name)
        .map_or(0, |(_, v)| *v)
}

struct Row {
    subs: usize,
    incremental_us: f64,
    recompute_us: f64,
    dirty_cells: u64,
    deltas_emitted: u64,
}

fn run(subs: usize, n: usize, ticks: u64) -> Row {
    let mut rng = Lcg(0x5AB5 ^ subs as u64);
    let spec = EngineSpec::Fr(FrConfig {
        extent: EXTENT,
        m: 40,
        horizon: TimeHorizon::new(4, 4),
        buffer_pages: 1024,
        threads: 1,
    });
    let mut eng = spec.build(0);
    let mut next_oid = 0u64;
    let mut live: Vec<(ObjectId, MotionState)> = (0..n)
        .map(|_| {
            let id = ObjectId(next_oid);
            next_oid += 1;
            (id, motion(&mut rng, 0))
        })
        .collect();
    eng.bulk_load(&live, 0);

    // Alert tiers: discrete ρ menu, per-subscriber regions. Half the
    // fleet forecasts a pinned timestamp that stays inside the horizon
    // for the whole run; half slides with the clock at a small offset.
    const RHOS: [f64; 4] = [0.02, 0.04, 0.06, 0.08];
    for i in 0..subs {
        let rho = RHOS[(rng.next() as usize) % RHOS.len()];
        let r = region(&mut rng);
        let policy = if i % 2 == 0 {
            QtPolicy::Fixed(ticks + 1)
        } else {
            QtPolicy::NowPlus(rng.next() % 3)
        };
        eng.register_subscription(rho, L, r, policy)
            .expect("subscription within the filter's reach");
    }
    // Commit the initial answers outside the measured window.
    let _ = eng.maintain_subscriptions(0);

    let mut incremental_us = 0.0f64;
    let mut recompute_us = 0.0f64;
    let dirty_before = counter(eng.as_ref(), "dirty_cells");
    let deltas_before = counter(eng.as_ref(), "deltas_emitted");
    for now in 1..=ticks {
        // ~5% churn per tick: fresh inserts plus exact deletes.
        let mut batch = Vec::new();
        for _ in 0..(n / 20) {
            if !live.is_empty() && rng.next().is_multiple_of(3) {
                let k = (rng.next() as usize) % live.len();
                let (id, m) = live.swap_remove(k);
                batch.push(Update::delete(id, now, m));
            } else {
                let m = motion(&mut rng, now);
                let id = ObjectId(next_oid);
                next_oid += 1;
                batch.push(Update::insert(id, now, m));
                live.push((id, m.rebased_to(now)));
            }
        }
        eng.advance_to(now);
        eng.apply_batch(&batch);

        let start = Instant::now();
        let _ = eng.maintain_subscriptions(now);
        incremental_us += start.elapsed().as_secs_f64() * 1e6;

        let specs: Vec<_> = eng
            .subscriptions()
            .expect("FR planes carry a table")
            .subs()
            .copied()
            .collect();
        let start = Instant::now();
        let answers: Vec<_> = specs
            .iter()
            .map(|s| {
                let q = PdrQuery::new(s.rho, s.l, s.policy.resolve(now));
                SubscriptionTable::clip(&eng.query(&q).regions, s.region)
            })
            .collect();
        recompute_us += start.elapsed().as_secs_f64() * 1e6;

        // The measured paths must agree bit-for-bit, every tick.
        let table = eng.subscriptions().expect("table");
        for (s, reference) in specs.iter().zip(&answers) {
            assert_eq!(
                table.answer(s.id).expect("registered"),
                reference.rects(),
                "incremental maintenance diverged at {subs} subs, tick {now}"
            );
        }
    }
    Row {
        subs,
        incremental_us: incremental_us / ticks as f64,
        recompute_us: recompute_us / ticks as f64,
        dirty_cells: counter(eng.as_ref(), "dirty_cells") - dirty_before,
        deltas_emitted: counter(eng.as_ref(), "deltas_emitted") - deltas_before,
    }
}

fn main() {
    let mut args = std::env::args().skip(1).filter(|a| !a.starts_with("--"));
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(1_500);
    let ticks: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(3);
    println!("sub_incremental: n = {n}, ticks = {ticks}, extent = {EXTENT}, l = {L}");

    let mut rows = Vec::new();
    for subs in [1usize, 10, 100, 1000] {
        let row = run(subs, n, ticks);
        let speedup = row.recompute_us / row.incremental_us.max(1e-9);
        println!(
            "subs={subs:<5} incremental {:>10.1} us/tick  recompute {:>12.1} us/tick  \
             speedup {speedup:>7.2}x  dirty_cells {}  deltas {}",
            row.incremental_us, row.recompute_us, row.dirty_cells, row.deltas_emitted
        );
        rows.push(format!(
            "    {{\"subs\": {}, \"incremental_us_per_tick\": {:.1}, \
             \"recompute_us_per_tick\": {:.1}, \"speedup\": {:.2}, \
             \"dirty_cells\": {}, \"deltas_emitted\": {}}}",
            row.subs,
            row.incremental_us,
            row.recompute_us,
            speedup,
            row.dirty_cells,
            row.deltas_emitted
        ));
    }

    let json = format!(
        "{{\n  \"n\": {n},\n  \"ticks\": {ticks},\n  \"extent\": {EXTENT},\n  \"l\": {L},\n  \
         \"results\": [\n{}\n  ]\n}}\n",
        rows.join(",\n"),
    );
    let out =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_sub_incremental.json");
    std::fs::write(&out, &json).expect("write BENCH_sub_incremental.json");
    println!("wrote {}:\n{json}", out.display());
}
