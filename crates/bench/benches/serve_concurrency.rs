//! Concurrent-client serving bench.
//!
//! Drives identical serve runs at 1, 2, 4 and 8 concurrent clients —
//! every client issuing its own per-tick query slice against the
//! shared FR engine through the read-only query contract, so client
//! concurrency composes with the intra-query parallelism on the shared
//! persistent [`Executor`](pdr_core::Executor) — and writes per-client
//! and per-engine latency quantiles (p50/p95/p99, from the obs
//! histograms) to `BENCH_serve_concurrency.json`.
//!
//! Usage: `cargo bench --bench serve_concurrency [-- <n_objects>
//! <ticks>]` (defaults: 2 000 objects, 2 ticks — serve queries cost
//! seconds each on a single-core host and the load is multiplied by
//! the client count, so the defaults are deliberately small). Total
//! query load
//! scales with the client count (each client serves a full slice), so
//! per-request latency under contention is the number to watch, not
//! throughput. The JSON records `available_parallelism`,
//! `pool_workers`, and the spawn-vs-pool dispatch delta; on a
//! single-core host added clients only contend and the file says so.

use pdr_core::{EngineSpec, Executor, FrConfig};
use pdr_mobject::TimeHorizon;
use pdr_storage::CostModel;
use pdr_workload::{
    default_deadline, NetworkConfig, QueryMix, QuerySpec, RoadNetwork, ServeDriver,
    TrafficSimulator,
};

const EXTENT: f64 = 600.0;
const L: f64 = 30.0;

fn driver(n: usize) -> ServeDriver {
    let net = RoadNetwork::generate(&NetworkConfig::metro(EXTENT), 21);
    let horizon = TimeHorizon::new(8, 8);
    let sim = TrafficSimulator::new(net, n, 21 ^ 0x5eed, horizon.max_update_time(), 0);
    let fr = EngineSpec::Fr(FrConfig {
        extent: EXTENT,
        m: 40,
        horizon,
        buffer_pages: 1024,
        threads: 0,
    });
    let mut d = ServeDriver::new(sim, CostModel::PAPER_DEFAULT).with_engine("fr", fr.build(0));
    d.bootstrap();
    d
}

fn mix(clients: usize) -> QueryMix {
    let specs: Vec<QuerySpec> = [0u64, 4, 8]
        .into_iter()
        .map(|dt| QuerySpec {
            rho: 40.0 / (L * L),
            varrho: 0.0,
            l: L,
            q_t: dt,
        })
        .collect();
    QueryMix::new(specs, 0, 2).with_clients(clients)
}

fn main() {
    let mut args = std::env::args().skip(1).filter(|a| !a.starts_with("--"));
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(2_000);
    let ticks: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(2);
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    let pool_workers = Executor::global().workers();
    let deadline_ms = default_deadline().as_millis();
    println!(
        "serve_concurrency: n = {n}, ticks = {ticks}, cores = {cores}, \
         pool_workers = {pool_workers}, default_deadline_ms = {deadline_ms}"
    );

    let mut rows = Vec::new();
    for clients in [1usize, 2, 4, 8] {
        let mut d = driver(n);
        let (report, wall) = pdr_bench::time_it(|| d.run(ticks, &mix(clients)));
        let engine = &report.engines[0];
        // Engine-side CPU latency is recorded identically at every
        // client count; the per-client histograms add the wall-clock
        // view (queueing included) for the concurrent runs.
        let per_client = if report.clients.is_empty() {
            String::from("[]")
        } else {
            let items: Vec<String> = report
                .clients
                .iter()
                .map(|c| {
                    format!(
                        "{{\"client\": {}, \"queries\": {}, \"deadline_misses\": {}, \
                         \"latency_us\": {}}}",
                        c.client,
                        c.queries,
                        c.deadline_misses,
                        c.latency.to_json()
                    )
                })
                .collect();
            format!("[{}]", items.join(", "))
        };
        println!(
            "clients={clients:<2} wall {:>8.1} ms  engine p50/p95/p99 us: {:.0}/{:.0}/{:.0}",
            wall.as_secs_f64() * 1e3,
            engine.latency.p50_us,
            engine.latency.p95_us,
            engine.latency.p99_us
        );
        rows.push(format!(
            "    {{\"clients\": {clients}, \"queries\": {}, \"wall_ms\": {:.1}, \
             \"engine_latency_us\": {}, \"per_client\": {per_client}}}",
            engine.score.queries,
            wall.as_secs_f64() * 1e3,
            engine.latency.to_json()
        ));
    }

    let dispatch = pdr_bench::dispatch_json(16, 3);
    let json = format!(
        "{{\n  \"n\": {n},\n  \"ticks\": {ticks},\n  \"available_parallelism\": {cores},\n  \
         \"pool_workers\": {pool_workers},\n  \"default_deadline_ms\": {deadline_ms},\n  \
         \"dispatch\": {dispatch},\n  \
         \"results\": [\n{}\n  ]\n}}\n",
        rows.join(",\n"),
    );
    // Cargo runs benches with the package directory as cwd; anchor the
    // artifact at the workspace root so it lands in a stable place.
    let out =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_serve_concurrency.json");
    std::fs::write(&out, &json).expect("write BENCH_serve_concurrency.json");
    println!("wrote {}:\n{json}", out.display());
}
