//! Concurrent-client serving bench.
//!
//! Drives identical serve runs at 1, 2, 4 and 8 concurrent clients —
//! every client issuing its own per-tick query slice against the
//! shared FR engine through the read-only query contract, so client
//! concurrency composes with the intra-query parallelism on the shared
//! persistent [`Executor`](pdr_core::Executor) — and writes per-client
//! and per-engine latency quantiles (p50/p95/p99, from the obs
//! histograms) to `BENCH_serve_concurrency.json`. A replica axis then
//! runs a 2×2 sharded primary shipping per-tick WAL deltas to a read
//! replica and records shipping/ingest cost plus primary-vs-replica
//! query latency on bit-identical probes (see `replica_axis`).
//!
//! Usage: `cargo bench --bench serve_concurrency [-- <n_objects>
//! <ticks>]` (defaults: 2 000 objects, 2 ticks — serve queries cost
//! seconds each on a single-core host and the load is multiplied by
//! the client count, so the defaults are deliberately small). Total
//! query load
//! scales with the client count (each client serves a full slice), so
//! per-request latency under contention is the number to watch, not
//! throughput. The JSON records `available_parallelism`,
//! `pool_workers`, and the spawn-vs-pool dispatch delta; on a
//! single-core host added clients only contend and the file says so.

use pdr_core::{EngineSpec, Executor, FrConfig, PdrQuery};
use pdr_mobject::TimeHorizon;
use pdr_storage::CostModel;
use pdr_workload::{
    default_deadline, FaultPolicy, NetClient, NetFaultInjector, NetFaultPlan, NetServer,
    NetServerConfig, NetworkConfig, QueryMix, QuerySpec, RoadNetwork, ServeDriver,
    TrafficSimulator,
};
use std::sync::Arc;
use std::time::Duration;

const QUERY_ROUNDS: usize = 3;

const EXTENT: f64 = 600.0;
const L: f64 = 30.0;

fn driver(n: usize) -> ServeDriver {
    let net = RoadNetwork::generate(&NetworkConfig::metro(EXTENT), 21);
    let horizon = TimeHorizon::new(8, 8);
    let sim = TrafficSimulator::new(net, n, 21 ^ 0x5eed, horizon.max_update_time(), 0);
    let fr = EngineSpec::Fr(FrConfig {
        extent: EXTENT,
        m: 40,
        horizon,
        buffer_pages: 1024,
        threads: 0,
    });
    let mut d = ServeDriver::new(sim, CostModel::PAPER_DEFAULT).with_engine("fr", fr.build(0));
    d.bootstrap();
    d
}

fn mix(clients: usize) -> QueryMix {
    let specs: Vec<QuerySpec> = [0u64, 4, 8]
        .into_iter()
        .map(|dt| QuerySpec {
            rho: 40.0 / (L * L),
            varrho: 0.0,
            l: L,
            q_t: dt,
        })
        .collect();
    QueryMix::new(specs, 0, 2).with_clients(clients)
}

/// Log-shipping replica axis: a 2×2 sharded primary drives the same
/// simulated load while a read replica ingests one WAL shipment per
/// tick (`wal_since` → `ingest`, the `ship_log`/`sync` path without
/// the socket). Reports per-tick shipping and ingest cost, shipment
/// volume, and identical-probe query latency on both planes — the
/// probes must answer bit-for-bit the same once the replica is caught
/// up, mirroring the replica differential test's invariant.
fn replica_axis(n: usize, ticks: u64) -> String {
    let horizon = TimeHorizon::new(8, 8);
    let spec = EngineSpec::Sharded {
        adaptive: None,
        inner: Box::new(EngineSpec::Fr(FrConfig {
            extent: EXTENT,
            m: 40,
            horizon,
            buffer_pages: 1024,
            threads: 0,
        })),
        sx: 2,
        sy: 2,
        l_max: L,
    };
    let mut primary = spec.try_build(0).expect("sharded primary builds");
    let mut replica = spec.try_build_replica(0).expect("replica builds");
    let net = RoadNetwork::generate(&NetworkConfig::metro(EXTENT), 21);
    let mut sim = TrafficSimulator::new(net, n, 21 ^ 0x5eed, horizon.max_update_time(), 0);
    primary.bulk_load(&sim.population(), sim.t_now());
    // The bulk load is not WAL-recorded; sealing a checkpoint makes it
    // shippable, exactly as the serve loop does after bootstrap.
    primary.checkpoint().expect("sharded plane checkpoints");

    let mut ship_cut_ms = 0.0;
    let mut ingest_ms = 0.0;
    let mut shipped_bytes = 0usize;
    let mut bootstrap_bytes = 0usize;
    let mut shipments = 0usize;
    let mut updates = 0usize;
    let mut ship_once = |primary: &dyn pdr_core::DensityEngine,
                         replica: &mut Box<dyn pdr_core::DensityEngine>| {
        let rep = replica.as_replica_mut().expect("replica surface");
        let sharded = primary.as_sharded().expect("sharded surface");
        let (ship, cut) =
            pdr_bench::time_it(|| sharded.wal_since(rep.applied_epoch(), rep.applied_offsets()));
        ship_cut_ms += cut.as_secs_f64() * 1e3;
        let bytes = ship.checkpoint.as_ref().map_or(0, |c| c.len())
            + ship.segments.iter().map(|s| s.bytes.len()).sum::<usize>();
        shipped_bytes += bytes;
        if ship.checkpoint.is_some() {
            bootstrap_bytes += bytes;
        }
        let (res, ing) = pdr_bench::time_it(|| rep.ingest(&ship));
        res.expect("in-order shipment ingests");
        ingest_ms += ing.as_secs_f64() * 1e3;
        shipments += 1;
        assert_eq!(rep.lag(), 0, "replica caught up after sync");
    };
    ship_once(primary.as_ref(), &mut replica);
    for _ in 0..ticks {
        let t_next = sim.t_now() + 1;
        let batch = sim.tick();
        updates += batch.len();
        primary.advance_to(t_next);
        primary.apply_batch(&batch);
        ship_once(primary.as_ref(), &mut replica);
    }

    // Identical probes against both planes: correctness (bit-identical
    // answers) plus the read-path latency comparison.
    let t = sim.t_now();
    let probes: Vec<PdrQuery> = [0u64, 4, 8]
        .into_iter()
        .map(|dt| PdrQuery::new(40.0 / (L * L), L, t + dt))
        .collect();
    let mut answers_match = true;
    let mut primary_us = 0.0;
    let mut replica_us = 0.0;
    for _ in 0..QUERY_ROUNDS {
        let (a, p_wall) =
            pdr_bench::time_it(|| probes.iter().map(|q| primary.query(q)).collect::<Vec<_>>());
        let (b, r_wall) =
            pdr_bench::time_it(|| probes.iter().map(|q| replica.query(q)).collect::<Vec<_>>());
        primary_us += p_wall.as_secs_f64() * 1e6;
        replica_us += r_wall.as_secs_f64() * 1e6;
        for (x, y) in a.iter().zip(&b) {
            if x.regions.rects() != y.regions.rects() {
                answers_match = false;
            }
        }
    }
    assert!(
        answers_match,
        "caught-up replica must answer bit-identically"
    );
    let per_query = (QUERY_ROUNDS * probes.len()) as f64;
    let lag = replica.as_replica().expect("replica surface").lag();
    println!(
        "replica 2x2: {shipments} shipments, {shipped_bytes} B shipped \
         ({bootstrap_bytes} B bootstrap), cut {ship_cut_ms:.2} ms, ingest {ingest_ms:.2} ms, \
         query us primary/replica: {:.0}/{:.0}, lag {lag}",
        primary_us / per_query,
        replica_us / per_query
    );
    format!(
        "{{\"shards\": \"2x2\", \"ticks\": {ticks}, \"updates\": {updates}, \
         \"shipments\": {shipments}, \"shipped_bytes\": {shipped_bytes}, \
         \"bootstrap_bytes\": {bootstrap_bytes}, \"ship_cut_ms\": {ship_cut_ms:.3}, \
         \"ingest_ms\": {ingest_ms:.3}, \"replica_lag\": {lag}, \
         \"answers_match\": {answers_match}, \"primary_query_us\": {:.1}, \
         \"replica_query_us\": {:.1}}}",
        primary_us / per_query,
        replica_us / per_query
    )
}

/// Faulty-network axis: the same query stream over the real TCP
/// front-end, once on a clean transport and once under a seeded 1%
/// response-frame drop. Each request is timed end to end *including*
/// the client's timeout-and-reconnect recovery, so the faulty p99
/// prices what a lossy network does to the tail while p50 shows the
/// common case is untouched. Reports per-request wall quantiles,
/// client reconnects, and the server-side injection counters.
fn netfault_axis(n: usize, requests: usize) -> String {
    // The axis prices transport faults, not engine load: cap the
    // population so a single query stays well under the drop-recovery
    // timeout even on a single-core host.
    let n = n.min(800);
    let quantile = |sorted: &[f64], q: f64| -> f64 {
        if sorted.is_empty() {
            return 0.0;
        }
        let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
        sorted[idx]
    };
    // One run: returns sorted per-request micros, reconnects, drops.
    let run = |plan: Option<&str>| -> (Vec<f64>, u64, u64) {
        let faults = plan.map(|p| {
            Arc::new(NetFaultInjector::new(
                NetFaultPlan::parse(p).expect("valid netfault plan"),
            ))
        });
        let cfg = NetServerConfig {
            faults: faults.clone(),
            ..NetServerConfig::default()
        };
        let server = NetServer::bind("127.0.0.1:0", driver(n), FaultPolicy::default(), cfg)
            .expect("bind ephemeral port");
        let addr = server.local_addr().expect("bound addr").to_string();
        let handle = std::thread::spawn(move || server.serve());

        let connect = |addr: &str| -> NetClient {
            let mut c = NetClient::connect(addr).expect("connect");
            // A dropped response costs this timeout before the client
            // reconnects; it must sit above the slowest clean query
            // (seconds on a single-core host) so only real drops pay.
            c.set_io_timeouts(Some(Duration::from_secs(8)), Some(Duration::from_secs(5)))
                .expect("timeouts");
            c
        };
        let mut c = connect(&addr);
        let mut reconnects = 0u64;

        // Queries are idempotent: on a lost response, reconnect and
        // re-issue — exactly the ResilientClient recovery shape.
        let request = |c: &mut NetClient, body: &str, reconnects: &mut u64| {
            for _ in 0..20 {
                if c.send(body).is_ok() {
                    if let Ok(v) = c.recv() {
                        return v;
                    }
                }
                *c = connect(&addr);
                *reconnects += 1;
            }
            panic!("request failed 20 times under a 1% drop plan");
        };
        // A couple of ticks so queries hit a moving population.
        for _ in 0..2 {
            request(&mut c, "{\"op\":\"tick\"}", &mut reconnects);
        }
        let mut lat = Vec::with_capacity(requests);
        for k in 0..requests {
            let body = format!(
                "{{\"op\":\"query\",\"rho\":{},\"l\":{L},\"q_t\":{}}}",
                40.0 / (L * L),
                [0u64, 4, 8][k % 3]
            );
            let (_, wall) = pdr_bench::time_it(|| request(&mut c, &body, &mut reconnects));
            lat.push(wall.as_secs_f64() * 1e6);
        }
        request(&mut c, "{\"op\":\"shutdown\"}", &mut reconnects);
        drop(c);
        let summary = handle.join().expect("server thread");
        let drops = summary
            .split("\"drops\":")
            .nth(1)
            .and_then(|s| s.split(&[',', '}'][..]).next())
            .and_then(|s| s.parse::<u64>().ok())
            .unwrap_or(0);
        lat.sort_by(|a, b| a.partial_cmp(b).expect("finite latency"));
        (lat, reconnects, drops)
    };

    let (clean, clean_rc, _) = run(None);
    let plan = "seed 4242\ndrop frame prob=0.01";
    let (faulty, faulty_rc, drops) = run(Some(plan));
    assert_eq!(clean_rc, 0, "clean transport must not reconnect");
    println!(
        "netfault 1% drop: clean p50/p99 us {:.0}/{:.0}, faulty p50/p99 us {:.0}/{:.0}, \
         {drops} frames dropped, {faulty_rc} reconnects",
        quantile(&clean, 0.50),
        quantile(&clean, 0.99),
        quantile(&faulty, 0.50),
        quantile(&faulty, 0.99),
    );
    format!(
        "{{\"plan\": \"drop frame prob=0.01\", \"requests\": {requests}, \
         \"clean\": {{\"p50_us\": {:.1}, \"p95_us\": {:.1}, \"p99_us\": {:.1}}}, \
         \"faulty\": {{\"p50_us\": {:.1}, \"p95_us\": {:.1}, \"p99_us\": {:.1}, \
         \"frames_dropped\": {drops}, \"reconnects\": {faulty_rc}}}}}",
        quantile(&clean, 0.50),
        quantile(&clean, 0.95),
        quantile(&clean, 0.99),
        quantile(&faulty, 0.50),
        quantile(&faulty, 0.95),
        quantile(&faulty, 0.99),
    )
}

fn main() {
    let mut args = std::env::args().skip(1).filter(|a| !a.starts_with("--"));
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(2_000);
    let ticks: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(2);
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    let pool_workers = Executor::global().workers();
    let deadline_ms = default_deadline().as_millis();
    println!(
        "serve_concurrency: n = {n}, ticks = {ticks}, cores = {cores}, \
         pool_workers = {pool_workers}, default_deadline_ms = {deadline_ms}"
    );

    let mut rows = Vec::new();
    for clients in [1usize, 2, 4, 8] {
        let mut d = driver(n);
        let (report, wall) = pdr_bench::time_it(|| d.run(ticks, &mix(clients)));
        let engine = &report.engines[0];
        // Engine-side CPU latency is recorded identically at every
        // client count; the per-client histograms add the wall-clock
        // view (queueing included) for the concurrent runs.
        let per_client = if report.clients.is_empty() {
            String::from("[]")
        } else {
            let items: Vec<String> = report
                .clients
                .iter()
                .map(|c| {
                    format!(
                        "{{\"client\": {}, \"queries\": {}, \"deadline_misses\": {}, \
                         \"latency_us\": {}}}",
                        c.client,
                        c.queries,
                        c.deadline_misses,
                        c.latency.to_json()
                    )
                })
                .collect();
            format!("[{}]", items.join(", "))
        };
        println!(
            "clients={clients:<2} wall {:>8.1} ms  engine p50/p95/p99 us: {:.0}/{:.0}/{:.0}",
            wall.as_secs_f64() * 1e3,
            engine.latency.p50_us,
            engine.latency.p95_us,
            engine.latency.p99_us
        );
        rows.push(format!(
            "    {{\"clients\": {clients}, \"queries\": {}, \"wall_ms\": {:.1}, \
             \"engine_latency_us\": {}, \"per_client\": {per_client}}}",
            engine.score.queries,
            wall.as_secs_f64() * 1e3,
            engine.latency.to_json()
        ));
    }

    let replica = replica_axis(n, ticks);
    let netfault = netfault_axis(n, 60);
    let dispatch = pdr_bench::dispatch_json(16, 3);
    let json = format!(
        "{{\n  \"n\": {n},\n  \"ticks\": {ticks},\n  \"available_parallelism\": {cores},\n  \
         \"pool_workers\": {pool_workers},\n  \"default_deadline_ms\": {deadline_ms},\n  \
         \"dispatch\": {dispatch},\n  \
         \"replica\": {replica},\n  \
         \"netfault\": {netfault},\n  \
         \"results\": [\n{}\n  ]\n}}\n",
        rows.join(",\n"),
    );
    // Cargo runs benches with the package directory as cwd; anchor the
    // artifact at the workspace root so it lands in a stable place.
    let out =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_serve_concurrency.json");
    std::fs::write(&out, &json).expect("write BENCH_serve_concurrency.json");
    println!("wrote {}:\n{json}", out.display());
}
