//! Concurrent-client serving bench.
//!
//! Drives identical serve runs at 1, 2, 4 and 8 concurrent clients —
//! every client issuing its own per-tick query slice against the
//! shared FR engine through the read-only query contract, so client
//! concurrency composes with the intra-query parallelism on the shared
//! persistent [`Executor`](pdr_core::Executor) — and writes per-client
//! and per-engine latency quantiles (p50/p95/p99, from the obs
//! histograms) to `BENCH_serve_concurrency.json`. A replica axis then
//! runs a 2×2 sharded primary shipping per-tick WAL deltas to a read
//! replica and records shipping/ingest cost plus primary-vs-replica
//! query latency on bit-identical probes (see `replica_axis`).
//!
//! Usage: `cargo bench --bench serve_concurrency [-- <n_objects>
//! <ticks>]` (defaults: 2 000 objects, 2 ticks — serve queries cost
//! seconds each on a single-core host and the load is multiplied by
//! the client count, so the defaults are deliberately small). Total
//! query load
//! scales with the client count (each client serves a full slice), so
//! per-request latency under contention is the number to watch, not
//! throughput. The JSON records `available_parallelism`,
//! `pool_workers`, and the spawn-vs-pool dispatch delta; on a
//! single-core host added clients only contend and the file says so.

use pdr_core::{EngineSpec, Executor, FrConfig, PdrQuery};
use pdr_mobject::TimeHorizon;
use pdr_storage::CostModel;
use pdr_workload::{
    default_deadline, NetworkConfig, QueryMix, QuerySpec, RoadNetwork, ServeDriver,
    TrafficSimulator,
};

const QUERY_ROUNDS: usize = 3;

const EXTENT: f64 = 600.0;
const L: f64 = 30.0;

fn driver(n: usize) -> ServeDriver {
    let net = RoadNetwork::generate(&NetworkConfig::metro(EXTENT), 21);
    let horizon = TimeHorizon::new(8, 8);
    let sim = TrafficSimulator::new(net, n, 21 ^ 0x5eed, horizon.max_update_time(), 0);
    let fr = EngineSpec::Fr(FrConfig {
        extent: EXTENT,
        m: 40,
        horizon,
        buffer_pages: 1024,
        threads: 0,
    });
    let mut d = ServeDriver::new(sim, CostModel::PAPER_DEFAULT).with_engine("fr", fr.build(0));
    d.bootstrap();
    d
}

fn mix(clients: usize) -> QueryMix {
    let specs: Vec<QuerySpec> = [0u64, 4, 8]
        .into_iter()
        .map(|dt| QuerySpec {
            rho: 40.0 / (L * L),
            varrho: 0.0,
            l: L,
            q_t: dt,
        })
        .collect();
    QueryMix::new(specs, 0, 2).with_clients(clients)
}

/// Log-shipping replica axis: a 2×2 sharded primary drives the same
/// simulated load while a read replica ingests one WAL shipment per
/// tick (`wal_since` → `ingest`, the `ship_log`/`sync` path without
/// the socket). Reports per-tick shipping and ingest cost, shipment
/// volume, and identical-probe query latency on both planes — the
/// probes must answer bit-for-bit the same once the replica is caught
/// up, mirroring the replica differential test's invariant.
fn replica_axis(n: usize, ticks: u64) -> String {
    let horizon = TimeHorizon::new(8, 8);
    let spec = EngineSpec::Sharded {
        inner: Box::new(EngineSpec::Fr(FrConfig {
            extent: EXTENT,
            m: 40,
            horizon,
            buffer_pages: 1024,
            threads: 0,
        })),
        sx: 2,
        sy: 2,
        l_max: L,
    };
    let mut primary = spec.try_build(0).expect("sharded primary builds");
    let mut replica = spec.try_build_replica(0).expect("replica builds");
    let net = RoadNetwork::generate(&NetworkConfig::metro(EXTENT), 21);
    let mut sim = TrafficSimulator::new(net, n, 21 ^ 0x5eed, horizon.max_update_time(), 0);
    primary.bulk_load(&sim.population(), sim.t_now());
    // The bulk load is not WAL-recorded; sealing a checkpoint makes it
    // shippable, exactly as the serve loop does after bootstrap.
    primary.checkpoint().expect("sharded plane checkpoints");

    let mut ship_cut_ms = 0.0;
    let mut ingest_ms = 0.0;
    let mut shipped_bytes = 0usize;
    let mut bootstrap_bytes = 0usize;
    let mut shipments = 0usize;
    let mut updates = 0usize;
    let mut ship_once = |primary: &dyn pdr_core::DensityEngine,
                         replica: &mut Box<dyn pdr_core::DensityEngine>| {
        let rep = replica.as_replica_mut().expect("replica surface");
        let sharded = primary.as_sharded().expect("sharded surface");
        let (ship, cut) =
            pdr_bench::time_it(|| sharded.wal_since(rep.applied_epoch(), rep.applied_offsets()));
        ship_cut_ms += cut.as_secs_f64() * 1e3;
        let bytes = ship.checkpoint.as_ref().map_or(0, |c| c.len())
            + ship.segments.iter().map(|s| s.bytes.len()).sum::<usize>();
        shipped_bytes += bytes;
        if ship.checkpoint.is_some() {
            bootstrap_bytes += bytes;
        }
        let (res, ing) = pdr_bench::time_it(|| rep.ingest(&ship));
        res.expect("in-order shipment ingests");
        ingest_ms += ing.as_secs_f64() * 1e3;
        shipments += 1;
        assert_eq!(rep.lag(), 0, "replica caught up after sync");
    };
    ship_once(primary.as_ref(), &mut replica);
    for _ in 0..ticks {
        let t_next = sim.t_now() + 1;
        let batch = sim.tick();
        updates += batch.len();
        primary.advance_to(t_next);
        primary.apply_batch(&batch);
        ship_once(primary.as_ref(), &mut replica);
    }

    // Identical probes against both planes: correctness (bit-identical
    // answers) plus the read-path latency comparison.
    let t = sim.t_now();
    let probes: Vec<PdrQuery> = [0u64, 4, 8]
        .into_iter()
        .map(|dt| PdrQuery::new(40.0 / (L * L), L, t + dt))
        .collect();
    let mut answers_match = true;
    let mut primary_us = 0.0;
    let mut replica_us = 0.0;
    for _ in 0..QUERY_ROUNDS {
        let (a, p_wall) =
            pdr_bench::time_it(|| probes.iter().map(|q| primary.query(q)).collect::<Vec<_>>());
        let (b, r_wall) =
            pdr_bench::time_it(|| probes.iter().map(|q| replica.query(q)).collect::<Vec<_>>());
        primary_us += p_wall.as_secs_f64() * 1e6;
        replica_us += r_wall.as_secs_f64() * 1e6;
        for (x, y) in a.iter().zip(&b) {
            if x.regions.rects() != y.regions.rects() {
                answers_match = false;
            }
        }
    }
    assert!(
        answers_match,
        "caught-up replica must answer bit-identically"
    );
    let per_query = (QUERY_ROUNDS * probes.len()) as f64;
    let lag = replica.as_replica().expect("replica surface").lag();
    println!(
        "replica 2x2: {shipments} shipments, {shipped_bytes} B shipped \
         ({bootstrap_bytes} B bootstrap), cut {ship_cut_ms:.2} ms, ingest {ingest_ms:.2} ms, \
         query us primary/replica: {:.0}/{:.0}, lag {lag}",
        primary_us / per_query,
        replica_us / per_query
    );
    format!(
        "{{\"shards\": \"2x2\", \"ticks\": {ticks}, \"updates\": {updates}, \
         \"shipments\": {shipments}, \"shipped_bytes\": {shipped_bytes}, \
         \"bootstrap_bytes\": {bootstrap_bytes}, \"ship_cut_ms\": {ship_cut_ms:.3}, \
         \"ingest_ms\": {ingest_ms:.3}, \"replica_lag\": {lag}, \
         \"answers_match\": {answers_match}, \"primary_query_us\": {:.1}, \
         \"replica_query_us\": {:.1}}}",
        primary_us / per_query,
        replica_us / per_query
    )
}

fn main() {
    let mut args = std::env::args().skip(1).filter(|a| !a.starts_with("--"));
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(2_000);
    let ticks: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(2);
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    let pool_workers = Executor::global().workers();
    let deadline_ms = default_deadline().as_millis();
    println!(
        "serve_concurrency: n = {n}, ticks = {ticks}, cores = {cores}, \
         pool_workers = {pool_workers}, default_deadline_ms = {deadline_ms}"
    );

    let mut rows = Vec::new();
    for clients in [1usize, 2, 4, 8] {
        let mut d = driver(n);
        let (report, wall) = pdr_bench::time_it(|| d.run(ticks, &mix(clients)));
        let engine = &report.engines[0];
        // Engine-side CPU latency is recorded identically at every
        // client count; the per-client histograms add the wall-clock
        // view (queueing included) for the concurrent runs.
        let per_client = if report.clients.is_empty() {
            String::from("[]")
        } else {
            let items: Vec<String> = report
                .clients
                .iter()
                .map(|c| {
                    format!(
                        "{{\"client\": {}, \"queries\": {}, \"deadline_misses\": {}, \
                         \"latency_us\": {}}}",
                        c.client,
                        c.queries,
                        c.deadline_misses,
                        c.latency.to_json()
                    )
                })
                .collect();
            format!("[{}]", items.join(", "))
        };
        println!(
            "clients={clients:<2} wall {:>8.1} ms  engine p50/p95/p99 us: {:.0}/{:.0}/{:.0}",
            wall.as_secs_f64() * 1e3,
            engine.latency.p50_us,
            engine.latency.p95_us,
            engine.latency.p99_us
        );
        rows.push(format!(
            "    {{\"clients\": {clients}, \"queries\": {}, \"wall_ms\": {:.1}, \
             \"engine_latency_us\": {}, \"per_client\": {per_client}}}",
            engine.score.queries,
            wall.as_secs_f64() * 1e3,
            engine.latency.to_json()
        ));
    }

    let replica = replica_axis(n, ticks);
    let dispatch = pdr_bench::dispatch_json(16, 3);
    let json = format!(
        "{{\n  \"n\": {n},\n  \"ticks\": {ticks},\n  \"available_parallelism\": {cores},\n  \
         \"pool_workers\": {pool_workers},\n  \"default_deadline_ms\": {deadline_ms},\n  \
         \"dispatch\": {dispatch},\n  \
         \"replica\": {replica},\n  \
         \"results\": [\n{}\n  ]\n}}\n",
        rows.join(",\n"),
    );
    // Cargo runs benches with the package directory as cwd; anchor the
    // artifact at the workspace root so it lands in a stable place.
    let out =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_serve_concurrency.json");
    std::fs::write(&out, &json).expect("write BENCH_serve_concurrency.json");
    println!("wrote {}:\n{json}", out.display());
}
