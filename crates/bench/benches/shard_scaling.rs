//! Shard-count scaling bench for the shared-nothing engine plane.
//!
//! Builds a clustered population (the same borderline-dense pockets the
//! `fr_parallel` bench uses), drives an unsharded FR engine and sharded
//! planes at 1, 2, 4 and 8 shards through identical ingest and query
//! traffic, checks every sharded answer is rectangle-for-rectangle
//! identical to the unsharded one, and writes the medians to
//! `BENCH_shard_scaling.json`.
//!
//! Both the query fan-out and the per-shard ingest apply run on the
//! shared persistent work-stealing [`Executor`](pdr_core::Executor);
//! the JSON records the pool size, the spawn-vs-pool dispatch delta,
//! and separate query/ingest speedups at ≥ 4 shards.
//!
//! Usage: `cargo bench --bench shard_scaling [-- <n_objects> <samples>]`
//! (defaults: 60 000 objects, 3 samples per shard count). Ingest medians
//! include engine construction — a fresh plane is built per sample, so
//! the number reflects the full route-and-apply path, not a warm cache.
//! On a single-core host the fan-out cannot beat one shard and the JSON
//! records `available_parallelism` so the reader can tell.

use pdr_core::{EngineSpec, FrConfig, PdrQuery};
use pdr_geometry::Point;
use pdr_mobject::{MotionState, ObjectId, TimeHorizon, Update};

const EXTENT: f64 = 1000.0;
const L: f64 = 30.0;

struct Lcg(u64);
impl Lcg {
    fn next(&mut self) -> f64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (self.0 >> 33) as f64 / (1u64 << 31) as f64
    }
}

/// `n` objects: 75 % in 250 compact 20×20 clusters (borderline-dense
/// pockets whose rims become candidate cells), 25 % uniform background.
fn clustered_population(n: usize, seed: u64) -> Vec<(ObjectId, MotionState)> {
    let mut rng = Lcg(seed);
    let clusters: Vec<(f64, f64)> = (0..250)
        .map(|_| (20.0 + rng.next() * 960.0, 20.0 + rng.next() * 960.0))
        .collect();
    (0..n)
        .map(|i| {
            let p = if i % 4 != 3 {
                let (cx, cy) = clusters[i % clusters.len()];
                Point::new(cx + rng.next() * 20.0 - 10.0, cy + rng.next() * 20.0 - 10.0)
            } else {
                Point::new(rng.next() * EXTENT, rng.next() * EXTENT)
            };
            let v = Point::new(rng.next() * 2.0 - 1.0, rng.next() * 2.0 - 1.0);
            (ObjectId(i as u64), MotionState::new(p, v, 0))
        })
        .collect()
}

/// The inner engine every shard runs. `threads: 0` lets the sharded
/// plane's fan-out use every core (each shard still refines serially —
/// parallelism comes from the shard fan-out, see `per_shard_spec`).
fn fr_spec() -> EngineSpec {
    EngineSpec::Fr(FrConfig {
        extent: EXTENT,
        m: 100, // l_c = 10
        horizon: TimeHorizon::new(8, 8),
        buffer_pages: 2048,
        threads: 0,
    })
}

fn sharded_spec(sx: u32, sy: u32) -> EngineSpec {
    EngineSpec::Sharded {
        adaptive: None,
        inner: Box::new(fr_spec()),
        sx,
        sy,
        l_max: L,
    }
}

fn main() {
    let mut args = std::env::args().skip(1).filter(|a| !a.starts_with("--"));
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(60_000);
    let samples: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(3);
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    println!("shard_scaling: n = {n}, samples = {samples}, cores = {cores}");

    let pop = clustered_population(n, 0xBEEF);
    let inserts: Vec<Update> = pop
        .iter()
        .map(|(id, m)| Update::insert(*id, 0, *m))
        .collect();
    // Threshold 60 objects per 30x30 neighborhood: cluster cores are
    // accepted outright, their rims are left for refinement.
    let q = PdrQuery::new(60.0 / 900.0, L, 2);

    let mut reference = fr_spec().build(0);
    reference.apply_batch(&inserts);
    let base = reference.query(&q);
    println!("reference answer: {} rects", base.regions.len());
    assert!(
        base.regions.len() >= 50,
        "workload too easy: only {} answer rects",
        base.regions.len()
    );

    // (label, sx, sy); 1 shard included so the router overhead itself
    // is visible against the unsharded reference.
    let grids: [(u32, u32); 4] = [(1, 1), (2, 1), (2, 2), (4, 2)];
    let mut results = Vec::new();
    for (sx, sy) in grids {
        let shards = sx * sy;
        let ingest =
            pdr_bench::quick_bench(&format!("build+ingest shards={shards}"), samples, || {
                let mut e = sharded_spec(sx, sy).build(0);
                e.apply_batch(&inserts);
                std::hint::black_box(e.stats().updates_applied);
            });

        let mut eng = sharded_spec(sx, sy).build(0);
        eng.apply_batch(&inserts);
        let ans = eng.query(&q);
        assert_eq!(
            ans.regions.rects(),
            base.regions.rects(),
            "sharded answer diverged at {sx}x{sy}"
        );
        let query = pdr_bench::quick_bench(&format!("query shards={shards}"), samples, || {
            std::hint::black_box(eng.query(&q).regions.len());
        });
        results.push((
            shards,
            sx,
            sy,
            ingest.as_secs_f64() * 1e3,
            query.as_secs_f64() * 1e3,
        ));
    }

    let one_shard_query = results[0].4;
    let best_multi_query = results
        .iter()
        .filter(|(s, ..)| *s >= 4)
        .map(|&(.., q_ms)| q_ms)
        .fold(f64::INFINITY, f64::min);
    let one_shard_ingest = results[0].3;
    let best_multi_ingest = results
        .iter()
        .filter(|(s, ..)| *s >= 4)
        .map(|&(_, _, _, i_ms, _)| i_ms)
        .fold(f64::INFINITY, f64::min);
    let pool_workers = pdr_core::Executor::global().workers();
    let dispatch = pdr_bench::dispatch_json(16, samples);
    let json = format!(
        "{{\n  \"n\": {n},\n  \"samples\": {samples},\n  \"available_parallelism\": {cores},\n  \
         \"pool_workers\": {pool_workers},\n  \"dispatch\": {dispatch},\n  \
         \"answer_rects\": {rects},\n  \"answers_identical\": true,\n  \"results\": [\n{rows}\n  ],\n  \
         \"query_speedup_shards_ge_4_vs_1\": {speedup:.3},\n  \
         \"ingest_speedup_shards_ge_4_vs_1\": {ingest_speedup:.3}\n}}\n",
        rects = base.regions.len(),
        ingest_speedup = one_shard_ingest / best_multi_ingest,
        rows = results
            .iter()
            .map(|(s, sx, sy, i_ms, q_ms)| format!(
                "    {{\"shards\": {s}, \"grid\": \"{sx}x{sy}\", \
                 \"build_ingest_median_ms\": {i_ms:.3}, \"query_median_ms\": {q_ms:.3}}}"
            ))
            .collect::<Vec<_>>()
            .join(",\n"),
        speedup = one_shard_query / best_multi_query,
    );
    // Cargo runs benches with the package directory as cwd; anchor the
    // artifact at the workspace root so it lands in a stable place.
    let out =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_shard_scaling.json");
    std::fs::write(&out, &json).expect("write BENCH_shard_scaling.json");
    println!("wrote {}:\n{json}", out.display());
}
