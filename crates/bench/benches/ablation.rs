//! Ablation benchmarks for the design choices called out in DESIGN.md:
//!
//! * `filter_prefix_vs_naive` — O(1) prefix-sum neighborhood counts vs
//!   naive per-cell summation in the filter step;
//! * `refine_sweep_vs_grid` — the plane-sweep refinement vs counting
//!   the neighborhood of every point of a fine grid;
//! * `pa_bnb_vs_grid` — branch-and-bound super-level sets vs the
//!   trivial m_d × m_d center-point scan (Section 6.3's strawman);
//! * `tpr_insert_metric` — predictive-query I/O of a tree built with
//!   time-integrated metrics vs instantaneous-area metrics;
//! * `refinement_index` — per-candidate-cell range-query cost of the
//!   TPR-tree vs the velocity-bounded grid index.
//!
//! Plain `harness = false` timing (no external benchmark framework).

use pdr_bench::{build_fr, build_pa, build_workload, quick_bench, Scale};
use pdr_core::{classify_cells, refine_region, DenseThreshold, PdrQuery};
use pdr_geometry::{LSquare, Point, Rect};
use pdr_tprtree::{TprConfig, TprTree};
use std::hint::black_box;

fn main() {
    let mut cfg = Scale::Quick.config();
    cfg.max_update_time = 8;
    cfg.prediction_window = 8;
    let n = 20_000;
    let w = build_workload(&cfg, n, 5);
    let fr = build_fr(&cfg, &w, 100);
    let l = 30.0;
    let q_t = cfg.horizon() / 2;
    let rho = cfg.rho(2.0, n);
    let q = PdrQuery::new(rho, l, q_t);

    // -- filter: prefix sums vs naive summation ------------------------
    println!("== filter_prefix_vs_naive ==");
    {
        let grid = fr.histogram().grid();
        quick_bench("prefix", 20, || {
            let sums = fr.histogram().prefix_sums_at(q_t);
            black_box(classify_cells(grid, &sums, &q).candidate_count());
        });
        let m = grid.cells_per_side() as i64;
        let plane = fr.histogram().plane_at(q_t);
        // eta_h for l = 30, l_c = 10.
        let eta = 2i64;
        quick_bench("naive", 20, || {
            let mut candidates = 0usize;
            for row in 0..m {
                for col in 0..m {
                    let mut sum = 0i64;
                    for r in (row - eta).max(0)..=(row + eta).min(m - 1) {
                        for cl in (col - eta).max(0)..=(col + eta).min(m - 1) {
                            sum += plane[(r * m + cl) as usize] as i64;
                        }
                    }
                    if sum as f64 >= q.count_threshold() {
                        candidates += 1;
                    }
                }
            }
            black_box(candidates);
        });
    }

    // -- refinement: plane sweep vs grid counting ----------------------
    println!("== refine_sweep_vs_grid ==");
    // A dense candidate-cell-like scene: 300 points in a 10x10 target.
    let target = Rect::new(0.0, 0.0, 10.0, 10.0);
    let mut seed = 9u64;
    let mut rng = move || {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (seed >> 33) as f64 / (1u64 << 31) as f64
    };
    let pts: Vec<Point> = (0..300)
        .map(|_| Point::new(rng() * 40.0 - 15.0, rng() * 40.0 - 15.0))
        .collect();
    let thr = DenseThreshold::from_count(8.0);
    quick_bench("sweep", 20, || {
        black_box(refine_region(&target, &mut pts.clone(), thr, 6.0).len());
    });
    quick_bench("grid64", 20, || {
        // 64x64 point grid over the target; per point O(n) counting.
        let mut dense = 0usize;
        for i in 0..64 {
            for j in 0..64 {
                let p = Point::new(
                    target.x_lo + (i as f64 + 0.5) * target.width() / 64.0,
                    target.y_lo + (j as f64 + 0.5) * target.height() / 64.0,
                );
                let sq = LSquare::new(p, 6.0);
                if thr.met_by(pts.iter().filter(|&&o| sq.contains(o)).count()) {
                    dense += 1;
                }
            }
        }
        black_box(dense);
    });

    // -- PA: branch-and-bound vs exhaustive grid scan ------------------
    let pa = build_pa(&cfg, &w, l, 20, 5);
    println!("== pa_bnb_vs_grid ==");
    quick_bench("bnb", 10, || {
        black_box(pa.query(rho, q_t).regions.len());
    });
    quick_bench("grid_scan", 10, || {
        black_box(pa.query_grid_scan(rho, q_t).regions.len());
    });

    // -- TPR-tree: integrated vs instantaneous insertion metrics -------
    println!("== tpr_insert_metric ==");
    let query_rect = Rect::new(400.0, 400.0, 500.0, 500.0);
    for (name, integral) in [("integral", true), ("instant", false)] {
        let mut tree = TprTree::new(
            TprConfig {
                buffer_pages: 64,
                min_fill_ratio: 0.4,
                horizon: cfg.horizon() as f64,
                integral_metrics: integral,
            },
            0,
        );
        for (id, m) in &w.population {
            tree.insert(*id, m, 0);
        }
        quick_bench(&format!("predictive_query_{name}"), 10, || {
            black_box(tree.range_at(&query_rect, cfg.horizon()).len());
        });
        tree.reset_io_stats();
        let _ = tree.range_at(&query_rect, cfg.horizon());
        eprintln!(
            "tpr_insert_metric/{name}: {} node reads for the far-future query",
            tree.io_stats().logical_reads
        );
    }

    // -- refinement index: TPR-tree vs velocity-bounded grid -----------
    // The refinement step issues one small range query per candidate
    // cell; compare both indexes on that access pattern.
    use pdr_gridindex::{GridIndex, GridIndexConfig};
    let mut tpr = TprTree::new(TprConfig::default_with_horizon(cfg.horizon() as f64), 0);
    tpr.bulk_load(&w.population, 0.7);
    let mut gidx = GridIndex::new(
        GridIndexConfig {
            extent: cfg.extent,
            buckets_per_side: 32,
            buffer_pages: 256,
        },
        0,
    );
    for (id, m) in &w.population {
        gidx.insert(*id, m);
    }
    // 64 candidate-cell-sized queries scattered over the hot half.
    let cells: Vec<Rect> = (0..64)
        .map(|i| {
            let x = 200.0 + (i % 8) as f64 * 75.0;
            let y = 200.0 + (i / 8) as f64 * 75.0;
            Rect::new(x, y, x + 10.0, y + 10.0).inflate(l / 2.0)
        })
        .collect();
    println!("== refinement_index ==");
    quick_bench("tpr_tree", 10, || {
        let mut n = 0usize;
        for r in &cells {
            n += tpr.range_at(r, q_t).len();
        }
        black_box(n);
    });
    quick_bench("grid_index", 10, || {
        let mut n = 0usize;
        for r in &cells {
            n += gidx.range_at(r, q_t).len();
        }
        black_box(n);
    });
    for (name, io) in [
        ("tpr", {
            tpr.reset_io_stats();
            for r in &cells {
                let _ = tpr.range_at(r, q_t);
            }
            tpr.io_stats().logical_reads
        }),
        ("grid", {
            gidx.reset_io_stats();
            for r in &cells {
                let _ = gidx.range_at(r, q_t);
            }
            gidx.io_stats().logical_reads
        }),
    ] {
        eprintln!("refinement_index/{name}: {io} page reads for 64 candidate cells");
    }
}
