//! Serial-vs-parallel FR refinement scaling bench.
//!
//! Builds a clustered population (many borderline-dense pockets, so the
//! filter step leaves hundreds of candidate cells), runs the same PDR
//! query through engines configured with 1, 2, 4 and 8 refinement
//! workers, checks the answers are rectangle-for-rectangle identical,
//! and writes the medians to `BENCH_fr_parallel.json`.
//!
//! Refinement chunks run on the shared persistent work-stealing
//! [`Executor`](pdr_core::Executor) (not per-query spawned threads);
//! the JSON records the pool size and the spawn-vs-pool dispatch delta
//! alongside the medians.
//!
//! Usage: `cargo bench --bench fr_parallel [-- <n_objects> <samples>]`
//! (defaults: 100 000 objects, 5 samples per thread count). The JSON
//! records `available_parallelism` — on a single-core host the parallel
//! configurations cannot beat serial and the file says so.

use pdr_core::{FrConfig, FrEngine, PdrQuery};
use pdr_geometry::Point;
use pdr_mobject::{MotionState, ObjectId, TimeHorizon};

const EXTENT: f64 = 1000.0;

struct Lcg(u64);
impl Lcg {
    fn next(&mut self) -> f64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (self.0 >> 33) as f64 / (1u64 << 31) as f64
    }
}

/// `n` objects: 75 % in 250 compact 20×20 clusters (borderline-dense
/// pockets whose rims become candidate cells), 25 % uniform background.
fn clustered_population(n: usize, seed: u64) -> Vec<(ObjectId, MotionState)> {
    let mut rng = Lcg(seed);
    let clusters: Vec<(f64, f64)> = (0..250)
        .map(|_| (20.0 + rng.next() * 960.0, 20.0 + rng.next() * 960.0))
        .collect();
    (0..n)
        .map(|i| {
            let p = if i % 4 != 3 {
                let (cx, cy) = clusters[i % clusters.len()];
                Point::new(cx + rng.next() * 20.0 - 10.0, cy + rng.next() * 20.0 - 10.0)
            } else {
                Point::new(rng.next() * EXTENT, rng.next() * EXTENT)
            };
            let v = Point::new(rng.next() * 2.0 - 1.0, rng.next() * 2.0 - 1.0);
            (ObjectId(i as u64), MotionState::new(p, v, 0))
        })
        .collect()
}

fn engine(threads: usize, pop: &[(ObjectId, MotionState)]) -> FrEngine {
    let mut fr = FrEngine::new(
        FrConfig {
            extent: EXTENT,
            m: 100, // l_c = 10
            horizon: TimeHorizon::new(8, 8),
            buffer_pages: 2048,
            threads,
        },
        0,
    );
    fr.bulk_load(pop, 0);
    fr
}

fn main() {
    let mut args = std::env::args().skip(1).filter(|a| !a.starts_with("--"));
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(100_000);
    let samples: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(5);
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    println!("fr_parallel: n = {n}, samples = {samples}, cores = {cores}");

    let pop = clustered_population(n, 0xC0FFEE);
    // Threshold 60 objects per 30x30 neighborhood: cluster cores are
    // accepted outright, their rims are left for refinement.
    let q = PdrQuery::new(60.0 / 900.0, 30.0, 2);

    let serial = engine(1, &pop);
    let base = serial.query(&q);
    println!(
        "candidate cells: {} (accepts {}, rejects {})",
        base.candidates, base.accepts, base.rejects
    );
    assert!(
        base.candidates >= 200,
        "workload too easy: only {} candidate cells",
        base.candidates
    );

    let mut results = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        let fr = engine(threads, &pop);
        let ans = fr.query(&q);
        assert_eq!(
            ans.regions.rects(),
            base.regions.rects(),
            "answer diverged at threads = {threads}"
        );
        let median =
            pdr_bench::quick_bench(&format!("fr_query threads={threads}"), samples, || {
                std::hint::black_box(fr.query(&q).regions.len());
            });
        results.push((threads, median.as_secs_f64() * 1e3));
    }

    let serial_ms = results[0].1;
    let best_parallel = results
        .iter()
        .filter(|(t, _)| *t >= 4)
        .map(|&(_, ms)| ms)
        .fold(f64::INFINITY, f64::min);
    let pool_workers = pdr_core::Executor::global().workers();
    let dispatch = pdr_bench::dispatch_json(16, samples);
    let json = format!(
        "{{\n  \"n\": {n},\n  \"samples\": {samples},\n  \"available_parallelism\": {cores},\n  \
         \"pool_workers\": {pool_workers},\n  \"dispatch\": {dispatch},\n  \
         \"candidate_cells\": {cands},\n  \"answers_identical\": true,\n  \"results\": [\n{rows}\n  ],\n  \
         \"speedup_threads_ge_4_vs_serial\": {speedup:.3}\n}}\n",
        cands = base.candidates,
        rows = results
            .iter()
            .map(|(t, ms)| format!("    {{\"threads\": {t}, \"median_ms\": {ms:.3}}}"))
            .collect::<Vec<_>>()
            .join(",\n"),
        speedup = serial_ms / best_parallel,
    );
    // Cargo runs benches with the package directory as cwd; anchor the
    // artifact at the workspace root so it lands in a stable place.
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_fr_parallel.json");
    std::fs::write(&out, &json).expect("write BENCH_fr_parallel.json");
    println!("wrote {}:\n{json}", out.display());
}
