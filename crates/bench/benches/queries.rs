//! Query-side micro-benchmarks backing Figures 9(a) and 10(a)/(b):
//! PA branch-and-bound vs DH classification vs full FR queries, across
//! density thresholds.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pdr_bench::{build_fr, build_pa, build_workload, Scale};
use pdr_core::{classify_cells, PdrQuery};
use std::hint::black_box;

fn bench_queries(c: &mut Criterion) {
    let mut cfg = Scale::Quick.config();
    cfg.max_update_time = 8;
    cfg.prediction_window = 8;
    let n = 20_000;
    let w = build_workload(&cfg, n, 7);
    let mut fr = build_fr(&cfg, &w, 100);
    let l = 30.0;
    let pa = build_pa(&cfg, &w, l, 20, 5);
    let q_t = cfg.horizon() / 2;

    let mut group = c.benchmark_group("fig9a_query_cpu");
    group.sample_size(20);
    for varrho in [1.0, 3.0, 5.0] {
        let rho = cfg.rho(varrho, n);
        group.bench_with_input(BenchmarkId::new("pa_bnb", varrho), &rho, |b, &rho| {
            b.iter(|| black_box(pa.query(rho, q_t).regions.len()))
        });
        group.bench_with_input(BenchmarkId::new("dh_classify", varrho), &rho, |b, &rho| {
            let grid = fr.histogram().grid();
            let q = PdrQuery::new(rho, l, q_t);
            b.iter(|| {
                let sums = fr.histogram().prefix_sums_at(q_t);
                black_box(classify_cells(grid, &sums, &q).candidate_count())
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("fig10a_total_cost");
    group.sample_size(10);
    for varrho in [1.0, 3.0, 5.0] {
        let rho = cfg.rho(varrho, n);
        group.bench_with_input(BenchmarkId::new("fr_full", varrho), &rho, |b, &rho| {
            let q = PdrQuery::new(rho, l, q_t);
            b.iter(|| black_box(fr.query(&q).regions.len()))
        });
        group.bench_with_input(BenchmarkId::new("pa_full", varrho), &rho, |b, &rho| {
            b.iter(|| black_box(pa.query(rho, q_t).regions.len()))
        });
    }
    group.finish();

    // Figure 10(b): FR cost grows with the dataset, PA stays flat.
    let mut group = c.benchmark_group("fig10b_dataset_scaling");
    group.sample_size(10);
    for n in [5_000usize, 20_000] {
        let w = build_workload(&cfg, n, 7);
        let mut fr = build_fr(&cfg, &w, 100);
        let pa = build_pa(&cfg, &w, l, 20, 5);
        let rho = cfg.rho(2.0, n);
        let q = PdrQuery::new(rho, l, q_t);
        group.bench_with_input(BenchmarkId::new("fr_full", n), &n, |b, _| {
            b.iter(|| black_box(fr.query(&q).regions.len()))
        });
        group.bench_with_input(BenchmarkId::new("pa_full", n), &n, |b, _| {
            b.iter(|| black_box(pa.query(rho, q_t).regions.len()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_queries);
criterion_main!(benches);
