//! Query-side micro-benchmarks backing Figures 9(a) and 10(a)/(b):
//! PA branch-and-bound vs DH classification vs full FR queries, across
//! density thresholds. Plain `harness = false` timing (no external
//! benchmark framework — the registry is unreachable offline).

use pdr_bench::{build_fr, build_pa, build_workload, quick_bench, Scale};
use pdr_core::{classify_cells, PdrQuery};
use std::hint::black_box;

fn main() {
    let mut cfg = Scale::Quick.config();
    cfg.max_update_time = 8;
    cfg.prediction_window = 8;
    let n = 20_000;
    let w = build_workload(&cfg, n, 7);
    let fr = build_fr(&cfg, &w, 100);
    let l = 30.0;
    let pa = build_pa(&cfg, &w, l, 20, 5);
    let q_t = cfg.horizon() / 2;

    println!("== fig9a_query_cpu ==");
    for varrho in [1.0, 3.0, 5.0] {
        let rho = cfg.rho(varrho, n);
        quick_bench(&format!("pa_bnb/{varrho}"), 20, || {
            black_box(pa.query(rho, q_t).regions.len());
        });
        let grid = fr.histogram().grid();
        let q = PdrQuery::new(rho, l, q_t);
        quick_bench(&format!("dh_classify/{varrho}"), 20, || {
            let sums = fr.histogram().prefix_sums_at(q_t);
            black_box(classify_cells(grid, &sums, &q).candidate_count());
        });
    }

    println!("== fig10a_total_cost ==");
    for varrho in [1.0, 3.0, 5.0] {
        let rho = cfg.rho(varrho, n);
        let q = PdrQuery::new(rho, l, q_t);
        quick_bench(&format!("fr_full/{varrho}"), 10, || {
            black_box(fr.query(&q).regions.len());
        });
        quick_bench(&format!("pa_full/{varrho}"), 10, || {
            black_box(pa.query(rho, q_t).regions.len());
        });
    }

    // Figure 10(b): FR cost grows with the dataset, PA stays flat.
    println!("== fig10b_dataset_scaling ==");
    for n in [5_000usize, 20_000] {
        let w = build_workload(&cfg, n, 7);
        let fr = build_fr(&cfg, &w, 100);
        let pa = build_pa(&cfg, &w, l, 20, 5);
        let rho = cfg.rho(2.0, n);
        let q = PdrQuery::new(rho, l, q_t);
        quick_bench(&format!("fr_full/{n}"), 10, || {
            black_box(fr.query(&q).regions.len());
        });
        quick_bench(&format!("pa_full/{n}"), 10, || {
            black_box(pa.query(rho, q_t).regions.len());
        });
    }
}
