//! Workload-generator guarantees the experiments rely on.

use pdr_geometry::Rect;
use pdr_mobject::UpdateKind;
use pdr_workload::config::ExperimentConfig;
use pdr_workload::{
    gaussian_clusters, query_workload, uniform_population, DatasetSpec, NetworkConfig, RoadNetwork,
    TrafficSimulator,
};

#[test]
fn dataset_specs_match_the_paper() {
    assert_eq!(DatasetSpec::ALL[0].name, "CH40K");
    assert_eq!(DatasetSpec::ALL[0].n_objects, 40_000);
    assert_eq!(DatasetSpec::DEFAULT.name, "CH100K");
    assert_eq!(DatasetSpec::ALL[2].n_objects, 500_000);
}

#[test]
fn simulated_positions_never_escape_far() {
    // Vehicles drive between in-bounds intersections, so extrapolated
    // positions stay within the plane (up to one leg of overshoot,
    // which the simulator prevents by re-reporting on arrival).
    let net = RoadNetwork::generate(&NetworkConfig::metro(1000.0), 5);
    let mut sim = TrafficSimulator::new(net, 500, 9, 10, 0);
    let bounds = Rect::new(0.0, 0.0, 1000.0, 1000.0).inflate(5.0);
    for _ in 0..40 {
        sim.tick();
        let t = sim.t_now();
        for p in sim.positions_at(t) {
            assert!(bounds.contains(p), "vehicle escaped to {p:?} at t={t}");
        }
    }
}

#[test]
fn update_stream_is_protocol_clean() {
    // Every deletion retracts the motion most recently inserted for
    // that object — replaying the stream against a shadow map must
    // never desynchronize.
    use std::collections::HashMap;
    let net = RoadNetwork::generate(&NetworkConfig::metro(500.0), 6);
    let mut sim = TrafficSimulator::new(net, 300, 4, 6, 0);
    let mut shadow: HashMap<u64, pdr_mobject::MotionState> = sim
        .population()
        .into_iter()
        .map(|(id, m)| (id.0, m))
        .collect();
    for _ in 0..25 {
        for u in sim.tick() {
            match u.kind {
                UpdateKind::Delete { old_motion } => {
                    let prev = shadow.remove(&u.id.0).expect("delete of unknown object");
                    assert_eq!(prev, old_motion, "deletion does not match last insertion");
                }
                UpdateKind::Insert { motion } => {
                    let dup = shadow.insert(u.id.0, motion);
                    assert!(dup.is_none(), "insert without prior delete");
                }
            }
        }
    }
    assert_eq!(shadow.len(), 300, "every vehicle still live");
}

#[test]
fn generators_respect_bounds_and_counts() {
    let bounds = Rect::new(0.0, 0.0, 250.0, 250.0);
    for pop in [
        uniform_population(1000, 250.0, 2.0, 1, 5),
        gaussian_clusters(1000, 250.0, 3, 10.0, 0.3, 2.0, 1, 5),
    ] {
        assert_eq!(pop.len(), 1000);
        for (id, m) in &pop {
            assert!(id.0 < 1000);
            assert_eq!(m.t_ref, 5);
            assert!(bounds.contains(m.origin), "origin {:?}", m.origin);
            assert!(m.velocity.norm() <= 2.0 * std::f64::consts::SQRT_2 + 1e-9);
        }
    }
}

#[test]
fn query_workload_rho_scales_with_objects() {
    let cfg = ExperimentConfig::default();
    let small = query_workload(&cfg, 10_000, 0, 10, 1);
    let large = query_workload(&cfg, 100_000, 0, 10, 1);
    for (a, b) in small.iter().zip(&large) {
        assert_eq!(a.varrho, b.varrho);
        assert!((b.rho / a.rho - 10.0).abs() < 1e-9, "rho must scale with N");
    }
}

#[test]
fn network_degree_bounds() {
    let net = RoadNetwork::generate(
        &NetworkConfig {
            extent: 1000.0,
            nodes: 800,
            hotspots: 5,
            spread: 0.05,
            background: 0.2,
            degree: 3,
        },
        12,
    );
    let mut total_degree = 0usize;
    for i in 0..net.node_count() as u32 {
        let d = net.neighbors(i).len();
        assert!(d >= 1, "node {i} isolated");
        total_degree += d;
    }
    // Symmetrized k-NN: average degree lands between k and ~2k.
    let avg = total_degree as f64 / net.node_count() as f64;
    assert!(
        (3.0..=6.5).contains(&avg),
        "average degree {avg} out of expected band"
    );
}
