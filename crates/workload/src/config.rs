//! The experimental setup of Table 1.
//!
//! Values lost to the OCR of the source text were reconstructed from
//! internal evidence (see DESIGN.md): `ρ = N·ϱ/10⁶` is stated outright;
//! `U = W = 60` follows the effective-density-query setup the paper
//! says it mirrors; the dataset names fix 40K/100K/500K.

/// The full parameter table of the evaluation (Section 7, Table 1).
/// Defaults mirror the paper's bold values.
#[derive(Clone, Debug)]
pub struct ExperimentConfig {
    /// Page size in bytes.
    pub page_size: usize,
    /// Buffer size as a fraction of the dataset size.
    pub buffer_fraction: f64,
    /// Random disk access time in milliseconds.
    pub random_io_ms: f64,
    /// Maximum update interval `U` (timestamps).
    pub max_update_time: u64,
    /// Prediction window length `W` (timestamps).
    pub prediction_window: u64,
    /// Edge lengths `l` of the query square (miles).
    pub edge_lengths: Vec<f64>,
    /// Dataset sizes (number of objects).
    pub object_counts: Vec<usize>,
    /// Relative density thresholds ϱ.
    pub relative_thresholds: Vec<f64>,
    /// Polynomial grid sizes `g²` (number of polynomials).
    pub polynomial_counts: Vec<u32>,
    /// Polynomial degrees `k`.
    pub polynomial_degrees: Vec<usize>,
    /// Density-histogram cell counts `m²`.
    pub histogram_cells: Vec<u32>,
    /// Evaluation grid `m_d` per side for PA.
    pub evaluation_grid: u32,
    /// Side length of the plane (miles).
    pub extent: f64,
    /// Default dataset index into `object_counts`.
    pub default_dataset: usize,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            page_size: 4096,
            buffer_fraction: 0.10,
            random_io_ms: 10.0,
            max_update_time: 60,
            prediction_window: 60,
            edge_lengths: vec![30.0, 60.0],
            object_counts: vec![40_000, 100_000, 500_000],
            relative_thresholds: vec![1.0, 2.0, 3.0, 4.0, 5.0],
            polynomial_counts: vec![400, 1600],
            polynomial_degrees: vec![3, 4, 5],
            histogram_cells: vec![10_000, 40_000, 62_500],
            evaluation_grid: 1024,
            extent: 1000.0,
            default_dataset: 1,
        }
    }
}

impl ExperimentConfig {
    /// The horizon `H = U + W`.
    pub fn horizon(&self) -> u64 {
        self.max_update_time + self.prediction_window
    }

    /// Default number of objects (CH100K).
    pub fn default_objects(&self) -> usize {
        self.object_counts[self.default_dataset]
    }

    /// Absolute threshold for a relative ϱ on `n` objects:
    /// `ρ = n·ϱ / extent²`.
    pub fn rho(&self, varrho: f64, n: usize) -> f64 {
        n as f64 * varrho / (self.extent * self.extent)
    }

    /// Buffer pages for a dataset of `n` objects, sized at
    /// `buffer_fraction` of the raw data (40-byte motion records).
    pub fn buffer_pages(&self, n: usize) -> usize {
        let data_bytes = n * 40;
        ((data_bytes as f64 * self.buffer_fraction) / self.page_size as f64).ceil() as usize
    }

    /// Renders the setup as the paper's Table 1 (defaults in brackets).
    pub fn render_table(&self) -> String {
        let join = |v: &[f64]| {
            v.iter()
                .map(|x| format!("{x}"))
                .collect::<Vec<_>>()
                .join(", ")
        };
        let joinu = |v: &[u32]| {
            v.iter()
                .map(|x| format!("{x}"))
                .collect::<Vec<_>>()
                .join(", ")
        };
        let mut s = String::new();
        s.push_str("Parameter                                | Value\n");
        s.push_str("-----------------------------------------+---------------------------\n");
        s.push_str(&format!(
            "Page size                                | {} KiB\n",
            self.page_size / 1024
        ));
        s.push_str(&format!(
            "Buffer size                              | {:.0}% of dataset size\n",
            self.buffer_fraction * 100.0
        ));
        s.push_str(&format!(
            "Random disk access time                  | {} ms\n",
            self.random_io_ms
        ));
        s.push_str(&format!(
            "Maximum update interval (U)              | {}\n",
            self.max_update_time
        ));
        s.push_str(&format!(
            "Prediction window length (W)             | {}\n",
            self.prediction_window
        ));
        s.push_str(&format!(
            "Edge length of l-square (l)              | [{}], {}\n",
            self.edge_lengths[0],
            join(&self.edge_lengths[1..])
        ));
        s.push_str(&format!(
            "Number of objects                        | {}\n",
            self.object_counts
                .iter()
                .enumerate()
                .map(|(i, n)| if i == self.default_dataset {
                    format!("[{n}]")
                } else {
                    format!("{n}")
                })
                .collect::<Vec<_>>()
                .join(", ")
        ));
        s.push_str(&format!(
            "Relative density threshold (varrho)      | {}\n",
            join(&self.relative_thresholds)
        ));
        s.push_str(&format!(
            "Num. of polynomials (g x g)              | [{}], {}\n",
            self.polynomial_counts[0],
            joinu(&self.polynomial_counts[1..])
        ));
        s.push_str(&format!(
            "Degree of polynomial (k)                 | {}, [{}]\n",
            joinu(
                &self.polynomial_degrees[..self.polynomial_degrees.len() - 1]
                    .iter()
                    .map(|&d| d as u32)
                    .collect::<Vec<_>>()
            ),
            self.polynomial_degrees[self.polynomial_degrees.len() - 1]
        ));
        s.push_str(&format!(
            "Num. of cells in DH (m x m)              | [{}], {}\n",
            self.histogram_cells[0],
            joinu(&self.histogram_cells[1..])
        ));
        s.push_str(&format!(
            "Grid for polynomial evaluation (m_d)     | {} x {}\n",
            self.evaluation_grid, self.evaluation_grid
        ));
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let c = ExperimentConfig::default();
        assert_eq!(c.horizon(), 120);
        assert_eq!(c.default_objects(), 100_000);
        // rho for CH500K spans 0.5..2.5.
        assert!((c.rho(1.0, 500_000) - 0.5).abs() < 1e-12);
        assert!((c.rho(5.0, 500_000) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn buffer_sizing() {
        let c = ExperimentConfig::default();
        // 100K objects x 40 B = 4 MB; 10% = 400 KiB ~ 98 pages.
        let pages = c.buffer_pages(100_000);
        assert!((90..=110).contains(&pages), "pages = {pages}");
    }

    #[test]
    fn table_renders_all_rows() {
        let t = ExperimentConfig::default().render_table();
        for needle in [
            "Page size",
            "Buffer size",
            "Random disk access",
            "Maximum update interval",
            "Prediction window",
            "Edge length",
            "Number of objects",
            "Relative density threshold",
            "polynomials",
            "Degree",
            "cells in DH",
            "polynomial evaluation",
        ] {
            assert!(t.contains(needle), "missing row {needle}\n{t}");
        }
    }
}
