//! Dependency-free TCP serving front-end.
//!
//! `pdrcli serve --listen` exposes a [`ServeDriver`] over a socket so
//! concurrent clients exercise the engines the way a deployment would:
//! many connections issuing pointwise-dense region queries against one
//! shared engine plane while the update stream keeps ticking. Every
//! query runs through [`DensityEngine::try_query`]'s shared-read
//! contract, so client concurrency composes with the intra-query
//! parallelism running on the process-wide
//! [`Executor`](pdr_core::Executor).
//!
//! ## Wire protocol
//!
//! Length-prefixed JSON over TCP: each frame is a 4-byte big-endian
//! payload length followed by that many bytes of UTF-8 JSON (at most
//! [`MAX_FRAME`]). Requests are objects with an `"op"` key; responses
//! always carry `"ok"`. Requests on one connection are answered in
//! order, but clients may *pipeline* — write several frames before
//! reading any response.
//!
//! | op            | request fields                               | response                                  |
//! |---------------|----------------------------------------------|-------------------------------------------|
//! | `query`       | `rho`, `l`, `q_t`[, `engine`, `rects`]       | `regions`, `area`, `t`, `micros`, `deadline_miss`[, `rects`] |
//! | `check`       | `rho`, `l`, `q_t`[, `engine`]                | `query` fields plus `exact`, `sym_diff`   |
//! | `subscribe`   | `rho`, `l`, `q_t`[, `region`, `engine`]      | `sub`, `engine`                           |
//! | `unsubscribe` | `sub`[, `engine`]                            | `removed`                                 |
//! | `poll_deltas` | —                                            | `deltas` array, `lost`                    |
//! | `tick`        | —                                            | `updates`, `t_now`, `deltas`              |
//! | `ship_log`    | `epoch`, `offsets`[, `repl_epoch`, `engine`] | `epoch`, `repl_epoch`, `part_epoch`, `t_base`, `checkpoint` (base64 or null), `segments` |
//! | `sync`        | [`engine`]                                   | `bootstrapped`, `records`, `updates`, `lag`, `applied_t`, `attempts` |
//! | `promote`     | [`engine`]                                   | `promoted`, `repl_epoch`, `applied_t`     |
//! | `rebalance`   | [`action` (`"split"`/`"merge"`), `engine`]   | `action`, `retired`, `created`, `records_replayed`, `leaves`, `part_epoch` |
//! | `metrics`     | —                                            | `metrics` object (counters, clients, exec[, replica])|
//! | `shutdown`    | —                                            | `draining: true`; server drains and exits |
//!
//! Any request may carry a numeric `"id"`, echoed verbatim in its
//! response — pipelining clients use it to correlate responses and to
//! discard duplicate frames an injected (or real) network fault
//! delivered twice.
//!
//! `q_t` is the *offset* from the server's current clock (how far into
//! the prediction window the query looks), not an absolute timestamp —
//! the server keeps ticking underneath the clients, so absolute times
//! would go stale in flight. The response's `t` reports the resolved
//! absolute timestamp.
//!
//! ## Subscriptions
//!
//! `subscribe` registers a standing PDR query (`q_t` becomes a sliding
//! now-plus-offset; `region` is an optional `[x_lo,y_lo,x_hi,y_hi]`
//! region of interest defaulting to the monitored bounds) and answers
//! with its id. The initial answer arrives as the subscription's first
//! delta — everything `added` — so a client reconstructs the standing
//! answer *purely* by replaying deltas. Each `tick` drains the
//! engines' incremental maintenance output and routes every delta to
//! the connection owning its subscription, bounded by [`SUB_BUF_CAP`]
//! per connection: on overflow the buffer is dropped and the next
//! `poll_deltas` reports `"lost":true`, telling the client its replayed
//! answer is stale and it must resubscribe. A `"degraded":true` delta
//! means the same thing (the engine crash-recovered or a shard went
//! offline mid-maintenance). Closing a connection unregisters its
//! subscriptions.
//!
//! ## Replication
//!
//! A front-end started as a replica ([`NetServerConfig::replica_of`])
//! serves a read-only [`Replica`] engine instead of a primary plane:
//! `tick` is refused, `query`/`subscribe` answer from the replicated
//! state, and `q_t` resolves against the replica's *applied* protocol
//! time (the last `advance_to` it replayed), not a local clock. A
//! `sync` op makes the replica pull one [`LogShipment`] from its
//! primary's `ship_log` op — sealed checkpoints and per-shard WAL
//! segment deltas ride the JSON frames base64-encoded — and ingest it;
//! the response reports the staleness bound (`lag`). At equal applied
//! offsets the replica's answers are bit-identical to the primary's.
//!
//! ## Backpressure
//!
//! Admission is bounded: at most `capacity` queries may be in flight
//! across all connections. A query arriving beyond that is rejected
//! immediately with `{"ok":false,"error":"overloaded",
//! "retry_after_ms":N}` and counted in `rejected_admissions` — the
//! client is expected to back off and retry, so overload degrades into
//! latency instead of memory growth.
//!
//! ## Deadlines and faults
//!
//! Each admitted query is timed against the [`FaultPolicy`] deadline;
//! a miss is reported in the response and counted per client. Transient
//! storage faults are retried in place (the read path is `&self`, so a
//! retry needs no exclusive access) up to `max_attempts` with the
//! policy's seeded backoff; queries that still fail count as
//! `failed_queries`.
//!
//! ## Failover
//!
//! The `promote` op turns a replica front-end into a writable primary:
//! the applied state is sealed under a fresh checkpoint, the
//! replication epoch bumps strictly past the one it replicated, and
//! the front-end stops pulling from its old primary. Epoch fencing
//! protects the promoted lineage: a deposed primary that observes the
//! newer epoch on a `ship_log` request fences itself — writes are
//! dropped and counted, `tick` answers a typed `fenced` error — and a
//! replica refuses shipments cut under a stale epoch with the same
//! typed error. Zero silent divergence either way.
//!
//! ## Timeouts and network faults
//!
//! Connection reads are bounded: a peer that stalls mid-frame is torn
//! down after [`NetServerConfig::frame_timeout`] and an idle
//! connection is reaped after [`NetServerConfig::idle_timeout`]
//! (counted as `reaped_connections`), so a dropped peer can never pin
//! a worker thread. A seeded [`NetFaultInjector`] can be installed
//! beneath the framing layer ([`NetServerConfig::faults`],
//! [`NetClient::with_faults`]) to drop, delay, duplicate, truncate or
//! reset frames deterministically; fired counters surface in the
//! `metrics` op as `netfaults`.
//!
//! ## Shutdown
//!
//! The `shutdown` op is the clean-exit path: the acceptor stops, every
//! connection drains, and the final summary reports
//! `"leaked_workers"` — worker threads that failed to join. (A signal
//! handler would need a dependency or `unsafe`; the CLI documents that
//! SIGTERM simply kills the process, while scripted shutdown goes
//! through the protocol.)

use crate::netfault::{FrameFault, NetFaultInjector};
use crate::serve::{FaultPolicy, ServeDriver};
use pdr_core::{
    AnswerDelta, Executor, LogShipment, PdrQuery, QtPolicy, RecoverError, ShippedSegment, SubId,
};
use pdr_geometry::Rect;
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

/// Largest accepted frame payload (4 MiB — bootstrap shipments carry a
/// base64 full-plane checkpoint).
pub const MAX_FRAME: usize = 1 << 22;

/// Most deltas buffered per connection between `poll_deltas` calls;
/// beyond this the buffer is dropped and the connection flagged lost.
pub const SUB_BUF_CAP: usize = 1024;

// ---------------------------------------------------------------------
// Minimal JSON value + parser (server side of the wire protocol; the
// emitting side reuses the same hand-rolled formatting as `pdr_core::obs`).
// ---------------------------------------------------------------------

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in document order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses a JSON document (rejects trailing garbage).
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            b: text.as_bytes(),
            i: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.i != p.b.len() {
            return Err(format!("trailing bytes at offset {}", p.i));
        }
        Ok(v)
    }

    /// Member `key` of an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// Non-negative integer value, if this is a whole number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= u64::MAX as f64 => {
                Some(*x as u64)
            }
            _ => None,
        }
    }

    /// String value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at offset {}", c as char, self.i))
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at offset {}", self.i))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.lit("null", Json::Null),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected byte at offset {}", self.i)),
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.i;
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.i += 1;
            } else {
                break;
            }
        }
        std::str::from_utf8(&self.b[start..self.i])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .filter(|x| x.is_finite())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at offset {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek().ok_or("unterminated string")? {
                b'"' => {
                    self.i += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.i += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.i += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.i + 4 > self.b.len() {
                                return Err("truncated \\u escape".into());
                            }
                            let hex = std::str::from_utf8(&self.b[self.i..self.i + 4])
                                .map_err(|_| "bad \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            self.i += 4;
                            // Surrogates are rejected rather than paired —
                            // the protocol never emits them.
                            out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                        }
                        _ => return Err(format!("bad escape at offset {}", self.i)),
                    }
                }
                _ => {
                    // Consume the whole run of plain bytes in one step.
                    // (Re-validating the remaining buffer per character
                    // is quadratic — fatal on the multi-megabyte base64
                    // checkpoint strings `ship_log` responses carry.)
                    // Continuation bytes are ≥ 0x80, so scanning
                    // bytewise never splits a UTF-8 scalar.
                    let start = self.i;
                    while let Some(&c) = self.b.get(self.i) {
                        if c == b'"' || c == b'\\' {
                            break;
                        }
                        if c < 0x20 {
                            return Err("raw control character in string".into());
                        }
                        self.i += 1;
                    }
                    let run =
                        std::str::from_utf8(&self.b[start..self.i]).map_err(|_| "invalid UTF-8")?;
                    out.push_str(run);
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("bad array at offset {}", self.i)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            members.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("bad object at offset {}", self.i)),
            }
        }
    }
}

// ---------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------

/// Writes one length-prefixed frame.
pub fn write_frame(w: &mut impl Write, payload: &str) -> io::Result<()> {
    let bytes = payload.as_bytes();
    if bytes.len() > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "frame too large",
        ));
    }
    w.write_all(&(bytes.len() as u32).to_be_bytes())?;
    w.write_all(bytes)?;
    w.flush()
}

/// Reads one frame; `Ok(None)` on clean EOF at a frame boundary.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<String>> {
    let mut len = [0u8; 4];
    match r.read(&mut len) {
        Ok(0) => return Ok(None),
        Ok(mut n) => {
            while n < 4 {
                let m = r.read(&mut len[n..])?;
                if m == 0 {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "torn frame header",
                    ));
                }
                n += m;
            }
        }
        Err(e) => return Err(e),
    }
    let len = u32::from_be_bytes(len) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame too large",
        ));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    String::from_utf8(buf)
        .map(Some)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "frame is not UTF-8"))
}

/// Writes one frame through an optional fault injector: the injector's
/// verdict may drop the frame (reported as success — the fault is
/// silent by design), delay it, write it twice, tear it mid-payload,
/// or reset the connection instead.
pub fn write_frame_faulted(
    stream: &mut TcpStream,
    payload: &str,
    inj: Option<&NetFaultInjector>,
) -> io::Result<()> {
    let Some(inj) = inj else {
        return write_frame(stream, payload);
    };
    match inj.check_frame() {
        FrameFault::Deliver => write_frame(stream, payload),
        FrameFault::Drop => Ok(()),
        FrameFault::Delay(ms) => {
            std::thread::sleep(Duration::from_millis(ms));
            write_frame(stream, payload)
        }
        FrameFault::Duplicate => {
            write_frame(stream, payload)?;
            write_frame(stream, payload)
        }
        FrameFault::Truncate => {
            // The length prefix promises more than arrives — the reader
            // observes a torn frame, never a silently short payload.
            let bytes = payload.as_bytes();
            stream.write_all(&(bytes.len() as u32).to_be_bytes())?;
            stream.write_all(&bytes[..bytes.len() / 2])?;
            stream.flush()?;
            let _ = stream.shutdown(Shutdown::Both);
            Err(io::Error::new(
                io::ErrorKind::ConnectionReset,
                "injected torn frame",
            ))
        }
        FrameFault::Reset => {
            let _ = stream.shutdown(Shutdown::Both);
            Err(io::Error::new(
                io::ErrorKind::ConnectionReset,
                "injected connection reset",
            ))
        }
    }
}

/// Poll granularity for deadline-bounded reads; also how often a
/// blocked read re-checks the shutdown flag.
const READ_POLL: Duration = Duration::from_millis(50);

/// Reads one frame from a socket with bounded patience: `Ok(None)` on
/// clean EOF (or an observed shutdown flag) at a frame boundary, a
/// `TimedOut` error when the peer idles past `idle` without starting a
/// frame or stalls longer than `frame` between bytes mid-frame. The
/// stream must have a read timeout of [`READ_POLL`] installed — that
/// is what turns blocking reads into poll steps.
pub fn read_frame_deadline(
    stream: &mut TcpStream,
    idle: Duration,
    frame: Duration,
    shutdown: Option<&AtomicBool>,
) -> io::Result<Option<String>> {
    let started = Instant::now();
    let mut last_progress = Instant::now();
    let mut header = [0u8; 4];
    let mut got = 0usize;
    // Header: idle patience while nothing has arrived, frame patience
    // once the first byte is in (a half-written length prefix must not
    // pin the worker).
    while got < 4 {
        match stream.read(&mut header[got..]) {
            Ok(0) => {
                return if got == 0 {
                    Ok(None)
                } else {
                    Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "torn frame header",
                    ))
                };
            }
            Ok(n) => {
                got += n;
                last_progress = Instant::now();
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if got == 0 {
                    if shutdown.is_some_and(|f| f.load(Ordering::SeqCst)) {
                        // Shutdown observed at a frame boundary: treat
                        // as a clean close so drain never hangs on a
                        // silent peer.
                        return Ok(None);
                    }
                    if started.elapsed() > idle {
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            "idle connection reaped",
                        ));
                    }
                } else if last_progress.elapsed() > frame {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        "peer stalled mid-frame",
                    ));
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_be_bytes(header) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame too large",
        ));
    }
    let mut buf = vec![0u8; len];
    let mut got = 0usize;
    while got < len {
        match stream.read(&mut buf[got..]) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "torn frame payload",
                ))
            }
            Ok(n) => {
                got += n;
                last_progress = Instant::now();
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if last_progress.elapsed() > frame {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        "peer stalled mid-frame",
                    ));
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    String::from_utf8(buf)
        .map(Some)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "frame is not UTF-8"))
}

// ---------------------------------------------------------------------
// Base64 (binary checkpoint/segment bytes inside JSON frames)
// ---------------------------------------------------------------------

const B64: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

fn b64_val(c: u8) -> Option<u32> {
    match c {
        b'A'..=b'Z' => Some((c - b'A') as u32),
        b'a'..=b'z' => Some((c - b'a' + 26) as u32),
        b'0'..=b'9' => Some((c - b'0' + 52) as u32),
        b'+' => Some(62),
        b'/' => Some(63),
        _ => None,
    }
}

/// Standard base64 with padding.
pub fn b64_encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len().div_ceil(3) * 4);
    for chunk in bytes.chunks(3) {
        let n = u32::from_be_bytes([
            0,
            chunk[0],
            chunk.get(1).copied().unwrap_or(0),
            chunk.get(2).copied().unwrap_or(0),
        ]);
        out.push(B64[(n >> 18) as usize & 63] as char);
        out.push(B64[(n >> 12) as usize & 63] as char);
        out.push(if chunk.len() > 1 {
            B64[(n >> 6) as usize & 63] as char
        } else {
            '='
        });
        out.push(if chunk.len() > 2 {
            B64[n as usize & 63] as char
        } else {
            '='
        });
    }
    out
}

/// Inverse of [`b64_encode`]; rejects bad lengths, bytes outside the
/// alphabet, and misplaced padding.
pub fn b64_decode(text: &str) -> Result<Vec<u8>, String> {
    let b = text.as_bytes();
    if !b.len().is_multiple_of(4) {
        return Err("base64 length must be a multiple of 4".into());
    }
    let groups = b.len() / 4;
    let mut out = Vec::with_capacity(groups * 3);
    for (i, chunk) in b.chunks(4).enumerate() {
        let pad = chunk.iter().filter(|&&c| c == b'=').count();
        let misplaced = match pad {
            0 => false,
            1 => chunk[3] != b'=',
            2 => chunk[2] != b'=' || chunk[3] != b'=',
            _ => true,
        };
        if misplaced || (pad > 0 && i + 1 != groups) {
            return Err("bad base64 padding".into());
        }
        let mut n = 0u32;
        for &c in &chunk[..4 - pad] {
            n = (n << 6) | b64_val(c).ok_or("byte outside the base64 alphabet")?;
        }
        n <<= 6 * pad as u32;
        let bytes = n.to_be_bytes();
        out.extend_from_slice(&bytes[1..4 - pad]);
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// Log shipments on the wire
// ---------------------------------------------------------------------

/// Parses a `ship_log` response back into a [`LogShipment`].
pub fn parse_shipment(resp: &Json) -> Result<LogShipment, String> {
    if resp.get("ok").and_then(Json::as_bool) != Some(true) {
        return Err(format!("ship_log failed: {resp:?}"));
    }
    let field = |k: &str| {
        resp.get(k)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("shipment without {k}"))
    };
    let shards = field("shards")? as u32;
    let epoch = field("epoch")?;
    let repl_epoch = field("repl_epoch")?;
    let part_epoch = resp.get("part_epoch").and_then(Json::as_u64).unwrap_or(0);
    let t_base = field("t_base")?;
    let checkpoint = match resp.get("checkpoint") {
        None | Some(Json::Null) => None,
        Some(Json::Str(s)) => Some(b64_decode(s)?),
        Some(_) => return Err("checkpoint must be a base64 string".into()),
    };
    let Some(Json::Arr(items)) = resp.get("segments") else {
        return Err("shipment without segments".into());
    };
    let mut segments = Vec::with_capacity(items.len());
    for it in items {
        let shard = it
            .get("shard")
            .and_then(Json::as_u64)
            .ok_or("segment without shard")? as u32;
        let start = it
            .get("start")
            .and_then(Json::as_u64)
            .ok_or("segment without start")? as usize;
        let bytes = b64_decode(
            it.get("bytes")
                .and_then(Json::as_str)
                .ok_or("segment without bytes")?,
        )?;
        segments.push(ShippedSegment {
            shard,
            start,
            bytes,
        });
    }
    Ok(LogShipment {
        shards,
        epoch,
        repl_epoch,
        part_epoch,
        t_base,
        checkpoint,
        segments,
    })
}

/// One replica pull: asks `primary` for everything after `(epoch,
/// offsets)` via `ship_log` and returns the parsed shipment. Empty
/// offsets request a bootstrap. `repl_epoch` is the requester's
/// replication epoch — a primary that observes a newer epoch than its
/// own fences itself and refuses the pull.
pub fn fetch_shipment(
    primary: &mut NetClient,
    engine: Option<&str>,
    epoch: u64,
    offsets: &[usize],
    repl_epoch: u64,
) -> Result<LogShipment, String> {
    let engine_part = engine
        .map(|l| format!(",\"engine\":{l:?}"))
        .unwrap_or_default();
    let offs: Vec<String> = offsets.iter().map(|o| o.to_string()).collect();
    let body = format!(
        "{{\"op\":\"ship_log\",\"epoch\":{epoch},\"offsets\":[{}],\
         \"repl_epoch\":{repl_epoch}{engine_part}}}",
        offs.join(",")
    );
    let resp = primary
        .request(&body)
        .map_err(|e| format!("ship_log: {e}"))?;
    parse_shipment(&resp)
}

// ---------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------

/// A blocking protocol client. [`request`](NetClient::request) is the
/// lockstep path; [`send`](NetClient::send) + [`recv`](NetClient::recv)
/// pipeline several requests down the socket before reading responses.
pub struct NetClient {
    stream: TcpStream,
    faults: Option<Arc<NetFaultInjector>>,
}

impl NetClient {
    /// Connects to a serving front-end.
    pub fn connect(addr: &str) -> io::Result<NetClient> {
        Ok(NetClient {
            stream: TcpStream::connect(addr)?,
            faults: None,
        })
    }

    /// Installs a seeded fault injector beneath this client's frame
    /// writes (the client side of a chaos scenario).
    pub fn with_faults(mut self, inj: Arc<NetFaultInjector>) -> NetClient {
        self.faults = Some(inj);
        self
    }

    /// Bounds this client's socket reads and writes, so a dropped
    /// response (or a wedged peer) surfaces as a `TimedOut`/`WouldBlock`
    /// error instead of blocking forever.
    pub fn set_io_timeouts(
        &mut self,
        read: Option<Duration>,
        write: Option<Duration>,
    ) -> io::Result<()> {
        self.stream.set_read_timeout(read)?;
        self.stream.set_write_timeout(write)
    }

    /// Sends one request frame without waiting for the response.
    pub fn send(&mut self, body: &str) -> io::Result<()> {
        write_frame_faulted(&mut self.stream, body, self.faults.as_deref())
    }

    /// Reads and parses the next response frame.
    pub fn recv(&mut self) -> io::Result<Json> {
        let frame = read_frame(&mut self.stream)?
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "server closed"))?;
        Json::parse(&frame).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// Reads the next response frame as raw text (for callers matching
    /// `"id"` echoes themselves, e.g. to discard duplicated frames).
    pub fn recv_raw(&mut self) -> io::Result<String> {
        read_frame(&mut self.stream)?
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "server closed"))
    }

    /// Sends one request and waits for its response.
    pub fn request(&mut self, body: &str) -> io::Result<Json> {
        self.send(body)?;
        self.recv()
    }

    /// [`request`](NetClient::request) returning the raw response text
    /// (for callers that relay the JSON instead of inspecting it).
    pub fn request_raw(&mut self, body: &str) -> io::Result<String> {
        self.send(body)?;
        read_frame(&mut self.stream)?
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "server closed"))
    }
}

// ---------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------

/// Tunables of the serving front-end.
#[derive(Clone, Debug)]
pub struct NetServerConfig {
    /// Maximum queries in flight across all connections; admissions
    /// beyond this are rejected with backpressure.
    pub capacity: usize,
    /// Retry hint attached to overload rejections.
    pub retry_after_ms: u64,
    /// Shut the process-wide executor down (joining its workers) after
    /// the last connection drains, and report any worker that failed to
    /// join as leaked. The CLI turns this on; library tests leave the
    /// shared pool alive for the rest of the process.
    pub shutdown_pool: bool,
    /// Primary front-end address this server replicates. `Some` makes
    /// the server a read-only replica: `tick` is refused and the `sync`
    /// op pulls `ship_log` shipments from here — until a `promote` op
    /// turns the front-end into a writable primary.
    pub replica_of: Option<String>,
    /// Reap a connection that stays idle (no frame started) this long.
    pub idle_timeout: Duration,
    /// Tear down a connection whose peer stalls this long mid-frame.
    pub frame_timeout: Duration,
    /// Seeded network fault injector applied beneath every frame this
    /// server writes (`None` injects nothing).
    pub faults: Option<Arc<NetFaultInjector>>,
}

impl Default for NetServerConfig {
    fn default() -> Self {
        NetServerConfig {
            capacity: 32,
            retry_after_ms: 5,
            shutdown_pool: false,
            replica_of: None,
            idle_timeout: Duration::from_secs(120),
            frame_timeout: Duration::from_secs(30),
            faults: None,
        }
    }
}

/// Per-connection counters, reported by the `metrics` op.
#[derive(Clone, Debug, Default)]
pub struct ClientNetStats {
    /// Queries admitted and answered (including failed ones).
    pub queries: u64,
    /// Admitted queries whose latency exceeded the policy deadline.
    pub deadline_misses: u64,
    /// Queries rejected at admission.
    pub rejected: u64,
}

struct NetShared {
    inflight: AtomicUsize,
    served: AtomicU64,
    rejected: AtomicU64,
    failed: AtomicU64,
    deadline_misses: AtomicU64,
    /// Connections torn down by the read deadlines (idle or stalled
    /// mid-frame) — a dropped peer never pins a worker.
    reaped: AtomicU64,
    shutdown: AtomicBool,
    /// The primary this front-end replicates, if any. Mutable shared
    /// state (not just config) because a `promote` op clears it at
    /// runtime.
    replica_of: RwLock<Option<String>>,
    clients: Mutex<Vec<ClientNetStats>>,
    subs: Mutex<SubRouter>,
}

impl NetShared {
    fn is_replica(&self) -> bool {
        self.replica_of
            .read()
            .unwrap_or_else(|p| p.into_inner())
            .is_some()
    }

    fn primary_addr(&self) -> Option<String> {
        self.replica_of
            .read()
            .unwrap_or_else(|p| p.into_inner())
            .clone()
    }
}

/// Routes emitted deltas to the connections that own the
/// subscriptions, with one bounded buffer per connection.
#[derive(Default)]
struct SubRouter {
    /// `(engine label, sub id)` → connection id. Sub ids are allocated
    /// per engine table, so the label is part of the key.
    routes: HashMap<(String, u64), usize>,
    bufs: HashMap<usize, ConnDeltas>,
}

/// One connection's pending delta frames (pre-serialized JSON).
#[derive(Default)]
struct ConnDeltas {
    entries: Vec<String>,
    lost: bool,
}

/// Pushes drained driver deltas into the owning connections' buffers;
/// returns how many were routed (unrouted deltas — e.g. for
/// driver-internal subscription mixes — are dropped).
fn route_deltas(shared: &NetShared, pending: Vec<(String, AnswerDelta)>) -> usize {
    let mut router = shared.subs.lock().unwrap_or_else(|p| p.into_inner());
    let mut routed = 0usize;
    for (label, d) in pending {
        let Some(&conn) = router.routes.get(&(label.clone(), d.id.0)) else {
            continue;
        };
        let buf = router.bufs.entry(conn).or_default();
        if buf.lost {
            continue;
        }
        if buf.entries.len() >= SUB_BUF_CAP {
            // A slow poller: keeping a torn prefix would let the client
            // replay a wrong answer, so drop everything and flag it.
            buf.entries.clear();
            buf.lost = true;
            continue;
        }
        buf.entries.push(format!(
            "{{\"engine\":{label:?},\"delta\":{}}}",
            d.to_json()
        ));
        routed += 1;
    }
    routed
}

/// The serving front-end: owns the listener and the driver.
pub struct NetServer {
    listener: TcpListener,
    driver: Arc<RwLock<ServeDriver>>,
    policy: FaultPolicy,
    cfg: NetServerConfig,
    shared: Arc<NetShared>,
}

impl NetServer {
    /// Binds to `addr` (use port 0 for an ephemeral port) around a
    /// bootstrapped driver.
    pub fn bind(
        addr: &str,
        mut driver: ServeDriver,
        policy: FaultPolicy,
        cfg: NetServerConfig,
    ) -> io::Result<NetServer> {
        driver.enable_delta_feed();
        Ok(NetServer {
            listener: TcpListener::bind(addr)?,
            driver: Arc::new(RwLock::new(driver)),
            policy,
            shared: Arc::new(NetShared {
                inflight: AtomicUsize::new(0),
                served: AtomicU64::new(0),
                rejected: AtomicU64::new(0),
                failed: AtomicU64::new(0),
                deadline_misses: AtomicU64::new(0),
                reaped: AtomicU64::new(0),
                shutdown: AtomicBool::new(false),
                replica_of: RwLock::new(cfg.replica_of.clone()),
                clients: Mutex::new(Vec::new()),
                subs: Mutex::new(SubRouter::default()),
            }),
            cfg,
        })
    }

    /// The bound address (read the ephemeral port from here).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Accepts and serves connections until a `shutdown` op arrives,
    /// then drains every connection and returns the final summary JSON
    /// (`served`, `rejected_admissions`, `failed_queries`,
    /// `leaked_workers`, …).
    pub fn serve(self) -> String {
        let mut handles = Vec::new();
        let mut next_id = 0usize;
        loop {
            let (stream, _) = match self.listener.accept() {
                Ok(conn) => conn,
                Err(_) => break,
            };
            if self.shared.shutdown.load(Ordering::SeqCst) {
                // The wake-up connection (or a late client) after
                // shutdown: drop it and stop accepting.
                break;
            }
            let id = next_id;
            next_id += 1;
            self.shared
                .clients
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .push(ClientNetStats::default());
            let driver = Arc::clone(&self.driver);
            let shared = Arc::clone(&self.shared);
            let policy = self.policy;
            let cfg = self.cfg.clone();
            let local = self.listener.local_addr();
            handles.push(
                std::thread::Builder::new()
                    .name(format!("pdr-net-{id}"))
                    .spawn(move || handle_conn(stream, id, driver, shared, policy, cfg, local))
                    .expect("spawning a connection handler"),
            );
        }
        let spawned = handles.len();
        let joined = handles
            .into_iter()
            .map(|h| h.join())
            .filter(Result::is_ok)
            .count();
        let pool = Executor::global();
        let pool_workers = pool.workers();
        let pool_joined = if self.cfg.shutdown_pool {
            pool.shutdown()
        } else {
            pool_workers
        };
        let leaked = (spawned - joined) + pool_workers.saturating_sub(pool_joined);
        let netfaults = self
            .cfg
            .faults
            .as_ref()
            .map(|f| f.stats().to_json())
            .unwrap_or_else(|| "null".into());
        format!(
            "{{\"shutdown\":true,\"served\":{},\"rejected_admissions\":{},\"failed_queries\":{},\
             \"deadline_misses\":{},\"connections\":{},\"reaped_connections\":{},\
             \"netfaults\":{},\"pool_workers\":{},\"leaked_workers\":{}}}",
            self.shared.served.load(Ordering::SeqCst),
            self.shared.rejected.load(Ordering::SeqCst),
            self.shared.failed.load(Ordering::SeqCst),
            self.shared.deadline_misses.load(Ordering::SeqCst),
            spawned,
            self.shared.reaped.load(Ordering::SeqCst),
            netfaults,
            pool_workers,
            leaked
        )
    }
}

/// Serves one connection until EOF, error, or shutdown, then tears
/// down whatever subscriptions it owned.
fn handle_conn(
    mut stream: TcpStream,
    id: usize,
    driver: Arc<RwLock<ServeDriver>>,
    shared: Arc<NetShared>,
    policy: FaultPolicy,
    cfg: NetServerConfig,
    local: io::Result<SocketAddr>,
) {
    conn_loop(&mut stream, id, &driver, &shared, &policy, &cfg, &local);
    drop_conn_subs(id, &driver, &shared);
}

fn conn_loop(
    stream: &mut TcpStream,
    id: usize,
    driver: &RwLock<ServeDriver>,
    shared: &NetShared,
    policy: &FaultPolicy,
    cfg: &NetServerConfig,
    local: &io::Result<SocketAddr>,
) {
    // Per-connection deterministic jitter stream for fault backoff.
    let mut rng = (policy.seed ^ (id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)) | 1;
    // Bounded reads: the 50 ms poll quantum lets the loop observe both
    // the idle/frame deadlines and the shared shutdown flag without a
    // dedicated watchdog thread.
    if stream.set_read_timeout(Some(READ_POLL)).is_err()
        || stream.set_write_timeout(Some(cfg.frame_timeout)).is_err()
    {
        return;
    }
    loop {
        let frame = match read_frame_deadline(
            stream,
            cfg.idle_timeout,
            cfg.frame_timeout,
            Some(&shared.shutdown),
        ) {
            Ok(Some(f)) => f,
            Ok(None) => return,
            Err(e) => {
                if e.kind() == io::ErrorKind::TimedOut {
                    shared.reaped.fetch_add(1, Ordering::SeqCst);
                }
                return;
            }
        };
        let (resp, shutdown) = dispatch(&frame, id, driver, shared, policy, cfg, &mut rng);
        if write_frame_faulted(stream, &resp, cfg.faults.as_deref()).is_err() {
            return;
        }
        if shutdown {
            shared.shutdown.store(true, Ordering::SeqCst);
            // Wake the acceptor so it observes the flag.
            if let Ok(addr) = local {
                let _ = TcpStream::connect(addr);
            }
            return;
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
    }
}

fn err_json(msg: &str) -> String {
    format!("{{\"ok\":false,\"error\":\"{msg}\"}}")
}

/// Echoes a request's numeric `id` into a response object, so clients
/// surviving duplicated/delayed frames can match answers to requests.
fn attach_id(resp: String, id: Option<u64>) -> String {
    match id {
        Some(n) if resp.ends_with('}') => {
            format!("{},\"id\":{}}}", &resp[..resp.len() - 1], n)
        }
        _ => resp,
    }
}

/// Handles one request frame; the bool asks the caller to begin
/// shutdown after writing the response.
fn dispatch(
    frame: &str,
    id: usize,
    driver: &RwLock<ServeDriver>,
    shared: &NetShared,
    policy: &FaultPolicy,
    cfg: &NetServerConfig,
    rng: &mut u64,
) -> (String, bool) {
    let req = match Json::parse(frame) {
        Ok(v) => v,
        Err(_) => return (err_json("bad json"), false),
    };
    let req_id = req.get("id").and_then(Json::as_u64);
    let (resp, shutdown) = dispatch_op(&req, id, driver, shared, policy, cfg, rng);
    (attach_id(resp, req_id), shutdown)
}

#[allow(clippy::too_many_arguments)]
fn dispatch_op(
    req: &Json,
    id: usize,
    driver: &RwLock<ServeDriver>,
    shared: &NetShared,
    policy: &FaultPolicy,
    cfg: &NetServerConfig,
    rng: &mut u64,
) -> (String, bool) {
    let op = req.get("op").and_then(Json::as_str).unwrap_or("");
    match op {
        "query" | "check" => (
            serve_query(req, op == "check", id, driver, shared, policy, cfg, rng),
            false,
        ),
        "tick" => {
            if shared.is_replica() {
                return (err_json("replica is read-only; use sync"), false);
            }
            {
                let d = driver.read().unwrap_or_else(|p| p.into_inner());
                let fenced = d.labels().iter().any(|l| {
                    d.engine(l)
                        .and_then(|e| e.as_sharded())
                        .is_some_and(|p| p.is_fenced())
                });
                if fenced {
                    return (
                        err_json("fenced: a newer primary epoch exists; writes refused"),
                        false,
                    );
                }
            }
            let (updates, t_now, pending) = {
                let mut d = driver.write().unwrap_or_else(|p| p.into_inner());
                let updates = d.tick();
                (updates, d.simulator().t_now(), d.drain_pending_deltas())
            };
            let routed = route_deltas(shared, pending);
            (
                format!(
                    "{{\"ok\":true,\"updates\":{updates},\"t_now\":{t_now},\"deltas\":{routed}}}"
                ),
                false,
            )
        }
        "ship_log" => (serve_ship_log(req, driver), false),
        "sync" => (serve_sync(req, driver, shared, policy, rng), false),
        "promote" => (serve_promote(req, driver, shared), false),
        "subscribe" => (serve_subscribe(req, id, driver, shared), false),
        "unsubscribe" => (serve_unsubscribe(req, id, driver, shared), false),
        "poll_deltas" => {
            let mut router = shared.subs.lock().unwrap_or_else(|p| p.into_inner());
            let buf = router.bufs.entry(id).or_default();
            let lost = buf.lost;
            buf.lost = false;
            let entries = std::mem::take(&mut buf.entries);
            (
                format!(
                    "{{\"ok\":true,\"lost\":{lost},\"deltas\":[{}]}}",
                    entries.join(",")
                ),
                false,
            )
        }
        "rebalance" => (serve_rebalance(req, driver), false),
        "metrics" => (metrics_json(driver, shared, cfg), false),
        "shutdown" => ("{\"ok\":true,\"draining\":true}".to_string(), true),
        _ => (err_json("unknown op"), false),
    }
}

/// Handles a `subscribe` op: registers a standing query on one engine
/// and routes its delta stream to this connection.
fn serve_subscribe(
    req: &Json,
    conn: usize,
    driver: &RwLock<ServeDriver>,
    shared: &NetShared,
) -> String {
    let (Some(rho), Some(l), Some(q_t)) = (
        req.get("rho").and_then(Json::as_f64),
        req.get("l").and_then(Json::as_f64),
        req.get("q_t").and_then(Json::as_u64),
    ) else {
        return err_json("subscribe needs rho, l, q_t");
    };
    let region = match req.get("region") {
        None | Some(Json::Null) => None,
        Some(Json::Arr(c)) if c.len() == 4 => {
            let v: Vec<f64> = c.iter().filter_map(Json::as_f64).collect();
            if v.len() == 4 && v[0] < v[2] && v[1] < v[3] {
                Some(Rect::new(v[0], v[1], v[2], v[3]))
            } else {
                return err_json("region must be a finite [x_lo,y_lo,x_hi,y_hi]");
            }
        }
        Some(_) => return err_json("region must be a finite [x_lo,y_lo,x_hi,y_hi]"),
    };
    let mut d = driver.write().unwrap_or_else(|p| p.into_inner());
    let label = match req.get("engine").and_then(Json::as_str) {
        Some(l) => l.to_string(),
        None => match d.labels().first() {
            Some(l) => l.clone(),
            None => return err_json("no engines registered"),
        },
    };
    if d.engine(&label).is_none() {
        return err_json("no such engine");
    }
    match d.subscribe_on(&label, rho, l, region, QtPolicy::NowPlus(q_t)) {
        Ok(sid) => {
            {
                let mut router = shared.subs.lock().unwrap_or_else(|p| p.into_inner());
                router.routes.insert((label.clone(), sid.0), conn);
                router.bufs.entry(conn).or_default();
            }
            // Route the initial snapshot (and whatever else maintenance
            // just committed) so the first poll already replays it.
            let pending = d.drain_pending_deltas();
            drop(d);
            route_deltas(shared, pending);
            format!("{{\"ok\":true,\"sub\":{},\"engine\":{label:?}}}", sid.0)
        }
        Err(e) => format!(
            "{{\"ok\":false,\"error\":\"subscribe\",\"detail\":{:?}}}",
            format!("{e}")
        ),
    }
}

/// Handles an `unsubscribe` op.
fn serve_unsubscribe(
    req: &Json,
    conn: usize,
    driver: &RwLock<ServeDriver>,
    shared: &NetShared,
) -> String {
    let Some(sub) = req.get("sub").and_then(Json::as_u64) else {
        return err_json("unsubscribe needs sub");
    };
    let mut d = driver.write().unwrap_or_else(|p| p.into_inner());
    let label = match req.get("engine").and_then(Json::as_str) {
        Some(l) => l.to_string(),
        None => match d.labels().first() {
            Some(l) => l.clone(),
            None => return err_json("no engines registered"),
        },
    };
    let owned = {
        let router = shared.subs.lock().unwrap_or_else(|p| p.into_inner());
        router.routes.get(&(label.clone(), sub)) == Some(&conn)
    };
    if !owned {
        return "{\"ok\":true,\"removed\":false}".to_string();
    }
    let removed = d.unsubscribe_on(&label, SubId(sub));
    drop(d);
    let mut router = shared.subs.lock().unwrap_or_else(|p| p.into_inner());
    router.routes.remove(&(label, sub));
    format!("{{\"ok\":true,\"removed\":{removed}}}")
}

/// Resolves the `engine` request field (or the first registered
/// engine) to a label.
fn resolve_label(req: &Json, d: &ServeDriver) -> Result<String, String> {
    match req.get("engine").and_then(Json::as_str) {
        Some(l) => Ok(l.to_string()),
        None => d
            .labels()
            .first()
            .cloned()
            .ok_or_else(|| err_json("no engines registered")),
    }
}

/// Handles a `ship_log` op on a primary: cuts a checkpoint + WAL-delta
/// shipment from the sharded plane behind an engine for a log-shipping
/// replica. Shipments are self-describing — a replica whose `(epoch,
/// offsets)` no longer match gets a bootstrap, not an error.
fn serve_ship_log(req: &Json, driver: &RwLock<ServeDriver>) -> String {
    let epoch = req.get("epoch").and_then(Json::as_u64).unwrap_or(0);
    // The requester's replication epoch: a follower of a *newer*
    // primary fences this plane permanently (split-brain guard).
    let req_repl = req.get("repl_epoch").and_then(Json::as_u64).unwrap_or(0);
    let offsets: Vec<usize> = match req.get("offsets") {
        None | Some(Json::Null) => Vec::new(),
        Some(Json::Arr(items)) => {
            let v: Vec<usize> = items
                .iter()
                .filter_map(Json::as_u64)
                .map(|x| x as usize)
                .collect();
            if v.len() != items.len() {
                return err_json("offsets must be non-negative integers");
            }
            v
        }
        Some(_) => return err_json("offsets must be an array"),
    };
    let d = driver.read().unwrap_or_else(|p| p.into_inner());
    let label = match resolve_label(req, &d) {
        Ok(l) => l,
        Err(resp) => return resp,
    };
    let Some(engine) = d.engine(&label) else {
        return err_json("no such engine");
    };
    let Some(plane) = engine.as_sharded() else {
        return err_json("engine is not a sharded primary");
    };
    if plane.fence_if_stale(req_repl) {
        return format!(
            "{{\"ok\":false,\"error\":\"fenced\",\"stale\":{},\"current\":{}}}",
            plane.repl_epoch(),
            req_repl.max(plane.repl_epoch())
        );
    }
    let ship = plane.wal_since(epoch, &offsets);
    let checkpoint = ship
        .checkpoint
        .as_ref()
        .map(|cp| format!("\"{}\"", b64_encode(cp)))
        .unwrap_or_else(|| "null".into());
    let segments: Vec<String> = ship
        .segments
        .iter()
        .map(|s| {
            format!(
                "{{\"shard\":{},\"start\":{},\"bytes\":\"{}\"}}",
                s.shard,
                s.start,
                b64_encode(&s.bytes)
            )
        })
        .collect();
    format!(
        "{{\"ok\":true,\"engine\":{label:?},\"shards\":{},\"epoch\":{},\"repl_epoch\":{},\
         \"part_epoch\":{},\"t_base\":{},\"checkpoint\":{},\"segments\":[{}]}}",
        ship.shards,
        ship.epoch,
        ship.repl_epoch,
        ship.part_epoch,
        ship.t_base,
        checkpoint,
        segments.join(",")
    )
}

/// Handles a `sync` op on a replica front-end: pulls one shipment from
/// the configured primary and ingests it. The network round trip runs
/// without holding any driver lock; only the final ingest takes the
/// write lock.
///
/// Transient network errors retry in place with the policy's seeded
/// backoff; an ingest `Mismatch` (gap past the watermark — the primary
/// restarted or GC'd the segment) forces one full re-bootstrap fetch.
/// A `Fenced` refusal is terminal and answered as a typed error.
fn serve_sync(
    req: &Json,
    driver: &RwLock<ServeDriver>,
    shared: &NetShared,
    policy: &FaultPolicy,
    rng: &mut u64,
) -> String {
    let Some(primary) = shared.primary_addr() else {
        return err_json("not a replica front-end");
    };
    let (label, epoch, offsets, my_repl) = {
        let d = driver.read().unwrap_or_else(|p| p.into_inner());
        let label = match resolve_label(req, &d) {
            Ok(l) => l,
            Err(resp) => return resp,
        };
        let Some(rep) = d.engine(&label).and_then(|e| e.as_replica()) else {
            return err_json("engine is not a replica");
        };
        (
            label,
            rep.applied_epoch(),
            rep.applied_offsets().to_vec(),
            rep.repl_epoch(),
        )
    };
    let mut attempts: u32 = 0;
    let mut force_bootstrap = false;
    loop {
        attempts += 1;
        let fetch = NetClient::connect(&primary)
            .map_err(|e| format!("connecting {primary}: {e}"))
            .and_then(|mut c| {
                if force_bootstrap {
                    fetch_shipment(&mut c, Some(&label), 0, &[], my_repl)
                } else {
                    fetch_shipment(&mut c, Some(&label), epoch, &offsets, my_repl)
                }
            });
        let ship = match fetch {
            Ok(s) => s,
            Err(e) => {
                if e.contains("\"error\":\"fenced\"") || e.contains("fenced:") {
                    return format!(
                        "{{\"ok\":false,\"error\":\"fenced\",\"detail\":{e:?},\
                         \"attempts\":{attempts}}}"
                    );
                }
                if attempts >= policy.max_attempts {
                    return format!(
                        "{{\"ok\":false,\"error\":\"sync\",\"detail\":{e:?},\
                         \"attempts\":{attempts}}}"
                    );
                }
                backoff_us(policy, attempts, rng);
                continue;
            }
        };
        let mut d = driver.write().unwrap_or_else(|p| p.into_inner());
        let Some(rep) = d.engine_mut(&label).and_then(|e| e.as_replica_mut()) else {
            return err_json("engine is not a replica");
        };
        match rep.ingest(&ship) {
            Ok(r) => {
                return format!(
                    "{{\"ok\":true,\"bootstrapped\":{},\"records\":{},\"updates\":{},\
                     \"duplicates\":{},\"lag\":{},\"applied_t\":{},\"attempts\":{}}}",
                    r.bootstrapped,
                    r.records,
                    r.updates,
                    r.duplicates,
                    r.lag,
                    rep.applied_t(),
                    attempts
                )
            }
            Err(RecoverError::Fenced { stale, current }) => {
                return format!(
                    "{{\"ok\":false,\"error\":\"fenced\",\"stale\":{stale},\
                     \"current\":{current},\"attempts\":{attempts}}}"
                )
            }
            Err(e) => {
                let retriable = matches!(e, RecoverError::Mismatch(_)) && !force_bootstrap;
                if retriable && attempts < policy.max_attempts {
                    force_bootstrap = true;
                    drop(d);
                    backoff_us(policy, attempts, rng);
                    continue;
                }
                return format!(
                    "{{\"ok\":false,\"error\":\"ingest\",\"detail\":{:?},\"attempts\":{}}}",
                    format!("{e}"),
                    attempts
                );
            }
        }
    }
}

/// Handles a `promote` op: turns a replica front-end into a writable
/// primary. Seals the applied state, bumps the replication epoch past
/// the replicated lineage, and stops the front-end pulling from its
/// old primary. Idempotent — promoting a promoted node re-answers its
/// epoch.
fn serve_promote(req: &Json, driver: &RwLock<ServeDriver>, shared: &NetShared) -> String {
    let mut d = driver.write().unwrap_or_else(|p| p.into_inner());
    let label = match resolve_label(req, &d) {
        Ok(l) => l,
        Err(resp) => return resp,
    };
    match d.promote_replica(&label) {
        Ok((repl_epoch, applied_t)) => {
            drop(d);
            let mut primary = shared.replica_of.write().unwrap_or_else(|p| p.into_inner());
            *primary = None;
            format!(
                "{{\"ok\":true,\"promoted\":true,\"repl_epoch\":{repl_epoch},\
                 \"applied_t\":{applied_t}}}"
            )
        }
        Err(e) => format!(
            "{{\"ok\":false,\"error\":\"promote\",\"detail\":{:?}}}",
            format!("{e}")
        ),
    }
}

/// Connection teardown: unregisters every subscription the connection
/// owns and frees its delta buffer.
fn drop_conn_subs(conn: usize, driver: &RwLock<ServeDriver>, shared: &NetShared) {
    let owned: Vec<(String, u64)> = {
        let mut router = shared.subs.lock().unwrap_or_else(|p| p.into_inner());
        router.bufs.remove(&conn);
        let owned: Vec<(String, u64)> = router
            .routes
            .iter()
            .filter(|(_, c)| **c == conn)
            .map(|(k, _)| k.clone())
            .collect();
        for key in &owned {
            router.routes.remove(key);
        }
        owned
    };
    if owned.is_empty() {
        return;
    }
    let mut d = driver.write().unwrap_or_else(|p| p.into_inner());
    for (label, sub) in owned {
        let _ = d.unsubscribe_on(&label, SubId(sub));
    }
}

/// Admission + execution of a `query`/`check` op.
#[allow(clippy::too_many_arguments)]
fn serve_query(
    req: &Json,
    check: bool,
    id: usize,
    driver: &RwLock<ServeDriver>,
    shared: &NetShared,
    policy: &FaultPolicy,
    cfg: &NetServerConfig,
    rng: &mut u64,
) -> String {
    let (Some(rho), Some(l), Some(q_t)) = (
        req.get("rho").and_then(Json::as_f64),
        req.get("l").and_then(Json::as_f64),
        req.get("q_t").and_then(Json::as_u64),
    ) else {
        return err_json("query needs rho, l, q_t");
    };
    // Bounded admission: reject rather than queue without limit.
    if shared.inflight.fetch_add(1, Ordering::SeqCst) >= cfg.capacity {
        shared.inflight.fetch_sub(1, Ordering::SeqCst);
        shared.rejected.fetch_add(1, Ordering::SeqCst);
        with_client(shared, id, |c| c.rejected += 1);
        return format!(
            "{{\"ok\":false,\"error\":\"overloaded\",\"retry_after_ms\":{}}}",
            cfg.retry_after_ms
        );
    }
    let start = Instant::now();
    let (outcome, t_abs, latency) = {
        let d = driver.read().unwrap_or_else(|p| p.into_inner());
        let engine = match req.get("engine").and_then(Json::as_str) {
            Some(label) => d.engine(label),
            None => d.labels().first().and_then(|l| d.engine(l)),
        };
        // `q_t` is an offset into the prediction window, resolved
        // against the serving clock under the same read lock the query
        // runs under — a concurrent tick cannot strand it mid-request.
        // On a primary that clock is the simulator's; on a replica it
        // is the applied protocol time of the replicated stream (the
        // local simulator never ticks), so at equal applied offsets the
        // same `q_t` hits the same absolute timestamp on both.
        let t_abs = match engine.and_then(|e| e.as_replica()) {
            Some(rep) => rep.applied_t() + q_t,
            None => d.simulator().t_now() + q_t,
        };
        let q = PdrQuery::new(rho, l, t_abs);
        let answer = match engine {
            None => Err(err_json("no such engine")),
            Some(engine) => {
                // Transient faults retry in place under the read lock —
                // the query path is `&self`, so no recovery is needed
                // for a retry to be meaningful. A panic (e.g. an offset
                // outside the engine's horizon) is answered as an
                // error, not a dead connection; the read path mutates
                // no engine state that could be observed broken.
                let mut attempt = 1;
                loop {
                    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        engine.try_query(&q)
                    }));
                    match r {
                        Ok(Ok(a)) => break Ok((a, attempt)),
                        Ok(Err(_)) if attempt < policy.max_attempts => {
                            backoff_us(policy, attempt, rng);
                            attempt += 1;
                        }
                        Ok(Err(e)) => {
                            break Err(format!(
                                "{{\"ok\":false,\"error\":\"storage\",\"detail\":{:?}}}",
                                format!("{e:?}")
                            ))
                        }
                        Err(_) => break Err(err_json("query panicked")),
                    }
                }
            }
        };
        // The deadline covers admission + the engine answer; the
        // `check` op's brute-force verification sweep runs after the
        // clock stops, so it cannot poison deadline accounting.
        let latency = start.elapsed();
        let outcome = answer.map(|(a, attempts)| {
            let sym = check.then(|| d.ground_truth(&q).symmetric_difference_area(&a.regions));
            (a, sym, attempts)
        });
        (outcome, t_abs, latency)
    };
    shared.inflight.fetch_sub(1, Ordering::SeqCst);
    let miss = policy.deadline.is_some_and(|dl| latency > dl);
    shared.served.fetch_add(1, Ordering::SeqCst);
    if miss {
        shared.deadline_misses.fetch_add(1, Ordering::SeqCst);
    }
    with_client(shared, id, |c| {
        c.queries += 1;
        if miss {
            c.deadline_misses += 1;
        }
    });
    match outcome {
        Ok((a, sym, attempts)) => {
            let check_part = sym
                .map(|s| format!(",\"exact\":{},\"sym_diff\":{}", s < 1e-9, fmt_f64(s)))
                .unwrap_or_default();
            // With `"rects":true` the canonical rect list rides along
            // (shortest-roundtrip floats, so client-side replay checks
            // compare bit-identical coordinates).
            let rects_part = if req.get("rects").and_then(Json::as_bool) == Some(true) {
                let items: Vec<String> = a
                    .regions
                    .rects()
                    .iter()
                    .map(|r| {
                        format!(
                            "[{},{},{},{}]",
                            fmt_f64(r.x_lo),
                            fmt_f64(r.y_lo),
                            fmt_f64(r.x_hi),
                            fmt_f64(r.y_hi)
                        )
                    })
                    .collect();
                format!(",\"rects\":[{}]", items.join(","))
            } else {
                String::new()
            };
            format!(
                "{{\"ok\":true,\"regions\":{},\"area\":{},\"t\":{},\"micros\":{},\
                 \"attempts\":{},\"deadline_miss\":{}{}{}}}",
                a.regions.len(),
                fmt_f64(a.regions.area()),
                t_abs,
                latency.as_micros(),
                attempts,
                miss,
                check_part,
                rects_part
            )
        }
        Err(resp) => {
            shared.failed.fetch_add(1, Ordering::SeqCst);
            resp
        }
    }
}

/// Seeded jittered exponential backoff (mirrors the serve loop's).
fn backoff_us(policy: &FaultPolicy, attempt: u32, rng: &mut u64) {
    let base = policy
        .backoff_base_us
        .saturating_mul(1u64 << attempt.min(16));
    let delay = base.min(policy.backoff_cap_us.max(policy.backoff_base_us));
    if delay == 0 {
        return;
    }
    *rng ^= *rng << 13;
    *rng ^= *rng >> 7;
    *rng ^= *rng << 17;
    let x = rng.wrapping_mul(0x2545_F491_4F6C_DD1D);
    std::thread::sleep(Duration::from_micros(delay / 2 + x % (delay / 2 + 1)));
}

fn with_client(shared: &NetShared, id: usize, f: impl FnOnce(&mut ClientNetStats)) {
    let mut clients = shared.clients.lock().unwrap_or_else(|p| p.into_inner());
    if let Some(c) = clients.get_mut(id) {
        f(c);
    }
}

/// JSON-safe float formatting (finite shortest-roundtrip).
fn fmt_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

/// Handles a `rebalance` op: forces one topology change on a sharded
/// primary — `"action":"split"` splits the hottest splittable leaf,
/// `"action":"merge"` merges the coldest complete sibling group.
/// Exists so tests and smoke scripts can exercise migration without
/// waiting for the automatic policy; limits still apply.
fn serve_rebalance(req: &Json, driver: &RwLock<ServeDriver>) -> String {
    let action = req.get("action").and_then(Json::as_str).unwrap_or("split");
    let mut d = driver.write().unwrap_or_else(|p| p.into_inner());
    let label = match resolve_label(req, &d) {
        Ok(l) => l,
        Err(resp) => return resp,
    };
    let Some(plane) = d.engine_mut(&label).and_then(|e| e.as_sharded_mut()) else {
        return err_json("engine is not a sharded primary");
    };
    let result = match action {
        "split" => plane.rebalance_split(),
        "merge" => plane.rebalance_merge(),
        _ => return err_json("action must be \"split\" or \"merge\""),
    };
    match result {
        Ok(r) => format!(
            "{{\"ok\":true,\"action\":{:?},\"retired\":{:?},\"created\":{:?},\
             \"records_replayed\":{},\"leaves\":{},\"part_epoch\":{}}}",
            r.action, r.retired, r.created, r.records_replayed, r.leaves, r.part_epoch
        ),
        Err(e) => format!("{{\"ok\":false,\"error\":\"{e}\"}}"),
    }
}

fn metrics_json(driver: &RwLock<ServeDriver>, shared: &NetShared, cfg: &NetServerConfig) -> String {
    let pool = Executor::global();
    let clients = {
        let clients = shared.clients.lock().unwrap_or_else(|p| p.into_inner());
        clients
            .iter()
            .enumerate()
            .map(|(i, c)| {
                format!(
                    "{{\"client\":{},\"queries\":{},\"deadline_misses\":{},\"rejected\":{}}}",
                    i, c.queries, c.deadline_misses, c.rejected
                )
            })
            .collect::<Vec<_>>()
            .join(",")
    };
    let (t_now, objects, replica, repl, partition) = {
        let d = driver.read().unwrap_or_else(|p| p.into_inner());
        let default_engine = d.labels().first().and_then(|l| d.engine(l));
        // `replica_lag` and friends ride along whenever the default
        // engine is a log-shipping replica.
        let replica = d
            .labels()
            .first()
            .and_then(|l| d.engine(l))
            .and_then(|e| e.as_replica())
            .map(|r| {
                format!(
                    "{{\"replica_lag\":{},\"applied_t\":{},\"epoch\":{},\"shipments\":{},\
                     \"bootstraps\":{},\"duplicates\":{},\"fenced_shipments\":{}}}",
                    r.lag(),
                    r.applied_t(),
                    r.applied_epoch(),
                    r.shipments(),
                    r.bootstraps(),
                    r.duplicates(),
                    r.fenced_shipments()
                )
            });
        // Replication-epoch state of the writable plane (if any):
        // fencing counters prove a deposed primary dropped its writes.
        let repl = default_engine.and_then(|e| e.as_sharded()).map(|p| {
            format!(
                "{{\"repl_epoch\":{},\"fenced\":{},\"fenced_writes\":{}}}",
                p.repl_epoch(),
                p.is_fenced(),
                p.fenced_writes()
            )
        });
        // The partition tree (leaf tiles, depths, owned/ghost loads)
        // of whichever sharded plane backs the default engine —
        // primary or the plane inside a replica.
        let partition = default_engine
            .and_then(|e| e.as_sharded().or_else(|| e.as_replica().map(|r| r.plane())))
            .map(|p| p.partition_json());
        (
            d.simulator().t_now(),
            d.simulator().population().len(),
            replica,
            repl,
            partition,
        )
    };
    let wire_subs = {
        let router = shared.subs.lock().unwrap_or_else(|p| p.into_inner());
        router.routes.len()
    };
    let netfaults = cfg
        .faults
        .as_ref()
        .map(|f| f.stats().to_json())
        .unwrap_or_else(|| "null".into());
    let role = if shared.is_replica() {
        "replica"
    } else {
        "primary"
    };
    format!(
        "{{\"ok\":true,\"metrics\":{{\"t_now\":{},\"objects\":{},\"role\":{:?},\
         \"pool_workers\":{},\
         \"queue_depth\":{},\"inflight\":{},\"served\":{},\"rejected_admissions\":{},\
         \"failed_queries\":{},\"deadline_misses\":{},\"reaped_connections\":{},\
         \"wire_subs\":{},\"replica\":{},\"repl\":{},\"partition\":{},\"netfaults\":{},\
         \"clients\":[{}],\"exec\":{}}}}}",
        t_now,
        objects,
        role,
        pool.workers(),
        pool.queue_depth(),
        shared.inflight.load(Ordering::SeqCst),
        shared.served.load(Ordering::SeqCst),
        shared.rejected.load(Ordering::SeqCst),
        shared.failed.load(Ordering::SeqCst),
        shared.deadline_misses.load(Ordering::SeqCst),
        shared.reaped.load(Ordering::SeqCst),
        wire_subs,
        replica.unwrap_or_else(|| "null".into()),
        repl.unwrap_or_else(|| "null".into()),
        partition.unwrap_or_else(|| "null".into()),
        netfaults,
        clients,
        pool.obs_report().to_json()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NetworkConfig, RoadNetwork, TrafficSimulator};
    use pdr_core::{EngineSpec, FrConfig};
    use pdr_mobject::TimeHorizon;
    use pdr_storage::CostModel;

    fn driver(n: usize) -> ServeDriver {
        let net = RoadNetwork::generate(
            &NetworkConfig {
                extent: 200.0,
                nodes: 150,
                hotspots: 3,
                spread: 0.05,
                background: 0.2,
                degree: 3,
            },
            13,
        );
        let sim = TrafficSimulator::new(net, n, 17, 4, 0);
        let fr = FrConfig {
            extent: 200.0,
            m: 40,
            horizon: TimeHorizon::new(4, 4),
            buffer_pages: 64,
            threads: 1,
        };
        let mut d = ServeDriver::new(sim, CostModel::PAPER_DEFAULT)
            .with_engine("fr", EngineSpec::Fr(fr).build(0));
        d.bootstrap();
        d
    }

    #[test]
    fn base64_round_trips_and_rejects_garbage() {
        let mut lcg = 0x1234_5678_9abc_def0u64;
        for len in 0..=67usize {
            let bytes: Vec<u8> = (0..len)
                .map(|_| {
                    lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1);
                    (lcg >> 56) as u8
                })
                .collect();
            let enc = b64_encode(&bytes);
            assert_eq!(enc.len() % 4, 0);
            assert_eq!(b64_decode(&enc).unwrap(), bytes, "len {len}");
        }
        assert_eq!(
            b64_encode(b"any carnal pleasure."),
            "YW55IGNhcm5hbCBwbGVhc3VyZS4="
        );
        assert!(b64_decode("abc").is_err(), "length not a multiple of 4");
        assert!(b64_decode("ab!=").is_err(), "byte outside alphabet");
        assert!(b64_decode("a=bc").is_err(), "padding in the middle");
        assert!(b64_decode("====").is_err(), "all padding");
        assert!(b64_decode("Ab==Cdef").is_err(), "padded group not last");
    }

    #[test]
    fn json_parser_round_trips_protocol_documents() {
        let doc = r#"{"op":"query","rho":0.015,"l":20.0,"q_t":3,"engine":"fr","tags":[1,true,null,"a\nb"]}"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(v.get("op").and_then(Json::as_str), Some("query"));
        assert_eq!(v.get("rho").and_then(Json::as_f64), Some(0.015));
        assert_eq!(v.get("q_t").and_then(Json::as_u64), Some(3));
        let Json::Arr(tags) = v.get("tags").unwrap() else {
            panic!("tags must parse as an array");
        };
        assert_eq!(tags[1], Json::Bool(true));
        assert_eq!(tags[3], Json::Str("a\nb".into()));
        assert!(Json::parse("{\"x\":1} trailing").is_err());
        assert!(Json::parse("{\"x\":}").is_err());
        assert!(Json::parse("1e999").is_err(), "non-finite numbers rejected");
    }

    #[test]
    fn frames_round_trip_and_oversize_is_rejected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "{\"op\":\"tick\"}").unwrap();
        write_frame(&mut buf, "{}").unwrap();
        let mut r = &buf[..];
        assert_eq!(
            read_frame(&mut r).unwrap().as_deref(),
            Some("{\"op\":\"tick\"}")
        );
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some("{}"));
        assert_eq!(read_frame(&mut r).unwrap(), None, "clean EOF");
        let mut torn = &buf[..2];
        assert!(read_frame(&mut torn).is_err(), "torn header must error");
        let huge = [0xFFu8, 0xFF, 0xFF, 0xFF];
        assert!(
            read_frame(&mut &huge[..]).is_err(),
            "oversize length rejected"
        );
    }

    /// Full protocol pass over a real socket: ticks advance the clock,
    /// answers are exact against the ground truth, metrics expose the
    /// executor counters, and shutdown reports zero leaked workers.
    #[test]
    fn tcp_round_trip_serves_exact_answers_and_clean_shutdown() {
        let server = NetServer::bind(
            "127.0.0.1:0",
            driver(300),
            FaultPolicy::default(),
            NetServerConfig::default(),
        )
        .unwrap();
        let addr = server.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || server.serve());
        let mut c = NetClient::connect(&addr).unwrap();
        for _ in 0..3 {
            let r = c.request("{\"op\":\"tick\"}").unwrap();
            assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true));
            let r = c
                .request("{\"op\":\"check\",\"rho\":0.015,\"l\":20.0,\"q_t\":2}")
                .unwrap();
            assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true), "{r:?}");
            assert_eq!(
                r.get("exact").and_then(Json::as_bool),
                Some(true),
                "FR must be exact over the wire: {r:?}"
            );
        }
        // Pipelining: several requests on the wire before any read.
        for _ in 0..4 {
            c.send("{\"op\":\"query\",\"rho\":0.015,\"l\":20.0,\"q_t\":1}")
                .unwrap();
        }
        for _ in 0..4 {
            let r = c.recv().unwrap();
            assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true));
        }
        let m = c.request("{\"op\":\"metrics\"}").unwrap();
        let metrics = m.get("metrics").expect("metrics object");
        assert_eq!(
            metrics.get("failed_queries").and_then(Json::as_u64),
            Some(0)
        );
        assert_eq!(
            metrics.get("rejected_admissions").and_then(Json::as_u64),
            Some(0)
        );
        assert!(metrics.get("exec").is_some(), "executor counters present");
        let clients = metrics.get("clients").unwrap();
        let Json::Arr(clients) = clients else {
            panic!("clients must be an array")
        };
        assert_eq!(clients.len(), 1);
        assert_eq!(clients[0].get("queries").and_then(Json::as_u64), Some(7));
        let r = c.request("{\"op\":\"shutdown\"}").unwrap();
        assert_eq!(r.get("draining").and_then(Json::as_bool), Some(true));
        let summary = server.join().unwrap();
        assert!(
            summary.contains("\"leaked_workers\":0"),
            "clean shutdown: {summary}"
        );
        assert!(summary.contains("\"failed_queries\":0"), "{summary}");
    }

    /// Applies one `poll_deltas` response to the client-side mirrors,
    /// asserting nothing was lost or degraded; returns the delta count.
    fn apply_wire_deltas(resp: &Json, mirrors: &mut HashMap<u64, Vec<Rect>>) -> usize {
        assert_eq!(
            resp.get("ok").and_then(Json::as_bool),
            Some(true),
            "{resp:?}"
        );
        assert_eq!(resp.get("lost").and_then(Json::as_bool), Some(false));
        let Json::Arr(deltas) = resp.get("deltas").expect("deltas array") else {
            panic!("deltas must be an array: {resp:?}");
        };
        let parse_rects = |v: &Json| -> Vec<Rect> {
            let Json::Arr(items) = v else {
                panic!("rect list: {v:?}")
            };
            items
                .iter()
                .map(|r| {
                    let Json::Arr(c) = r else {
                        panic!("rect: {r:?}")
                    };
                    let c: Vec<f64> = c.iter().filter_map(Json::as_f64).collect();
                    Rect::new(c[0], c[1], c[2], c[3])
                })
                .collect()
        };
        for entry in deltas {
            let d = entry.get("delta").expect("delta body");
            assert_eq!(d.get("degraded").and_then(Json::as_bool), Some(false));
            let id = d.get("sub").and_then(Json::as_u64).expect("sub id");
            let patch = AnswerDelta {
                id: SubId(id),
                now: 0,
                q_t: 0,
                added: parse_rects(d.get("added").expect("added")),
                removed: parse_rects(d.get("removed").expect("removed")),
                degraded: false,
                resync: d.get("resync").is_some(),
            };
            if let Some(m) = mirrors.get_mut(&id) {
                patch.apply_to(m);
            }
        }
        deltas.len()
    }

    /// Standing subscriptions over the wire: the per-connection delta
    /// stream, replayed client-side, reconstructs — bit-for-bit — the
    /// rect list a from-scratch `query` (clipped to the subscribed
    /// region) returns at every tick.
    #[test]
    fn tcp_subscription_deltas_replay_to_from_scratch_answers() {
        use pdr_core::SubscriptionTable;
        use pdr_geometry::RegionSet;

        let server = NetServer::bind(
            "127.0.0.1:0",
            driver(300),
            FaultPolicy::default(),
            NetServerConfig::default(),
        )
        .unwrap();
        let addr = server.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || server.serve());
        let mut c = NetClient::connect(&addr).unwrap();

        // One full-domain and one region-restricted standing query.
        let full_region = Rect::new(0.0, 0.0, 200.0, 200.0);
        let part_region = Rect::new(30.0, 20.0, 160.0, 170.0);
        let r = c
            .request("{\"op\":\"subscribe\",\"rho\":0.015,\"l\":20.0,\"q_t\":2}")
            .unwrap();
        assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true), "{r:?}");
        assert_eq!(r.get("engine").and_then(Json::as_str), Some("fr"));
        let sub_full = r.get("sub").and_then(Json::as_u64).unwrap();
        let r = c
            .request(
                "{\"op\":\"subscribe\",\"rho\":0.02,\"l\":20.0,\"q_t\":1,\
                 \"region\":[30.0,20.0,160.0,170.0]}",
            )
            .unwrap();
        assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true), "{r:?}");
        let sub_part = r.get("sub").and_then(Json::as_u64).unwrap();
        let specs = [
            (sub_full, 0.015, 2u64, full_region),
            (sub_part, 0.02, 1u64, part_region),
        ];
        let mut mirrors: HashMap<u64, Vec<Rect>> = HashMap::new();
        mirrors.insert(sub_full, Vec::new());
        mirrors.insert(sub_part, Vec::new());

        let check = |c: &mut NetClient, mirrors: &HashMap<u64, Vec<Rect>>| {
            for (sub, rho, q_t, region) in specs {
                let r = c
                    .request(&format!(
                        "{{\"op\":\"query\",\"rho\":{rho},\"l\":20.0,\"q_t\":{q_t},\"rects\":true}}"
                    ))
                    .unwrap();
                assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true), "{r:?}");
                let Json::Arr(items) = r.get("rects").expect("rects present") else {
                    panic!("rects must be an array: {r:?}");
                };
                let rects: Vec<Rect> = items
                    .iter()
                    .map(|it| {
                        let Json::Arr(co) = it else { panic!() };
                        let co: Vec<f64> = co.iter().filter_map(Json::as_f64).collect();
                        Rect::new(co[0], co[1], co[2], co[3])
                    })
                    .collect();
                let reference = SubscriptionTable::clip(&RegionSet::from_rects(rects), region);
                assert_eq!(
                    mirrors[&sub].as_slice(),
                    reference.rects(),
                    "replayed mirror diverged for sub {sub}"
                );
            }
        };

        // The initial snapshot arrives as the first delta.
        let r = c.request("{\"op\":\"poll_deltas\"}").unwrap();
        assert!(apply_wire_deltas(&r, &mut mirrors) >= 2, "{r:?}");
        check(&mut c, &mirrors);

        for _ in 0..4 {
            let r = c.request("{\"op\":\"tick\"}").unwrap();
            assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true));
            let r = c.request("{\"op\":\"poll_deltas\"}").unwrap();
            apply_wire_deltas(&r, &mut mirrors);
            check(&mut c, &mirrors);
        }

        let m = c.request("{\"op\":\"metrics\"}").unwrap();
        assert_eq!(
            m.get("metrics")
                .and_then(|v| v.get("wire_subs"))
                .and_then(Json::as_u64),
            Some(2),
            "{m:?}"
        );
        let r = c
            .request(&format!("{{\"op\":\"unsubscribe\",\"sub\":{sub_part}}}"))
            .unwrap();
        assert_eq!(r.get("removed").and_then(Json::as_bool), Some(true));
        let r = c
            .request(&format!("{{\"op\":\"unsubscribe\",\"sub\":{sub_part}}}"))
            .unwrap();
        assert_eq!(
            r.get("removed").and_then(Json::as_bool),
            Some(false),
            "double unsubscribe is a no-op"
        );

        let r = c.request("{\"op\":\"shutdown\"}").unwrap();
        assert_eq!(r.get("draining").and_then(Json::as_bool), Some(true));
        let summary = server.join().unwrap();
        assert!(summary.contains("\"leaked_workers\":0"), "{summary}");
    }

    /// The sharded spec both replication endpoints are built from; the
    /// configs must match for shipped answers to be bit-identical.
    fn sharded_spec() -> EngineSpec {
        EngineSpec::Sharded {
            adaptive: None,
            inner: Box::new(EngineSpec::Fr(FrConfig {
                extent: 200.0,
                m: 40,
                horizon: TimeHorizon::new(4, 4),
                buffer_pages: 64,
                threads: 1,
            })),
            sx: 2,
            sy: 2,
            l_max: 20.0,
        }
    }

    fn sim(n: usize) -> TrafficSimulator {
        let net = RoadNetwork::generate(
            &NetworkConfig {
                extent: 200.0,
                nodes: 150,
                hotspots: 3,
                spread: 0.05,
                background: 0.2,
                degree: 3,
            },
            13,
        );
        TrafficSimulator::new(net, n, 17, 4, 0)
    }

    /// Full log-shipping pass over real sockets: a replica front-end
    /// bootstraps from its primary via `sync`/`ship_log`, keeps up
    /// incrementally across ticks, answers bit-identically at caught-up
    /// offsets, and refuses writes.
    #[test]
    fn tcp_replica_syncs_and_answers_bit_identically() {
        let mut primary_driver = ServeDriver::new(sim(300), pdr_storage::CostModel::PAPER_DEFAULT)
            .with_engine("fr", sharded_spec().build(0));
        primary_driver.bootstrap();
        let primary = NetServer::bind(
            "127.0.0.1:0",
            primary_driver,
            FaultPolicy::default(),
            NetServerConfig::default(),
        )
        .unwrap();
        let primary_addr = primary.local_addr().unwrap().to_string();
        let primary = std::thread::spawn(move || primary.serve());

        // The replica never bootstraps from its own simulator — all its
        // state arrives through shipments.
        let replica_driver = ServeDriver::new(sim(300), pdr_storage::CostModel::PAPER_DEFAULT)
            .with_engine("fr", sharded_spec().try_build_replica(0).unwrap());
        let replica = NetServer::bind(
            "127.0.0.1:0",
            replica_driver,
            FaultPolicy::default(),
            NetServerConfig {
                replica_of: Some(primary_addr.clone()),
                ..NetServerConfig::default()
            },
        )
        .unwrap();
        let replica_addr = replica.local_addr().unwrap().to_string();
        let replica = std::thread::spawn(move || replica.serve());

        let mut p = NetClient::connect(&primary_addr).unwrap();
        let mut r = NetClient::connect(&replica_addr).unwrap();

        // Writes are refused on the replica.
        let resp = r.request("{\"op\":\"tick\"}").unwrap();
        assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(false));

        // Bootstrap sync, then incremental syncs across primary ticks.
        let resp = r.request("{\"op\":\"sync\"}").unwrap();
        assert_eq!(
            resp.get("ok").and_then(Json::as_bool),
            Some(true),
            "{resp:?}"
        );
        assert_eq!(resp.get("bootstrapped").and_then(Json::as_bool), Some(true));

        let compare = |p: &mut NetClient, r: &mut NetClient| {
            for q_t in [0u64, 2, 4] {
                let body = format!(
                    "{{\"op\":\"query\",\"rho\":0.015,\"l\":20.0,\"q_t\":{q_t},\"rects\":true}}"
                );
                let a = p.request(&body).unwrap();
                let b = r.request(&body).unwrap();
                assert_eq!(a.get("ok").and_then(Json::as_bool), Some(true), "{a:?}");
                assert_eq!(b.get("ok").and_then(Json::as_bool), Some(true), "{b:?}");
                assert_eq!(
                    a.get("t").and_then(Json::as_u64),
                    b.get("t").and_then(Json::as_u64),
                    "replica clock diverged"
                );
                assert_eq!(
                    a.get("rects"),
                    b.get("rects"),
                    "replica answer not bit-identical at q_t={q_t}"
                );
            }
        };
        compare(&mut p, &mut r);

        for tick in 0..4 {
            let resp = p.request("{\"op\":\"tick\"}").unwrap();
            assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true));
            let resp = r.request("{\"op\":\"sync\"}").unwrap();
            assert_eq!(
                resp.get("ok").and_then(Json::as_bool),
                Some(true),
                "{resp:?}"
            );
            assert_eq!(
                resp.get("bootstrapped").and_then(Json::as_bool),
                Some(false),
                "steady state ships deltas: {resp:?}"
            );
            assert_eq!(
                resp.get("lag").and_then(Json::as_u64),
                Some(0),
                "caught up after sync at tick {tick}"
            );
            compare(&mut p, &mut r);
        }

        // The replica's metrics surface the staleness gauge.
        let m = r.request("{\"op\":\"metrics\"}").unwrap();
        let rep = m
            .get("metrics")
            .and_then(|v| v.get("replica"))
            .expect("replica metrics block");
        assert_eq!(rep.get("replica_lag").and_then(Json::as_u64), Some(0));
        assert_eq!(rep.get("bootstraps").and_then(Json::as_u64), Some(1));

        for (name, c) in [("replica", &mut r), ("primary", &mut p)] {
            let resp = c.request("{\"op\":\"shutdown\"}").unwrap();
            assert_eq!(
                resp.get("draining").and_then(Json::as_bool),
                Some(true),
                "{name} shutdown"
            );
        }
        for (name, h) in [("replica", replica), ("primary", primary)] {
            let summary = h.join().unwrap();
            assert!(
                summary.contains("\"leaked_workers\":0"),
                "{name}: {summary}"
            );
        }
    }

    /// With zero capacity every admission bounces with the retry hint —
    /// backpressure instead of queueing.
    #[test]
    fn zero_capacity_rejects_every_admission_with_retry_hint() {
        let cfg = NetServerConfig {
            capacity: 0,
            retry_after_ms: 7,
            ..NetServerConfig::default()
        };
        let server =
            NetServer::bind("127.0.0.1:0", driver(200), FaultPolicy::default(), cfg).unwrap();
        let addr = server.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || server.serve());
        let mut c = NetClient::connect(&addr).unwrap();
        for _ in 0..3 {
            let r = c
                .request("{\"op\":\"query\",\"rho\":0.015,\"l\":20.0,\"q_t\":1}")
                .unwrap();
            assert_eq!(r.get("ok").and_then(Json::as_bool), Some(false));
            assert_eq!(r.get("error").and_then(Json::as_str), Some("overloaded"));
            assert_eq!(r.get("retry_after_ms").and_then(Json::as_u64), Some(7));
        }
        // tick is not admission-gated — the write path must stay live.
        let r = c.request("{\"op\":\"tick\"}").unwrap();
        assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true));
        c.request("{\"op\":\"shutdown\"}").unwrap();
        let summary = server.join().unwrap();
        assert!(summary.contains("\"rejected_admissions\":3"), "{summary}");
    }

    /// A frame truncated at *every* possible byte boundary — inside the
    /// length prefix and inside the payload — must surface as an error,
    /// never as a silent short read or a hang.
    #[test]
    fn torn_frames_error_at_every_byte_boundary() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "{\"op\":\"tick\",\"id\":7}").unwrap();
        assert_eq!(
            read_frame(&mut &buf[..]).unwrap().as_deref(),
            Some("{\"op\":\"tick\",\"id\":7}")
        );
        assert_eq!(
            read_frame(&mut &buf[..0]).unwrap(),
            None,
            "empty stream is clean EOF"
        );
        for cut in 1..buf.len() {
            let mut torn = &buf[..cut];
            assert!(
                read_frame(&mut torn).is_err(),
                "torn frame at byte {cut} must error"
            );
        }
    }

    /// A peer stalling mid-frame (partial length prefix, then silence)
    /// is reaped after the frame timeout instead of pinning a worker
    /// forever; a peer disconnecting mid-payload tears down cleanly.
    /// Blocking `read_exact` without a deadline would hang this test.
    #[test]
    fn stalled_and_torn_connections_are_reaped_not_pinned() {
        let cfg = NetServerConfig {
            idle_timeout: Duration::from_millis(300),
            frame_timeout: Duration::from_millis(150),
            ..NetServerConfig::default()
        };
        let server =
            NetServer::bind("127.0.0.1:0", driver(200), FaultPolicy::default(), cfg).unwrap();
        let addr = server.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || server.serve());

        // Stall 1: two bytes of length prefix, then silence.
        let mut stalled = TcpStream::connect(&addr).unwrap();
        stalled.write_all(&[0x00, 0x00]).unwrap();
        // Stall 2: honest prefix claiming 50 bytes, 10 delivered, drop.
        let mut torn = TcpStream::connect(&addr).unwrap();
        torn.write_all(&50u32.to_be_bytes()).unwrap();
        torn.write_all(&[b'{'; 10]).unwrap();
        drop(torn);
        // Idle: connected, never writes a byte.
        let idle = TcpStream::connect(&addr).unwrap();

        std::thread::sleep(Duration::from_millis(700));
        let mut c = NetClient::connect(&addr).unwrap();
        let m = c.request("{\"op\":\"metrics\"}").unwrap();
        let reaped = m
            .get("metrics")
            .and_then(|v| v.get("reaped_connections"))
            .and_then(Json::as_u64)
            .unwrap();
        assert!(
            reaped >= 2,
            "stalled + idle connections must be reaped, got {reaped}: {m:?}"
        );
        drop(stalled);
        drop(idle);
        c.request("{\"op\":\"shutdown\"}").unwrap();
        let summary = server.join().unwrap();
        assert!(summary.contains("\"leaked_workers\":0"), "{summary}");
    }

    /// With a `duplicate frame` plan under the server's frame writes,
    /// every response arrives twice; a client matching on the echoed
    /// request id discards the duplicates and stays in sync.
    #[test]
    fn duplicated_response_frames_are_discarded_by_id_matching() {
        let plan =
            crate::netfault::NetFaultPlan::parse("duplicate frame every=1 permanent").unwrap();
        let inj = Arc::new(NetFaultInjector::new(plan));
        let cfg = NetServerConfig {
            faults: Some(inj.clone()),
            ..NetServerConfig::default()
        };
        let server =
            NetServer::bind("127.0.0.1:0", driver(200), FaultPolicy::default(), cfg).unwrap();
        let addr = server.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || server.serve());
        let mut c = NetClient::connect(&addr).unwrap();
        let recv_matching = |c: &mut NetClient, want: u64| -> String {
            loop {
                let frame = c.recv_raw().unwrap();
                if let Ok(v) = Json::parse(&frame) {
                    if v.get("id").and_then(Json::as_u64) == Some(want) {
                        return frame;
                    }
                }
            }
        };
        for id in 1..=5u64 {
            c.send(&format!("{{\"op\":\"tick\",\"id\":{id}}}")).unwrap();
            let frame = recv_matching(&mut c, id);
            assert!(frame.contains("\"ok\":true"), "{frame}");
        }
        assert!(
            inj.stats().duplicates >= 5,
            "every response written twice: {:?}",
            inj.stats()
        );
        c.send("{\"op\":\"shutdown\",\"id\":99}").unwrap();
        let frame = recv_matching(&mut c, 99);
        assert!(frame.contains("\"draining\":true"), "{frame}");
        let summary = server.join().unwrap();
        assert!(summary.contains("\"leaked_workers\":0"), "{summary}");
        assert!(summary.contains("\"netfaults\":{"), "{summary}");
    }

    /// A `drop frame` plan under the server's writes loses one response;
    /// the client times out on the missing frame, retries on the same
    /// connection, and the drop surfaces in the metrics' netfault block.
    #[test]
    fn dropped_response_frame_times_out_client_and_counts_in_metrics() {
        let plan = crate::netfault::NetFaultPlan::parse("drop frame nth=2 times=1").unwrap();
        let cfg = NetServerConfig {
            faults: Some(Arc::new(NetFaultInjector::new(plan))),
            ..NetServerConfig::default()
        };
        let server =
            NetServer::bind("127.0.0.1:0", driver(200), FaultPolicy::default(), cfg).unwrap();
        let addr = server.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || server.serve());
        let mut c = NetClient::connect(&addr).unwrap();
        c.set_io_timeouts(Some(Duration::from_millis(300)), None)
            .unwrap();
        let r = c.request("{\"op\":\"tick\",\"id\":1}").unwrap();
        assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true));
        // Second response is dropped below the framing layer.
        c.send("{\"op\":\"tick\",\"id\":2}").unwrap();
        assert!(c.recv().is_err(), "dropped response must time out");
        // The connection itself is healthy; the next exchange works.
        let r = c.request("{\"op\":\"tick\",\"id\":3}").unwrap();
        assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true), "{r:?}");
        let m = c.request("{\"op\":\"metrics\",\"id\":4}").unwrap();
        let drops = m
            .get("metrics")
            .and_then(|v| v.get("netfaults"))
            .and_then(|v| v.get("drops"))
            .and_then(Json::as_u64);
        assert_eq!(drops, Some(1), "{m:?}");
        c.request("{\"op\":\"shutdown\"}").unwrap();
        server.join().unwrap();
    }

    /// Failover over real sockets: promote a synced replica, verify it
    /// accepts writes, and verify the deposed primary fences itself the
    /// moment it observes the newer replication epoch.
    #[test]
    fn tcp_promote_turns_replica_writable_and_fences_old_primary() {
        let mut primary_driver = ServeDriver::new(sim(300), pdr_storage::CostModel::PAPER_DEFAULT)
            .with_engine("fr", sharded_spec().build(0));
        primary_driver.bootstrap();
        let primary = NetServer::bind(
            "127.0.0.1:0",
            primary_driver,
            FaultPolicy::default(),
            NetServerConfig::default(),
        )
        .unwrap();
        let primary_addr = primary.local_addr().unwrap().to_string();
        let primary = std::thread::spawn(move || primary.serve());

        let replica_driver = ServeDriver::new(sim(300), pdr_storage::CostModel::PAPER_DEFAULT)
            .with_engine("fr", sharded_spec().try_build_replica(0).unwrap());
        let replica = NetServer::bind(
            "127.0.0.1:0",
            replica_driver,
            FaultPolicy::default(),
            NetServerConfig {
                replica_of: Some(primary_addr.clone()),
                ..NetServerConfig::default()
            },
        )
        .unwrap();
        let replica_addr = replica.local_addr().unwrap().to_string();
        let replica = std::thread::spawn(move || replica.serve());

        let mut p = NetClient::connect(&primary_addr).unwrap();
        let mut r = NetClient::connect(&replica_addr).unwrap();

        // Establish replicated state: two ticks, then a catch-up sync.
        for _ in 0..2 {
            let resp = p.request("{\"op\":\"tick\"}").unwrap();
            assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true));
        }
        let resp = r.request("{\"op\":\"sync\"}").unwrap();
        assert_eq!(
            resp.get("ok").and_then(Json::as_bool),
            Some(true),
            "{resp:?}"
        );
        let applied_t = resp.get("applied_t").and_then(Json::as_u64).unwrap();

        // Promote. The response carries the bumped epoch and the sealed
        // applied time; a second promote is an idempotent re-answer.
        let resp = r.request("{\"op\":\"promote\"}").unwrap();
        assert_eq!(
            resp.get("ok").and_then(Json::as_bool),
            Some(true),
            "{resp:?}"
        );
        let epoch = resp.get("repl_epoch").and_then(Json::as_u64).unwrap();
        assert!(epoch >= 2, "promotion bumps past the replicated epoch");
        assert_eq!(
            resp.get("applied_t").and_then(Json::as_u64),
            Some(applied_t)
        );
        let again = r.request("{\"op\":\"promote\"}").unwrap();
        assert_eq!(again.get("repl_epoch").and_then(Json::as_u64), Some(epoch));

        // The promoted node ticks (writes) and keeps answering exactly.
        let resp = r.request("{\"op\":\"tick\"}").unwrap();
        assert_eq!(
            resp.get("ok").and_then(Json::as_bool),
            Some(true),
            "promoted node must accept writes: {resp:?}"
        );
        let resp = r
            .request("{\"op\":\"check\",\"rho\":0.015,\"l\":20.0,\"q_t\":1}")
            .unwrap();
        assert_eq!(
            resp.get("exact").and_then(Json::as_bool),
            Some(true),
            "{resp:?}"
        );
        // Syncing a promoted node is refused — it no longer follows.
        let resp = r.request("{\"op\":\"sync\"}").unwrap();
        assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(false));

        // The deposed primary fences itself on first contact with the
        // newer epoch: ship_log refuses, then writes are refused too.
        let resp = p
            .request(&format!(
                "{{\"op\":\"ship_log\",\"epoch\":0,\"offsets\":[],\"repl_epoch\":{epoch}}}"
            ))
            .unwrap();
        assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(resp.get("error").and_then(Json::as_str), Some("fenced"));
        let resp = p.request("{\"op\":\"tick\"}").unwrap();
        assert_eq!(
            resp.get("ok").and_then(Json::as_bool),
            Some(false),
            "fenced primary must refuse writes: {resp:?}"
        );
        assert!(
            resp.get("error")
                .and_then(Json::as_str)
                .is_some_and(|e| e.contains("fenced")),
            "{resp:?}"
        );
        let m = p.request("{\"op\":\"metrics\"}").unwrap();
        let repl = m
            .get("metrics")
            .and_then(|v| v.get("repl"))
            .expect("repl block on a primary");
        assert_eq!(repl.get("fenced").and_then(Json::as_bool), Some(true));

        for c in [&mut r, &mut p] {
            c.request("{\"op\":\"shutdown\"}").unwrap();
        }
        for (name, h) in [("replica", replica), ("primary", primary)] {
            let summary = h.join().unwrap();
            assert!(
                summary.contains("\"leaked_workers\":0"),
                "{name}: {summary}"
            );
        }
    }
}
