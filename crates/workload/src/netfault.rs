//! Deterministic network fault injection for the TCP serving plane.
//!
//! A [`NetFaultPlan`] is the network-layer sibling of the storage
//! crate's `FaultPlan`: a declarative, seeded schedule of faults
//! injected *beneath* the length-prefixed framing layer, on the write
//! path of either endpoint (server or client). Because both directions
//! of a conversation write frames, one injector on either side covers
//! requests and responses alike. Faults are deterministic: the same
//! plan against the same frame sequence injects the same faults, so
//! every chaos scenario is reproducible from its seed.
//!
//! Five kinds of faults are modelled:
//!
//! * **drop frame** — the frame is silently discarded; the writer
//!   believes it was sent. The peer times out and retries.
//! * **delay frame** — the frame is delivered after `ms` milliseconds.
//! * **duplicate frame** — the frame is delivered twice, back to back.
//!   Receivers correlate by the echoed request `id`.
//! * **truncate frame** — the length prefix and a byte-level prefix of
//!   the payload are delivered, then the stream is shut down: the peer
//!   observes a torn frame mid-read.
//! * **reset conn** / **drop conn** — the connection is shut down
//!   (instead of the frame being written); the writer sees an error.
//!
//! Plans parse from the same one-rule-per-line format as storage fault
//! plans ([`NetFaultPlan::parse`]):
//!
//! ```text
//! # every frame is dropped with p = 0.01 (seeded, deterministic)
//! seed 1337
//! drop frame prob=0.01
//! # the 4th frame arrives 25 ms late, and the 5th and 6th too
//! delay frame nth=4 times=3 ms=25
//! # every 10th frame is duplicated, forever
//! duplicate frame every=10 permanent
//! # the 7th frame is torn mid-payload
//! truncate frame nth=7
//! # the 3rd frame write resets the connection instead
//! reset conn nth=3
//! ```

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// What a consulted plan asks the framing layer to do with one frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameFault {
    /// Write the frame normally.
    Deliver,
    /// Silently discard the frame (pretend the write succeeded).
    Drop,
    /// Deliver the frame after this many milliseconds.
    Delay(u64),
    /// Write the frame twice.
    Duplicate,
    /// Write the length prefix plus a prefix of the payload, then shut
    /// the stream down (a torn frame for the reader).
    Truncate,
    /// Shut the connection down instead of writing.
    Reset,
}

/// Which fault a rule injects.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum NetFaultKind {
    Drop,
    Delay,
    Duplicate,
    Truncate,
    Reset,
}

/// What a rule targets: one frame write, or the whole connection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum NetFaultScope {
    Frame,
    Conn,
}

/// How often a rule keeps firing once its trigger matches.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Budget {
    /// Fires at most this many times (transient).
    Count(u64),
    /// Fires forever (permanent).
    Permanent,
}

/// One declarative network fault rule.
#[derive(Clone, Debug)]
struct NetFaultRule {
    kind: NetFaultKind,
    scope: NetFaultScope,
    /// Fire on the Nth frame write (1-based) and, with a `Count(k)`
    /// budget, on the k-1 writes after it.
    nth: Option<u64>,
    /// Fire on every Nth frame write.
    every: Option<u64>,
    /// Fire with this probability (seeded, deterministic).
    prob: Option<f64>,
    /// Delay in milliseconds (`delay` rules only).
    ms: u64,
    budget: Budget,
    // --- runtime state ---
    seen: u64,
    fired: u64,
}

impl NetFaultRule {
    /// Decides whether the rule fires for the next frame write,
    /// mirroring the storage `FaultRule::check` semantics.
    fn check(&mut self, rng: &mut u64) -> bool {
        self.seen += 1;
        let armed = match self.budget {
            Budget::Count(k) => self.fired < k,
            Budget::Permanent => true,
        };
        if !armed {
            return false;
        }
        let hit = if let Some(n) = self.nth {
            match self.budget {
                Budget::Count(k) => self.seen >= n && self.seen < n + k,
                Budget::Permanent => self.seen >= n,
            }
        } else if let Some(e) = self.every {
            e > 0 && self.seen.is_multiple_of(e)
        } else if let Some(p) = self.prob {
            next_unit(rng) < p
        } else {
            true
        };
        if hit {
            self.fired += 1;
        }
        hit
    }
}

/// xorshift64* step returning a uniform draw in `[0, 1)` (the same
/// generator the storage fault plan uses).
fn next_unit(state: &mut u64) -> f64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    (x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64
}

/// A seeded, declarative schedule of network faults. Wrap it in a
/// [`NetFaultInjector`] and hand that to the serving front-end or a
/// client; the framing layer consults it on every frame write.
#[derive(Clone, Debug)]
pub struct NetFaultPlan {
    rules: Vec<NetFaultRule>,
    rng: u64,
}

impl Default for NetFaultPlan {
    fn default() -> Self {
        NetFaultPlan::new(0x0C4A_05FE)
    }
}

impl NetFaultPlan {
    /// An empty plan (injects nothing) with the given probability seed.
    pub fn new(seed: u64) -> Self {
        NetFaultPlan {
            rules: Vec::new(),
            // xorshift state must be non-zero.
            rng: seed | 1,
        }
    }

    /// `true` when the plan has no rules at all.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Number of rules in the plan.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Parses the plan-file format: one rule per line, `#` comments and
    /// blank lines ignored. Grammar per line:
    ///
    /// ```text
    /// seed <u64>
    /// drop|delay|duplicate|truncate|reset frame|conn
    ///     [nth=<u64>] [every=<u64>] [prob=<f64>] [ms=<u64>]
    ///     [times=<u64>] [permanent]
    /// ```
    ///
    /// `times` defaults to 1; `permanent` makes the rule fire forever.
    /// `ms` is required for `delay` and invalid elsewhere. `delay`,
    /// `duplicate` and `truncate` only make sense per-frame; `reset`
    /// only per-connection; `drop` takes either scope.
    pub fn parse(text: &str) -> Result<NetFaultPlan, NetFaultPlanError> {
        let mut plan = NetFaultPlan::default();
        for (idx, raw) in text.lines().enumerate() {
            let line_no = idx + 1;
            let err = |what: &'static str| NetFaultPlanError {
                line: line_no,
                what,
            };
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut words = line.split_whitespace();
            let first = words.next().expect("non-empty line has a word");
            if first == "seed" {
                let v = words.next().ok_or(err("seed needs a value"))?;
                let seed: u64 = v.parse().map_err(|_| err("bad seed value"))?;
                plan.rng = seed | 1;
                continue;
            }
            let kind = match first {
                "drop" => NetFaultKind::Drop,
                "delay" => NetFaultKind::Delay,
                "duplicate" => NetFaultKind::Duplicate,
                "truncate" => NetFaultKind::Truncate,
                "reset" => NetFaultKind::Reset,
                _ => return Err(err("expected drop, delay, duplicate, truncate or reset")),
            };
            let scope = match words.next() {
                Some("frame") => NetFaultScope::Frame,
                Some("conn") => NetFaultScope::Conn,
                _ => return Err(err("expected frame or conn after the fault kind")),
            };
            match (kind, scope) {
                (NetFaultKind::Drop, _) => {}
                (
                    NetFaultKind::Delay | NetFaultKind::Duplicate | NetFaultKind::Truncate,
                    NetFaultScope::Frame,
                ) => {}
                (NetFaultKind::Reset, NetFaultScope::Conn) => {}
                (NetFaultKind::Reset, NetFaultScope::Frame) => {
                    return Err(err("reset is conn-only"))
                }
                (_, NetFaultScope::Conn) => {
                    return Err(err("delay, duplicate and truncate are frame-only"))
                }
            }
            let mut rule = NetFaultRule {
                kind,
                scope,
                nth: None,
                every: None,
                prob: None,
                ms: 0,
                budget: Budget::Count(1),
                seen: 0,
                fired: 0,
            };
            let mut times_set = false;
            for word in words {
                if word == "permanent" {
                    if times_set {
                        return Err(err("times conflicts with permanent"));
                    }
                    rule.budget = Budget::Permanent;
                    continue;
                }
                let (key, value) = word.split_once('=').ok_or(err("expected key=value"))?;
                match key {
                    "nth" => rule.nth = Some(value.parse().map_err(|_| err("bad nth value"))?),
                    "every" => {
                        rule.every = Some(value.parse().map_err(|_| err("bad every value"))?)
                    }
                    "prob" => {
                        let p: f64 = value.parse().map_err(|_| err("bad prob value"))?;
                        if !(0.0..=1.0).contains(&p) {
                            return Err(err("prob outside [0, 1]"));
                        }
                        rule.prob = Some(p);
                    }
                    "ms" => rule.ms = value.parse().map_err(|_| err("bad ms value"))?,
                    "times" => {
                        if rule.budget == Budget::Permanent {
                            return Err(err("times conflicts with permanent"));
                        }
                        times_set = true;
                        rule.budget =
                            Budget::Count(value.parse().map_err(|_| err("bad times value"))?);
                    }
                    _ => return Err(err("unknown key")),
                }
            }
            if kind == NetFaultKind::Delay && rule.ms == 0 {
                return Err(err("delay needs ms=<positive>"));
            }
            if kind != NetFaultKind::Delay && rule.ms != 0 {
                return Err(err("ms is delay-only"));
            }
            plan.rules.push(rule);
        }
        Ok(plan)
    }

    /// Consults the plan for the next frame write. When several rules
    /// fire for the same frame the most destructive action wins
    /// (reset > truncate > drop > duplicate > delay); every firing
    /// rule advances its own budget either way.
    pub fn check_frame(&mut self) -> FrameFault {
        let mut rng = self.rng;
        let mut verdict = FrameFault::Deliver;
        for rule in &mut self.rules {
            if !rule.check(&mut rng) {
                continue;
            }
            let action = match (rule.kind, rule.scope) {
                (NetFaultKind::Reset, _) | (NetFaultKind::Drop, NetFaultScope::Conn) => {
                    FrameFault::Reset
                }
                (NetFaultKind::Truncate, _) => FrameFault::Truncate,
                (NetFaultKind::Drop, _) => FrameFault::Drop,
                (NetFaultKind::Duplicate, _) => FrameFault::Duplicate,
                (NetFaultKind::Delay, _) => FrameFault::Delay(rule.ms),
            };
            if severity(action) > severity(verdict) {
                verdict = action;
            }
        }
        self.rng = rng;
        verdict
    }
}

fn severity(a: FrameFault) -> u8 {
    match a {
        FrameFault::Deliver => 0,
        FrameFault::Delay(_) => 1,
        FrameFault::Duplicate => 2,
        FrameFault::Drop => 3,
        FrameFault::Truncate => 4,
        FrameFault::Reset => 5,
    }
}

/// Parse error for the plan-file format.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NetFaultPlanError {
    /// 1-based line the error was found on.
    pub line: usize,
    /// What went wrong.
    pub what: &'static str,
}

impl fmt::Display for NetFaultPlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "net fault plan line {}: {}", self.line, self.what)
    }
}

impl std::error::Error for NetFaultPlanError {}

/// Counters for network faults the injector actually fired, surfaced
/// through the serve `metrics` op and client summaries.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetFaultStats {
    /// Frame writes consulted.
    pub frames: u64,
    /// Frames silently dropped.
    pub drops: u64,
    /// Frames delivered late.
    pub delays: u64,
    /// Total injected delay, in milliseconds.
    pub delayed_ms: u64,
    /// Frames written twice.
    pub duplicates: u64,
    /// Frames torn mid-payload (stream shut down after a prefix).
    pub truncates: u64,
    /// Connections shut down instead of a frame write.
    pub resets: u64,
}

impl NetFaultStats {
    /// Total faults injected.
    pub fn injected(&self) -> u64 {
        self.drops + self.delays + self.duplicates + self.truncates + self.resets
    }

    /// The stats as a JSON object (for metrics surfaces).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"frames\":{},\"drops\":{},\"delays\":{},\"delayed_ms\":{},\"duplicates\":{},\
             \"truncates\":{},\"resets\":{}}}",
            self.frames,
            self.drops,
            self.delays,
            self.delayed_ms,
            self.duplicates,
            self.truncates,
            self.resets
        )
    }
}

/// A shared, thread-safe wrapper around a [`NetFaultPlan`]: the framing
/// layer consults it on every frame write and the fired faults are
/// counted atomically. One injector is shared by every connection of a
/// server (or every request of a client), so `nth`/`every` selectors
/// count frames process-wide in write order.
#[derive(Debug)]
pub struct NetFaultInjector {
    plan: Mutex<NetFaultPlan>,
    frames: AtomicU64,
    drops: AtomicU64,
    delays: AtomicU64,
    delayed_ms: AtomicU64,
    duplicates: AtomicU64,
    truncates: AtomicU64,
    resets: AtomicU64,
}

impl NetFaultInjector {
    /// Wraps a plan for shared use.
    pub fn new(plan: NetFaultPlan) -> Self {
        NetFaultInjector {
            plan: Mutex::new(plan),
            frames: AtomicU64::new(0),
            drops: AtomicU64::new(0),
            delays: AtomicU64::new(0),
            delayed_ms: AtomicU64::new(0),
            duplicates: AtomicU64::new(0),
            truncates: AtomicU64::new(0),
            resets: AtomicU64::new(0),
        }
    }

    /// Consults the plan for the next frame write and records the
    /// verdict in the counters.
    pub fn check_frame(&self) -> FrameFault {
        let fault = {
            let mut plan = self.plan.lock().unwrap_or_else(|p| p.into_inner());
            plan.check_frame()
        };
        self.frames.fetch_add(1, Ordering::Relaxed);
        match fault {
            FrameFault::Deliver => {}
            FrameFault::Drop => {
                self.drops.fetch_add(1, Ordering::Relaxed);
            }
            FrameFault::Delay(ms) => {
                self.delays.fetch_add(1, Ordering::Relaxed);
                self.delayed_ms.fetch_add(ms, Ordering::Relaxed);
            }
            FrameFault::Duplicate => {
                self.duplicates.fetch_add(1, Ordering::Relaxed);
            }
            FrameFault::Truncate => {
                self.truncates.fetch_add(1, Ordering::Relaxed);
            }
            FrameFault::Reset => {
                self.resets.fetch_add(1, Ordering::Relaxed);
            }
        }
        fault
    }

    /// A snapshot of the fired-fault counters.
    pub fn stats(&self) -> NetFaultStats {
        NetFaultStats {
            frames: self.frames.load(Ordering::Relaxed),
            drops: self.drops.load(Ordering::Relaxed),
            delays: self.delays.load(Ordering::Relaxed),
            delayed_ms: self.delayed_ms.load(Ordering::Relaxed),
            duplicates: self.duplicates.load(Ordering::Relaxed),
            truncates: self.truncates.load(Ordering::Relaxed),
            resets: self.resets.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trip() {
        let text = "\
# chaos plan
seed 99

drop frame prob=0.25        # seeded coin per frame
delay frame nth=4 times=3 ms=25
duplicate frame every=10 permanent
truncate frame nth=7
reset conn nth=3
drop conn nth=9
";
        let plan = NetFaultPlan::parse(text).expect("plan parses");
        assert_eq!(plan.len(), 6);
    }

    #[test]
    fn parse_rejects_bad_lines() {
        assert!(NetFaultPlan::parse("explode frame nth=1").is_err());
        assert!(NetFaultPlan::parse("drop nth=1").is_err(), "missing scope");
        assert!(NetFaultPlan::parse("reset frame nth=1").is_err());
        assert!(NetFaultPlan::parse("delay conn ms=5").is_err());
        assert!(NetFaultPlan::parse("duplicate conn every=2").is_err());
        assert!(NetFaultPlan::parse("delay frame nth=1").is_err(), "no ms");
        assert!(NetFaultPlan::parse("drop frame ms=5").is_err());
        assert!(NetFaultPlan::parse("drop frame prob=1.5").is_err());
        assert!(NetFaultPlan::parse("drop frame times=2 permanent").is_err());
        let err = NetFaultPlan::parse("drop frame\nreset frame").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn nth_burst_fires_exactly_times() {
        let mut plan = NetFaultPlan::parse("drop frame nth=3 times=2").unwrap();
        let hits: Vec<bool> = (0..6)
            .map(|_| plan.check_frame() == FrameFault::Drop)
            .collect();
        assert_eq!(hits, [false, false, true, true, false, false]);
    }

    #[test]
    fn every_rule_fires_periodically_and_severity_orders() {
        let mut plan =
            NetFaultPlan::parse("duplicate frame every=2 permanent\ndrop frame nth=4").unwrap();
        let hits: Vec<FrameFault> = (0..6).map(|_| plan.check_frame()).collect();
        assert_eq!(
            hits,
            [
                FrameFault::Deliver,
                FrameFault::Duplicate,
                FrameFault::Deliver,
                // Both rules fire on frame 4; drop outranks duplicate.
                FrameFault::Drop,
                FrameFault::Deliver,
                FrameFault::Duplicate,
            ]
        );
    }

    #[test]
    fn prob_rule_is_deterministic_for_a_seed() {
        let run = |seed: u64| -> Vec<bool> {
            let mut plan =
                NetFaultPlan::parse(&format!("seed {seed}\ndrop frame prob=0.3 times=1000"))
                    .unwrap();
            (0..64)
                .map(|_| plan.check_frame() == FrameFault::Drop)
                .collect()
        };
        assert_eq!(run(7), run(7), "same seed, same schedule");
        assert_ne!(run(7), run(8), "different seed, different schedule");
    }

    #[test]
    fn injector_counts_fired_faults() {
        let inj = NetFaultInjector::new(
            NetFaultPlan::parse("delay frame nth=1 ms=1\nduplicate frame nth=2").unwrap(),
        );
        assert_eq!(inj.check_frame(), FrameFault::Delay(1));
        assert_eq!(inj.check_frame(), FrameFault::Duplicate);
        assert_eq!(inj.check_frame(), FrameFault::Deliver);
        let st = inj.stats();
        assert_eq!(st.frames, 3);
        assert_eq!(st.delays, 1);
        assert_eq!(st.delayed_ms, 1);
        assert_eq!(st.duplicates, 1);
        assert_eq!(st.injected(), 2);
        assert!(st.to_json().contains("\"duplicates\":1"));
    }
}
