//! Network-constrained traffic simulation.

use crate::rng::StdRng;
use crate::RoadNetwork;
use pdr_geometry::Point;
use pdr_mobject::{MotionState, ObjectId, ObjectTable, Timestamp, Update};

/// Named dataset sizes of Section 7 (CH40K / CH100K / CH500K).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DatasetSpec {
    /// Display name, e.g. `"CH100K"`.
    pub name: &'static str,
    /// Number of moving objects.
    pub n_objects: usize,
}

impl DatasetSpec {
    /// The paper's three datasets.
    pub const ALL: [DatasetSpec; 3] = [
        DatasetSpec {
            name: "CH40K",
            n_objects: 40_000,
        },
        DatasetSpec {
            name: "CH100K",
            n_objects: 100_000,
        },
        DatasetSpec {
            name: "CH500K",
            n_objects: 500_000,
        },
    ];

    /// The default dataset (CH100K).
    pub const DEFAULT: DatasetSpec = Self::ALL[1];
}

struct Vehicle {
    target: u32,
    arrival: f64,
    last_report: Timestamp,
}

/// Simulates vehicles traveling the road network edge by edge.
///
/// Protocol fidelity:
/// * each vehicle moves linearly along its current edge at a constant
///   speed drawn from a skewed 25–100 mph distribution (timestamps are
///   minutes, so 0.42–1.67 miles per timestamp);
/// * a vehicle re-reports when it reaches an intersection (new linear
///   motion toward the next edge) **or** when the maximum update time
///   `U` elapses since its last report, whichever comes first —
///   guaranteeing the paper's update-time bound;
/// * every report is a deletion of the old motion plus an insertion of
///   the new one, produced through an [`ObjectTable`].
pub struct TrafficSimulator {
    network: RoadNetwork,
    table: ObjectTable,
    vehicles: Vec<Vehicle>,
    rng: StdRng,
    t_now: Timestamp,
    max_update_time: u64,
}

impl TrafficSimulator {
    /// Minimum speed: 25 mph in miles per minute-timestamp.
    pub const SPEED_MIN: f64 = 25.0 / 60.0;
    /// Maximum speed: 100 mph in miles per minute-timestamp.
    pub const SPEED_MAX: f64 = 100.0 / 60.0;

    /// Creates a simulator with `n` vehicles placed at (busy-biased)
    /// network nodes, all reporting their initial motion at `t_start`.
    pub fn new(
        network: RoadNetwork,
        n: usize,
        seed: u64,
        max_update_time: u64,
        t_start: Timestamp,
    ) -> Self {
        let mut sim = TrafficSimulator {
            network,
            table: ObjectTable::with_capacity(n),
            vehicles: Vec::with_capacity(n),
            rng: StdRng::seed_from_u64(seed),
            t_now: t_start,
            max_update_time,
        };
        for i in 0..n {
            let id = ObjectId(i as u64);
            let origin = sim
                .network
                .random_busy_node(&mut sim.rng, sim.network.extent() * 0.05);
            let (motion, vehicle) = sim.plan_leg(sim.network.position(origin), origin, t_start);
            sim.table.report(id, t_start, motion);
            sim.vehicles.push(vehicle);
        }
        sim
    }

    /// Skewed speed draw: slow traffic dominates (cubed uniform).
    fn draw_speed(rng: &mut StdRng) -> f64 {
        let u: f64 = rng.random_range(0.0..1.0);
        Self::SPEED_MIN + (Self::SPEED_MAX - Self::SPEED_MIN) * u * u * u
    }

    /// Plans the next leg from `pos` standing at node `at`, returning
    /// the new motion and vehicle bookkeeping.
    fn plan_leg(&mut self, pos: Point, at: u32, t: Timestamp) -> (MotionState, Vehicle) {
        let neighbors = self.network.neighbors(at);
        let target = neighbors[self.rng.random_range(0..neighbors.len())];
        let dest = self.network.position(target);
        let dist = pos.distance(dest);
        let speed = Self::draw_speed(&mut self.rng);
        let velocity = match (dest - pos).normalized() {
            Some(dir) => dir * speed,
            None => Point::ORIGIN, // degenerate edge: stand still one leg
        };
        let arrival = if dist > 0.0 && speed > 0.0 {
            t as f64 + dist / speed
        } else {
            t as f64 + 1.0
        };
        (
            MotionState::new(pos, velocity, t),
            Vehicle {
                target,
                arrival,
                last_report: t,
            },
        )
    }

    /// Current simulation time.
    pub fn t_now(&self) -> Timestamp {
        self.t_now
    }

    /// The underlying network.
    pub fn network(&self) -> &RoadNetwork {
        &self.network
    }

    /// Number of simulated vehicles.
    pub fn len(&self) -> usize {
        self.vehicles.len()
    }

    /// `true` when no vehicles are simulated.
    pub fn is_empty(&self) -> bool {
        self.vehicles.is_empty()
    }

    /// Snapshot of every vehicle's current motion — the initial bulk
    /// load for the engines.
    pub fn population(&self) -> Vec<(ObjectId, MotionState)> {
        let mut v: Vec<(ObjectId, MotionState)> =
            self.table.objects().map(|o| (o.id, o.motion)).collect();
        v.sort_by_key(|(id, _)| *id);
        v
    }

    /// Ground-truth positions at `t` (for accuracy evaluation).
    pub fn positions_at(&self, t: Timestamp) -> Vec<Point> {
        self.table.positions_at(t)
    }

    /// Advances one timestamp and returns the protocol updates emitted
    /// by vehicles that reached an intersection or hit the `U` bound.
    pub fn tick(&mut self) -> Vec<Update> {
        self.t_now += 1;
        let t = self.t_now;
        let mut updates = Vec::new();
        for i in 0..self.vehicles.len() {
            let due_arrival = self.vehicles[i].arrival <= t as f64;
            let due_timeout = t - self.vehicles[i].last_report >= self.max_update_time;
            if !(due_arrival || due_timeout) {
                continue;
            }
            let id = ObjectId(i as u64);
            let old = self
                .table
                .motion_of(id)
                .expect("vehicle missing from table");
            let (pos, at_node) = if due_arrival {
                // Snap to the intersection it was heading to.
                let node = self.vehicles[i].target;
                (self.network.position(node), node)
            } else {
                // Mid-edge refresh: same heading, position extrapolated.
                (old.position_at(t), self.vehicles[i].target)
            };
            let (motion, vehicle) = if due_arrival {
                self.plan_leg(pos, at_node, t)
            } else {
                // Keep traveling to the same target with the same speed:
                // the report only refreshes the server's record.
                let dest = self.network.position(self.vehicles[i].target);
                let speed = old.velocity.norm();
                let velocity = match (dest - pos).normalized() {
                    Some(dir) => dir * speed.max(Self::SPEED_MIN),
                    None => Point::ORIGIN,
                };
                (
                    MotionState::new(pos, velocity, t),
                    Vehicle {
                        target: self.vehicles[i].target,
                        arrival: self.vehicles[i].arrival.max(t as f64),
                        last_report: t,
                    },
                )
            };
            self.vehicles[i] = vehicle;
            updates.extend(self.table.report(id, t, motion));
        }
        updates
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetworkConfig;
    use pdr_mobject::UpdateKind;

    fn sim(n: usize) -> TrafficSimulator {
        let net = RoadNetwork::generate(
            &NetworkConfig {
                extent: 1000.0,
                nodes: 400,
                hotspots: 4,
                spread: 0.05,
                background: 0.2,
                degree: 3,
            },
            7,
        );
        TrafficSimulator::new(net, n, 11, 60, 0)
    }

    #[test]
    fn population_is_complete_and_sorted() {
        let s = sim(200);
        let pop = s.population();
        assert_eq!(pop.len(), 200);
        for (i, (id, m)) in pop.iter().enumerate() {
            assert_eq!(id.0, i as u64);
            assert_eq!(m.t_ref, 0);
            assert!(m.origin.is_finite());
        }
    }

    #[test]
    fn speeds_within_bounds_and_skewed() {
        let s = sim(2000);
        let speeds: Vec<f64> = s
            .population()
            .iter()
            .map(|(_, m)| m.speed())
            .filter(|&v| v > 0.0)
            .collect();
        for &v in &speeds {
            let lo = TrafficSimulator::SPEED_MIN - 1e-9;
            let hi = TrafficSimulator::SPEED_MAX + 1e-9;
            assert!((lo..=hi).contains(&v), "speed {v} out of range");
        }
        // Skew: the median is well below the midpoint.
        let mut sorted = speeds.clone();
        sorted.sort_by(f64::total_cmp);
        let median = sorted[sorted.len() / 2];
        let midpoint = (TrafficSimulator::SPEED_MIN + TrafficSimulator::SPEED_MAX) / 2.0;
        assert!(median < midpoint, "median {median} not skewed slow");
    }

    #[test]
    fn ticks_emit_paired_updates() {
        let mut s = sim(300);
        let mut total = 0;
        for _ in 0..30 {
            let ups = s.tick();
            // Every re-report is a delete followed by an insert for the
            // same object at the same t.
            let mut i = 0;
            while i < ups.len() {
                match ups[i].kind {
                    UpdateKind::Delete { .. } => {
                        assert!(matches!(ups[i + 1].kind, UpdateKind::Insert { .. }));
                        assert_eq!(ups[i].id, ups[i + 1].id);
                        i += 2;
                    }
                    UpdateKind::Insert { .. } => i += 1,
                }
            }
            total += ups.len();
        }
        assert!(total > 0, "a 30-tick window must see some re-reports");
    }

    #[test]
    fn max_update_time_is_honored() {
        // With U = 5 every vehicle must re-report within any 6-tick
        // window; verify through the update stream.
        let net = RoadNetwork::generate(&NetworkConfig::metro(1000.0), 3);
        let mut s = TrafficSimulator::new(net, 100, 5, 5, 0);
        let mut last_seen = vec![0u64; 100];
        for _ in 0..12 {
            for u in s.tick() {
                if matches!(u.kind, UpdateKind::Insert { .. }) {
                    last_seen[u.id.0 as usize] = u.t_now;
                }
            }
        }
        for (i, &t) in last_seen.iter().enumerate() {
            assert!(12 - t <= 5, "vehicle {i} silent since t={t} (U violated)");
        }
    }

    #[test]
    fn determinism() {
        let mut a = sim(100);
        let mut b = sim(100);
        for _ in 0..10 {
            assert_eq!(a.tick().len(), b.tick().len());
        }
        // positions_at iterates a hash map: compare as sorted multisets.
        let sort = |mut v: Vec<pdr_geometry::Point>| {
            v.sort_by(|p, q| p.x.total_cmp(&q.x).then(p.y.total_cmp(&q.y)));
            v
        };
        assert_eq!(sort(a.positions_at(10)), sort(b.positions_at(10)));
    }
}
