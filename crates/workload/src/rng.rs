//! Self-contained deterministic PRNG for workload generation.
//!
//! The experiment environment builds with no network access, so this
//! module replaces the external `rand` crate with a SplitMix64
//! generator (Steele et al., "Fast splittable pseudorandom number
//! generators") exposing the two entry points the generators use:
//! [`StdRng::seed_from_u64`] and [`StdRng::random_range`]. Sequences
//! are fixed for a given seed and stable across platforms, which is
//! exactly what reproducible experiments need.

use std::ops::{Range, RangeInclusive};

/// A small, fast, seedable PRNG (SplitMix64). Not cryptographic.
#[derive(Clone, Debug)]
pub struct StdRng {
    state: u64,
}

impl StdRng {
    /// Creates a generator whose output sequence is a pure function of
    /// `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        StdRng { state: seed }
    }

    /// Next raw 64-bit output.
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw from `range`. Supported ranges: half-open and
    /// inclusive `f64` ranges, and half-open / inclusive integer ranges
    /// over `u32`, `u64`, and `usize`.
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    pub fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }
}

/// Range types [`StdRng::random_range`] can draw from.
pub trait SampleRange<T> {
    /// Draws one uniform sample from `self`.
    fn sample(self, rng: &mut StdRng) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut StdRng) -> f64 {
        assert!(self.start < self.end, "empty f64 range");
        self.start + (self.end - self.start) * rng.next_f64()
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample(self, rng: &mut StdRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty f64 range");
        // next_f64 never returns 1.0 exactly; scaling by (hi - lo)
        // still covers the closed interval to within one ulp, which is
        // all the workloads need.
        lo + (hi - lo) * rng.next_f64()
    }
}

fn sample_u64(rng: &mut StdRng, lo: u64, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Multiply-shift mapping (Lemire); bias is < 2^-32 for the spans
    // used here, far below what any workload property can observe.
    lo + ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

impl SampleRange<u32> for Range<u32> {
    fn sample(self, rng: &mut StdRng) -> u32 {
        assert!(self.start < self.end, "empty u32 range");
        sample_u64(rng, u64::from(self.start), u64::from(self.end - self.start)) as u32
    }
}

impl SampleRange<u64> for Range<u64> {
    fn sample(self, rng: &mut StdRng) -> u64 {
        assert!(self.start < self.end, "empty u64 range");
        sample_u64(rng, self.start, self.end - self.start)
    }
}

impl SampleRange<u64> for RangeInclusive<u64> {
    fn sample(self, rng: &mut StdRng) -> u64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty u64 range");
        if lo == 0 && hi == u64::MAX {
            return rng.next_u64();
        }
        sample_u64(rng, lo, hi - lo + 1)
    }
}

impl SampleRange<usize> for Range<usize> {
    fn sample(self, rng: &mut StdRng) -> usize {
        assert!(self.start < self.end, "empty usize range");
        sample_u64(rng, self.start as u64, (self.end - self.start) as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..32).map(|_| a.random_range(0..u64::MAX)).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.random_range(0..u64::MAX)).collect();
        let zs: Vec<u64> = (0..32).map(|_| c.random_range(0..u64::MAX)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let f = rng.random_range(2.5..3.5);
            assert!((2.5..3.5).contains(&f));
            let g = rng.random_range(-1.0..=1.0);
            assert!((-1.0..=1.0).contains(&g));
            let u: u32 = rng.random_range(10..20);
            assert!((10..20).contains(&u));
            let s: usize = rng.random_range(0..3);
            assert!(s < 3);
            let h: u64 = rng.random_range(0..=5);
            assert!(h <= 5);
        }
    }

    #[test]
    fn roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut buckets = [0usize; 10];
        for _ in 0..100_000 {
            buckets[rng.random_range(0..10usize)] += 1;
        }
        for &b in &buckets {
            assert!((9_000..11_000).contains(&b), "buckets {buckets:?}");
        }
    }
}
