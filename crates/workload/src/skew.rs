//! Skewed moving-object workload: Gaussian hotspot clusters over a
//! uniform background, with protocol-shaped churn and an optional
//! drifting-hotspot mode.
//!
//! [`gaussian_clusters`](crate::gaussian_clusters) produces a skewed
//! *snapshot*; this generator produces a skewed *stream*. Every object
//! belongs to a hotspot (or to the background), re-reports within the
//! update period `U` exactly as the PDR protocol assumes (delete by the
//! old motion, insert the new one), and steers toward its hotspot's
//! center — so density stays concentrated, and when drift is enabled
//! the concentration *moves*, which is precisely the load pattern an
//! adaptive shard plane must chase with splits and merges.
//!
//! Fully seeded: the same [`SkewConfig`] replays the same update
//! stream, so benches and differential fuzzers are reproducible.

use crate::rng::StdRng;
use pdr_geometry::Point;
use pdr_mobject::{MotionState, ObjectId, Timestamp, Update};

/// Knobs of the skewed stream.
#[derive(Clone, Copy, Debug)]
pub struct SkewConfig {
    /// Population size.
    pub objects: usize,
    /// Square domain edge; positions stay inside `[0, extent]²`.
    pub extent: f64,
    /// Gaussian hotspot count (≥ 1).
    pub hotspots: usize,
    /// Hotspot standard deviation in domain units.
    pub sigma: f64,
    /// Fraction of objects assigned to hotspots; the rest wander the
    /// whole domain uniformly.
    pub hotspot_fraction: f64,
    /// Maximum object speed per axis.
    pub v_max: f64,
    /// Hotspot center drift per tick, in domain units. `0.0` pins the
    /// hotspots (static skew); anything larger makes the dense region
    /// migrate, forcing topology changes rather than a one-time split.
    pub drift: f64,
    /// Update period `U`: every object re-reports at least once every
    /// `U` ticks (cohort `i % U` reports at tick `t ≡ i (mod U)`).
    pub update_period: u64,
    /// Stream seed.
    pub seed: u64,
}

impl Default for SkewConfig {
    fn default() -> Self {
        SkewConfig {
            objects: 2000,
            extent: 100.0,
            hotspots: 2,
            sigma: 4.0,
            hotspot_fraction: 0.85,
            v_max: 1.0,
            drift: 0.0,
            update_period: 4,
            seed: 7,
        }
    }
}

/// The generator: owns the hotspot centers, the per-object hotspot
/// assignment and the current motion of every object.
pub struct SkewedWorkload {
    cfg: SkewConfig,
    rng: StdRng,
    /// Hotspot centers with their drift headings (unit-ish vectors).
    centers: Vec<(Point, Point)>,
    /// `None` = background object; `Some(k)` = assigned to hotspot `k`.
    assignment: Vec<Option<usize>>,
    /// The motion each object last reported (what a router/engine that
    /// saw the whole stream would hold).
    motions: Vec<MotionState>,
}

fn gauss(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random_range(f64::EPSILON..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

impl SkewedWorkload {
    /// Builds the generator and samples the initial population at
    /// `t_ref = 0`.
    pub fn new(cfg: SkewConfig) -> SkewedWorkload {
        assert!(cfg.hotspots >= 1, "at least one hotspot required");
        assert!(cfg.update_period >= 1, "update period must be >= 1");
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let centers: Vec<(Point, Point)> = (0..cfg.hotspots)
            .map(|_| {
                let c = Point::new(
                    rng.random_range(0.2 * cfg.extent..0.8 * cfg.extent),
                    rng.random_range(0.2 * cfg.extent..0.8 * cfg.extent),
                );
                let ang: f64 = rng.random_range(0.0..2.0 * std::f64::consts::PI);
                (c, Point::new(ang.cos(), ang.sin()))
            })
            .collect();
        let mut w = SkewedWorkload {
            cfg,
            rng,
            centers,
            assignment: Vec::with_capacity(cfg.objects),
            motions: Vec::with_capacity(cfg.objects),
        };
        for _ in 0..cfg.objects {
            let hot = w.rng.random_range(0.0..1.0) < cfg.hotspot_fraction;
            let k = hot.then(|| w.rng.random_range(0..cfg.hotspots));
            w.assignment.push(k);
            let p = w.sample_position(k);
            let v = w.sample_velocity(k, p);
            w.motions.push(MotionState::new(p, v, 0));
        }
        w
    }

    /// The full population as last reported — seed it with `bulk_load`.
    pub fn population(&self) -> Vec<(ObjectId, MotionState)> {
        self.motions
            .iter()
            .enumerate()
            .map(|(i, m)| (ObjectId(i as u64), *m))
            .collect()
    }

    /// Current hotspot centers (after any drift so far).
    pub fn centers(&self) -> Vec<Point> {
        self.centers.iter().map(|(c, _)| *c).collect()
    }

    /// Advances the stream to tick `t_now` and returns the re-report
    /// batch: cohort `i ≡ t_now (mod U)` deletes its old motion and
    /// inserts a fresh report anchored at `t_now`. Hotspot centers
    /// drift first, so re-reports steer toward the *new* center.
    pub fn tick(&mut self, t_now: Timestamp) -> Vec<Update> {
        let e = self.cfg.extent;
        let drift = self.cfg.drift;
        if drift > 0.0 {
            for (c, dir) in &mut self.centers {
                c.x += dir.x * drift;
                c.y += dir.y * drift;
                // Bounce off a margin so hotspots never park on the
                // domain edge (a hotspot astride the boundary would
                // thin out through clamping).
                if c.x < 0.15 * e || c.x > 0.85 * e {
                    dir.x = -dir.x;
                    c.x = c.x.clamp(0.15 * e, 0.85 * e);
                }
                if c.y < 0.15 * e || c.y > 0.85 * e {
                    dir.y = -dir.y;
                    c.y = c.y.clamp(0.15 * e, 0.85 * e);
                }
            }
        }
        let u = self.cfg.update_period;
        let mut batch = Vec::new();
        for i in 0..self.cfg.objects {
            if (i as u64) % u != t_now % u {
                continue;
            }
            let old = self.motions[i];
            let id = ObjectId(i as u64);
            batch.push(Update::delete(id, t_now, old));
            // The fresh report continues from where the object actually
            // is, re-aimed at its (possibly drifted) hotspot.
            let mut p = old.position_at(t_now);
            p.x = p.x.clamp(0.0, e);
            p.y = p.y.clamp(0.0, e);
            let v = self.sample_velocity(self.assignment[i], p);
            let m = MotionState::new(p, v, t_now);
            batch.push(Update::insert(id, t_now, m));
            self.motions[i] = m;
        }
        batch
    }

    fn sample_position(&mut self, k: Option<usize>) -> Point {
        let e = self.cfg.extent;
        match k {
            None => Point::new(self.rng.random_range(0.0..e), self.rng.random_range(0.0..e)),
            Some(k) => {
                let c = self.centers[k].0;
                loop {
                    let q = Point::new(
                        c.x + gauss(&mut self.rng) * self.cfg.sigma,
                        c.y + gauss(&mut self.rng) * self.cfg.sigma,
                    );
                    if q.x >= 0.0 && q.x <= e && q.y >= 0.0 && q.y <= e {
                        break q;
                    }
                }
            }
        }
    }

    /// Background objects wander uniformly; hotspot objects head for a
    /// jittered point near their center, at a speed that closes the
    /// gap without overshooting `v_max`.
    fn sample_velocity(&mut self, k: Option<usize>, from: Point) -> Point {
        let v_max = self.cfg.v_max;
        match k {
            None => Point::new(
                self.rng.random_range(-v_max..=v_max),
                self.rng.random_range(-v_max..=v_max),
            ),
            Some(k) => {
                let c = self.centers[k].0;
                let target = Point::new(
                    c.x + gauss(&mut self.rng) * self.cfg.sigma,
                    c.y + gauss(&mut self.rng) * self.cfg.sigma,
                );
                let dx = target.x - from.x;
                let dy = target.y - from.y;
                let dist = (dx * dx + dy * dy).sqrt();
                if dist < 1e-12 {
                    return Point::new(0.0, 0.0);
                }
                // Cover the gap over roughly one update period, capped.
                let speed = (dist / self.cfg.update_period as f64)
                    .min(v_max * self.rng.random_range(0.5..1.0));
                Point::new(dx / dist * speed, dy / dist * speed)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn share_near(pop: &[(ObjectId, MotionState)], c: Point, r: f64, t: Timestamp) -> f64 {
        let n = pop
            .iter()
            .filter(|(_, m)| m.position_at(t).distance_sq(c) < r * r)
            .count();
        n as f64 / pop.len() as f64
    }

    #[test]
    fn stream_is_deterministic() {
        let cfg = SkewConfig {
            drift: 0.5,
            ..Default::default()
        };
        let mut a = SkewedWorkload::new(cfg);
        let mut b = SkewedWorkload::new(cfg);
        assert_eq!(a.population(), b.population());
        for t in 1..=6 {
            assert_eq!(a.tick(t), b.tick(t), "tick {t}");
        }
    }

    #[test]
    fn hotspots_stay_dense_under_churn() {
        let cfg = SkewConfig {
            objects: 3000,
            hotspots: 1,
            hotspot_fraction: 0.8,
            ..Default::default()
        };
        let mut w = SkewedWorkload::new(cfg);
        for t in 1..=12 {
            w.tick(t);
        }
        let c = w.centers()[0];
        // 80% of mass targets a σ=4 blob in a 100×100 domain: the
        // 3σ-disk share must vastly exceed its ~0.45% area share.
        let share = share_near(&w.population(), c, 3.0 * cfg.sigma, 12);
        assert!(share > 0.4, "hotspot share {share}");
    }

    #[test]
    fn drifting_hotspot_moves_the_mass() {
        // Drift slower than `v_max`, or the population can never catch
        // a center that outruns every object.
        let cfg = SkewConfig {
            objects: 2000,
            hotspots: 1,
            hotspot_fraction: 0.9,
            drift: 0.4,
            update_period: 2,
            ..Default::default()
        };
        let mut w = SkewedWorkload::new(cfg);
        let start = w.centers()[0];
        for t in 1..=60 {
            w.tick(t);
        }
        let end = w.centers()[0];
        assert!(
            start.distance_sq(end) > 25.0,
            "center barely moved: {start:?} -> {end:?}"
        );
        // The population followed the center.
        let share = share_near(&w.population(), end, 3.0 * cfg.sigma, 60);
        assert!(share > 0.3, "mass did not follow the drift: {share}");
    }

    #[test]
    fn churn_is_protocol_shaped() {
        let cfg = SkewConfig::default();
        let mut w = SkewedWorkload::new(cfg);
        let batch = w.tick(1);
        assert!(!batch.is_empty());
        for pair in batch.chunks(2) {
            let [del, ins] = pair else {
                panic!("odd batch")
            };
            assert!(matches!(del.kind, pdr_mobject::UpdateKind::Delete { .. }));
            assert!(matches!(ins.kind, pdr_mobject::UpdateKind::Insert { .. }));
            assert_eq!(del.id, ins.id);
            assert_eq!(del.t_now, 1);
            assert_eq!(ins.t_now, 1);
        }
    }
}
