//! Simple non-network generators for tests and ablations.

use crate::rng::StdRng;
use pdr_geometry::Point;
use pdr_mobject::{MotionState, ObjectId, Timestamp};

/// Uniformly distributed objects with uniform velocities in
/// `[-v_max, v_max]` per axis. The unskewed control workload.
pub fn uniform_population(
    n: usize,
    extent: f64,
    v_max: f64,
    seed: u64,
    t_ref: Timestamp,
) -> Vec<(ObjectId, MotionState)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let p = Point::new(rng.random_range(0.0..extent), rng.random_range(0.0..extent));
            let v = Point::new(
                rng.random_range(-v_max..=v_max),
                rng.random_range(-v_max..=v_max),
            );
            (ObjectId(i as u64), MotionState::new(p, v, t_ref))
        })
        .collect()
}

/// Objects drawn from `clusters` Gaussian blobs (plus a uniform
/// background fraction), with uniform velocities. A heavily skewed
/// workload with controllable cluster geometry — the stress test for
/// approximation accuracy.
#[allow(clippy::too_many_arguments)] // a flat parameter list mirrors the generator's knobs
pub fn gaussian_clusters(
    n: usize,
    extent: f64,
    clusters: usize,
    sigma: f64,
    background: f64,
    v_max: f64,
    seed: u64,
    t_ref: Timestamp,
) -> Vec<(ObjectId, MotionState)> {
    assert!(clusters >= 1, "at least one cluster required");
    let mut rng = StdRng::seed_from_u64(seed);
    let centers: Vec<Point> = (0..clusters)
        .map(|_| {
            Point::new(
                rng.random_range(0.15 * extent..0.85 * extent),
                rng.random_range(0.15 * extent..0.85 * extent),
            )
        })
        .collect();
    (0..n)
        .map(|i| {
            let p = if rng.random_range(0.0..1.0) < background {
                Point::new(rng.random_range(0.0..extent), rng.random_range(0.0..extent))
            } else {
                let c = centers[rng.random_range(0..clusters)];
                loop {
                    let q =
                        Point::new(c.x + gauss(&mut rng) * sigma, c.y + gauss(&mut rng) * sigma);
                    if q.x >= 0.0 && q.x <= extent && q.y >= 0.0 && q.y <= extent {
                        break q;
                    }
                }
            };
            let v = Point::new(
                rng.random_range(-v_max..=v_max),
                rng.random_range(-v_max..=v_max),
            );
            (ObjectId(i as u64), MotionState::new(p, v, t_ref))
        })
        .collect()
}

fn gauss(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random_range(f64::EPSILON..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_fills_the_plane() {
        let pop = uniform_population(4000, 100.0, 1.0, 1, 0);
        assert_eq!(pop.len(), 4000);
        // Quadrant counts roughly equal.
        let mut q = [0usize; 4];
        for (_, m) in &pop {
            let i = (m.origin.x >= 50.0) as usize + 2 * (m.origin.y >= 50.0) as usize;
            q[i] += 1;
        }
        for &c in &q {
            assert!((800..=1200).contains(&c), "quadrants {q:?}");
        }
    }

    #[test]
    fn clusters_are_skewed() {
        let pop = gaussian_clusters(4000, 1000.0, 3, 20.0, 0.1, 1.0, 2, 0);
        // Count points within 60 units of the best cluster center found
        // by sampling; expect a large share.
        let dense_share = {
            let mut best = 0;
            for (_, probe) in pop.iter().take(50) {
                let c = probe.origin;
                let near = pop
                    .iter()
                    .filter(|(_, m)| m.origin.distance_sq(c) < 60.0 * 60.0)
                    .count();
                best = best.max(near);
            }
            best as f64 / pop.len() as f64
        };
        assert!(
            dense_share > 0.15,
            "expected clustering, share {dense_share}"
        );
    }

    #[test]
    fn deterministic_by_seed() {
        let a = uniform_population(100, 100.0, 1.0, 7, 0);
        let b = uniform_population(100, 100.0, 1.0, 7, 0);
        assert_eq!(a, b);
        let c = uniform_population(100, 100.0, 1.0, 8, 0);
        assert_ne!(a, c);
    }
}
