//! Query workload generation (Section 7: "For each configuration, we
//! ran a query workload and reported the average performance per
//! query").

use crate::config::ExperimentConfig;
use crate::rng::StdRng;
use pdr_mobject::Timestamp;

/// One generated PDR query instance: the three parameters of
/// Definition 4, already resolved to an absolute threshold.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct QuerySpec {
    /// Absolute density threshold `ρ`.
    pub rho: f64,
    /// Relative threshold ϱ it was derived from.
    pub varrho: f64,
    /// Neighborhood edge length `l`.
    pub l: f64,
    /// Query timestamp, uniform in `[t_now, t_now + H]`.
    pub q_t: Timestamp,
}

/// Generates the paper's query workload: each query draws `q_t`
/// uniformly from the horizon window anchored at `t_now`, and cycles
/// `l` and ϱ through the configured sets (so every combination is
/// exercised evenly, as the figures require).
pub fn query_workload(
    cfg: &ExperimentConfig,
    n_objects: usize,
    t_now: Timestamp,
    count: usize,
    seed: u64,
) -> Vec<QuerySpec> {
    assert!(count > 0, "empty workload requested");
    let mut rng = StdRng::seed_from_u64(seed);
    let h = cfg.horizon();
    (0..count)
        .map(|i| {
            let l = cfg.edge_lengths[i % cfg.edge_lengths.len()];
            let varrho = cfg.relative_thresholds
                [(i / cfg.edge_lengths.len()) % cfg.relative_thresholds.len()];
            let q_t = t_now + rng.random_range(0..=h);
            QuerySpec {
                rho: cfg.rho(varrho, n_objects),
                varrho,
                l,
                q_t,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_covers_parameter_sets() {
        let cfg = ExperimentConfig::default();
        let qs = query_workload(&cfg, 100_000, 50, 40, 7);
        assert_eq!(qs.len(), 40);
        // All l values and all varrho values appear.
        for &l in &cfg.edge_lengths {
            assert!(qs.iter().any(|q| q.l == l), "missing l = {l}");
        }
        for &v in &cfg.relative_thresholds {
            assert!(qs.iter().any(|q| q.varrho == v), "missing varrho = {v}");
        }
        // Timestamps stay inside the horizon window.
        for q in &qs {
            assert!(q.q_t >= 50 && q.q_t <= 50 + cfg.horizon());
            // rho resolves per the paper's formula.
            let expect = 100_000.0 * q.varrho / (cfg.extent * cfg.extent);
            assert!((q.rho - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn deterministic_by_seed() {
        let cfg = ExperimentConfig::default();
        let a = query_workload(&cfg, 1000, 0, 10, 3);
        let b = query_workload(&cfg, 1000, 0, 10, 3);
        assert_eq!(a, b);
        let c = query_workload(&cfg, 1000, 0, 10, 4);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "empty workload")]
    fn rejects_zero_count() {
        let cfg = ExperimentConfig::default();
        let _ = query_workload(&cfg, 1000, 0, 0, 3);
    }
}
