//! Workload generation for the PDR experiments.
//!
//! The paper generates moving objects with the method of Forlizzi et
//! al. over the **Chicago metropolitan road network** on a 1000 × 1000
//! mile plane (datasets CH40K / CH100K / CH500K). The real network is
//! not redistributable, so this crate substitutes a *synthetic* road
//! network with the properties the experiments actually exercise:
//!
//! * heavy spatial skew — intersections cluster around a city core and
//!   satellite hot-spots, so genuinely dense regions exist at every
//!   threshold the paper sweeps;
//! * network-constrained, piecewise-linear movement — objects travel
//!   from intersection to intersection and re-report on arrival (or
//!   when the maximum update time `U` forces them to), producing the
//!   same insert/delete update stream shape;
//! * skewed speeds in 25–100 mph, slow traffic dominating.
//!
//! See DESIGN.md for the substitution rationale. The crate also ships
//! simpler uniform/Gaussian generators used by tests and ablations, and
//! [`config`] reproduces Table 1's experimental setup.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod net;
pub mod netfault;
mod network;
mod queries;
pub mod rng;
mod serve;
mod simple;
mod simulator;
mod skew;

pub use net::{NetClient, NetServer, NetServerConfig};
pub use netfault::{FrameFault, NetFaultInjector, NetFaultPlan, NetFaultStats};
pub use network::{NetworkConfig, RoadNetwork};
pub use queries::{query_workload, QuerySpec};
pub use rng::StdRng;
pub use serve::{
    default_deadline, ClientLoad, EngineLoad, FaultPolicy, QueryMix, ServeDriver, ServeReport,
};
pub use simple::{gaussian_clusters, uniform_population};
pub use simulator::{DatasetSpec, TrafficSimulator};
pub use skew::{SkewConfig, SkewedWorkload};
