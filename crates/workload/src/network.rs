//! Synthetic hot-spot road networks.

use crate::rng::StdRng;
use pdr_geometry::{Point, Rect};

/// Parameters of the synthetic network generator.
#[derive(Clone, Copy, Debug)]
pub struct NetworkConfig {
    /// Side length of the covered square region.
    pub extent: f64,
    /// Number of intersection nodes.
    pub nodes: usize,
    /// Number of Gaussian hot-spots (the first is the "downtown" core
    /// with the largest weight).
    pub hotspots: usize,
    /// Standard deviation of node placement around a hot-spot, as a
    /// fraction of the extent.
    pub spread: f64,
    /// Fraction of nodes placed uniformly (rural background).
    pub background: f64,
    /// Edges per node (each node connects to its nearest neighbors).
    pub degree: usize,
}

impl NetworkConfig {
    /// A metro-like default on the paper's 1000-mile plane: 4000
    /// intersections, a dominant core plus 7 satellites, 15 % rural.
    pub fn metro(extent: f64) -> Self {
        NetworkConfig {
            extent,
            nodes: 4000,
            hotspots: 8,
            spread: 0.045,
            background: 0.15,
            degree: 3,
        }
    }
}

/// An undirected road network: intersection positions plus adjacency.
///
/// The generator guarantees every node has at least one neighbor, so a
/// simulated vehicle can always pick a next edge.
#[derive(Clone, Debug)]
pub struct RoadNetwork {
    extent: f64,
    nodes: Vec<Point>,
    adjacency: Vec<Vec<u32>>,
}

impl RoadNetwork {
    /// Generates a network deterministically from `seed`.
    ///
    /// # Panics
    ///
    /// Panics on fewer than 2 nodes or zero hot-spots.
    pub fn generate(cfg: &NetworkConfig, seed: u64) -> Self {
        assert!(cfg.nodes >= 2, "a network needs at least 2 nodes");
        assert!(cfg.hotspots >= 1, "at least one hot-spot required");
        let mut rng = StdRng::seed_from_u64(seed);

        // Hot-spot centers: the core near the middle, satellites spread.
        let mut centers = Vec::with_capacity(cfg.hotspots);
        let mut weights = Vec::with_capacity(cfg.hotspots);
        for i in 0..cfg.hotspots {
            let c = if i == 0 {
                Point::new(
                    cfg.extent * rng.random_range(0.4..0.6),
                    cfg.extent * rng.random_range(0.4..0.6),
                )
            } else {
                Point::new(
                    cfg.extent * rng.random_range(0.1..0.9),
                    cfg.extent * rng.random_range(0.1..0.9),
                )
            };
            centers.push(c);
            // Core weight dominates; satellites fall off.
            weights.push(if i == 0 { 4.0 } else { 1.0 });
        }
        let weight_sum: f64 = weights.iter().sum();

        // Sample node positions.
        let bounds = Rect::new(0.0, 0.0, cfg.extent, cfg.extent);
        let sigma = cfg.spread * cfg.extent;
        let mut nodes = Vec::with_capacity(cfg.nodes);
        while nodes.len() < cfg.nodes {
            let p = if rng.random_range(0.0..1.0) < cfg.background {
                Point::new(
                    rng.random_range(0.0..cfg.extent),
                    rng.random_range(0.0..cfg.extent),
                )
            } else {
                // Pick a hot-spot by weight; place around it.
                let mut pick = rng.random_range(0.0..weight_sum);
                let mut idx = 0;
                for (i, w) in weights.iter().enumerate() {
                    if pick < *w {
                        idx = i;
                        break;
                    }
                    pick -= w;
                }
                let c = centers[idx];
                Point::new(c.x + gauss(&mut rng) * sigma, c.y + gauss(&mut rng) * sigma)
            };
            if bounds.contains(p) {
                nodes.push(p);
            }
        }

        // k-nearest-neighbor edges via a uniform bucket grid.
        let adjacency = knn_edges(&nodes, cfg.degree.max(1), cfg.extent);
        RoadNetwork {
            extent: cfg.extent,
            nodes,
            adjacency,
        }
    }

    /// Side length of the covered region.
    pub fn extent(&self) -> f64 {
        self.extent
    }

    /// Number of intersections.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Position of a node.
    pub fn position(&self, node: u32) -> Point {
        self.nodes[node as usize]
    }

    /// Neighbors of a node (never empty).
    pub fn neighbors(&self, node: u32) -> &[u32] {
        &self.adjacency[node as usize]
    }

    /// A uniformly random node id.
    pub fn random_node(&self, rng: &mut StdRng) -> u32 {
        rng.random_range(0..self.nodes.len() as u32)
    }

    /// A random node biased toward dense areas: sample two, keep the
    /// one with more neighbors within `radius`. Cheap proxy for
    /// population-weighted trip origins.
    pub fn random_busy_node(&self, rng: &mut StdRng, radius: f64) -> u32 {
        let a = self.random_node(rng);
        let b = self.random_node(rng);
        let near = |n: u32| {
            let p = self.position(n);
            self.nodes
                .iter()
                .filter(|q| p.distance_sq(**q) < radius * radius)
                .count()
        };
        if near(a) >= near(b) {
            a
        } else {
            b
        }
    }
}

/// Box–Muller standard normal.
fn gauss(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random_range(f64::EPSILON..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Connects each node to its `k` nearest neighbors (symmetrized), via a
/// bucket grid so generation stays O(n·k) in practice. Guarantees at
/// least one neighbor per node by falling back to a linear scan for
/// isolated nodes.
fn knn_edges(nodes: &[Point], k: usize, extent: f64) -> Vec<Vec<u32>> {
    let n = nodes.len();
    let buckets_per_side = ((n as f64).sqrt() as usize).clamp(1, 512);
    let cell = extent / buckets_per_side as f64;
    let mut grid: Vec<Vec<u32>> = vec![Vec::new(); buckets_per_side * buckets_per_side];
    let bucket_of = |p: Point| {
        let bx = ((p.x / cell) as usize).min(buckets_per_side - 1);
        let by = ((p.y / cell) as usize).min(buckets_per_side - 1);
        by * buckets_per_side + bx
    };
    for (i, p) in nodes.iter().enumerate() {
        grid[bucket_of(*p)].push(i as u32);
    }

    let mut adjacency: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (i, p) in nodes.iter().enumerate() {
        // Expand bucket shells outward until the k-th nearest candidate
        // is provably closer than anything still unexplored. Buckets at
        // Chebyshev bucket-distance > radius only hold points farther
        // than `radius · cell` from `p` (a point in a bucket at index
        // distance b is at least `(b − 1) · cell` away), so once
        // `d_k ≤ radius · cell` no unexplored node can displace the
        // current top k. Stopping at the first shell with > k
        // candidates instead — the old rule — can miss a true nearest
        // neighbor one shell out while a farther same-shell candidate
        // makes the cut.
        let bx = ((p.x / cell) as usize).min(buckets_per_side - 1) as i64;
        let by = ((p.y / cell) as usize).min(buckets_per_side - 1) as i64;
        let side = buckets_per_side as i64;
        let mut candidates: Vec<u32> = Vec::new();
        let mut radius = 0i64;
        loop {
            // Collect the shell of buckets at exactly `radius`.
            for dy in -radius..=radius {
                for dx in -radius..=radius {
                    if dx.abs().max(dy.abs()) != radius {
                        continue;
                    }
                    let (cx, cy) = (bx + dx, by + dy);
                    if cx < 0 || cy < 0 || cx >= side || cy >= side {
                        continue;
                    }
                    for &j in &grid[cy as usize * side as usize + cx as usize] {
                        if j as usize != i {
                            candidates.push(j);
                        }
                    }
                }
            }
            if candidates.len() >= k {
                let mut dists: Vec<f64> = candidates
                    .iter()
                    .map(|&j| p.distance_sq(nodes[j as usize]))
                    .collect();
                let (_, kth, _) = dists.select_nth_unstable_by(k - 1, |a, b| a.total_cmp(b));
                let safe = radius as f64 * cell;
                if *kth <= safe * safe {
                    break;
                }
            }
            if radius >= side {
                break; // whole grid swept
            }
            radius += 1;
        }
        if candidates.len() < k {
            // Sparse network: fall back to all nodes.
            candidates = (0..n as u32).filter(|&j| j as usize != i).collect();
        }
        candidates.sort_by(|&a, &b| {
            p.distance_sq(nodes[a as usize])
                .total_cmp(&p.distance_sq(nodes[b as usize]))
        });
        candidates.truncate(k);
        for j in candidates {
            if !adjacency[i].contains(&j) {
                adjacency[i].push(j);
            }
            if !adjacency[j as usize].contains(&(i as u32)) {
                adjacency[j as usize].push(i as u32);
            }
        }
    }
    adjacency
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> RoadNetwork {
        RoadNetwork::generate(
            &NetworkConfig {
                extent: 1000.0,
                nodes: 500,
                hotspots: 4,
                spread: 0.05,
                background: 0.2,
                degree: 3,
            },
            42,
        )
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small();
        let b = small();
        assert_eq!(a.node_count(), b.node_count());
        for i in 0..a.node_count() as u32 {
            assert_eq!(a.position(i), b.position(i));
            assert_eq!(a.neighbors(i), b.neighbors(i));
        }
    }

    #[test]
    fn all_nodes_in_bounds_and_connected() {
        let net = small();
        let bounds = Rect::new(0.0, 0.0, 1000.0, 1000.0);
        for i in 0..net.node_count() as u32 {
            assert!(bounds.contains(net.position(i)));
            assert!(!net.neighbors(i).is_empty(), "node {i} isolated");
            for &j in net.neighbors(i) {
                assert!(net.neighbors(j).contains(&i), "edge {i}-{j} not symmetric");
            }
        }
    }

    #[test]
    fn network_is_spatially_skewed() {
        // Split the plane into 16 quadrant cells; the most populated
        // cell should hold several times the average.
        let net = small();
        let mut counts = [0usize; 16];
        for i in 0..net.node_count() as u32 {
            let p = net.position(i);
            let cx = ((p.x / 250.0) as usize).min(3);
            let cy = ((p.y / 250.0) as usize).min(3);
            counts[cy * 4 + cx] += 1;
        }
        let max = *counts.iter().max().unwrap();
        let avg = net.node_count() / 16;
        assert!(
            max > 2 * avg,
            "expected hot-spot skew, max cell {max} vs avg {avg}"
        );
    }

    /// Cross-check the bucket-grid kNN against brute force: for every
    /// node, all strictly-closer nodes than its true k-th nearest must
    /// be adjacent, and at least k neighbors lie within that radius.
    /// (The grid used to stop at the first bucket ring holding > k
    /// candidates, which can miss a true nearest neighbor sitting just
    /// outside the ring while a farther in-ring candidate makes the
    /// cut.)
    #[test]
    fn knn_edges_match_brute_force() {
        let k = 4usize;
        let net = RoadNetwork::generate(
            &NetworkConfig {
                extent: 500.0,
                nodes: 200,
                hotspots: 3,
                spread: 0.04,
                background: 0.25,
                degree: k,
            },
            99,
        );
        for i in 0..net.node_count() as u32 {
            let p = net.position(i);
            let mut ds: Vec<(u32, f64)> = (0..net.node_count() as u32)
                .filter(|&j| j != i)
                .map(|j| (j, p.distance_sq(net.position(j))))
                .collect();
            ds.sort_by(|a, b| a.1.total_cmp(&b.1));
            let d_k = ds[k - 1].1;
            for &(j, d) in ds.iter().take_while(|&&(_, d)| d < d_k) {
                assert!(
                    net.neighbors(i).contains(&j),
                    "node {i} is missing true nearest neighbor {j} \
                     (d = {:.2} < k-th nearest {:.2})",
                    d.sqrt(),
                    d_k.sqrt()
                );
            }
            let within = net
                .neighbors(i)
                .iter()
                .filter(|&&j| p.distance_sq(net.position(j)) <= d_k)
                .count();
            assert!(
                within >= k,
                "node {i}: only {within} neighbors within its true k-NN radius"
            );
        }
    }

    #[test]
    fn busy_node_bias() {
        let net = small();
        let mut rng = StdRng::seed_from_u64(1);
        // Smoke test: busy nodes exist and are valid ids.
        for _ in 0..10 {
            let n = net.random_busy_node(&mut rng, 50.0);
            assert!((n as usize) < net.node_count());
        }
    }
}
