//! The shared ingest/serve driver: one loop that pumps simulator
//! ticks into any set of [`DensityEngine`]s and runs a query mix
//! against them.
//!
//! Before this module every consumer — `pdrcli`, the benches, the
//! experiment binaries — hand-wired its own advance/apply/query loop
//! per engine. [`ServeDriver`] is that loop, written once:
//!
//! ```text
//!   TrafficSimulator ──tick()──► Vec<Update> ──apply_batch──► engine 1
//!            │                                      ├────────► engine 2
//!            │                                      └────────► …
//!            └──positions_at(q_t)──► ground truth ──accuracy──┘
//! ```
//!
//! Per tick the driver advances every engine's horizon *first*, then
//! applies the tick's updates (which are stamped with the new
//! timestamp), then executes the next slice of the query mix against
//! every engine through `&self` — the engines' shared-read contract.
//! Optionally each answer is scored against the brute-force ground
//! truth computed from the simulator's own object table.

use crate::simulator::TrafficSimulator;
use crate::QuerySpec;
use pdr_core::obs::{json_f64, Histogram, HistogramSnapshot, ObsReport};
use pdr_core::{accuracy, exact_dense_regions, DensityEngine, EngineStats, PdrQuery};
use pdr_geometry::{Rect, RegionSet};
use pdr_mobject::Timestamp;
use pdr_storage::{CostModel, IoStats};
use std::time::Instant;

/// The query side of a serve run: which queries to execute, how many
/// per tick, and whether to score answers against ground truth.
#[derive(Clone, Debug)]
pub struct QueryMix {
    specs: Vec<QuerySpec>,
    anchor: Timestamp,
    per_tick: usize,
    measure_accuracy: bool,
}

impl QueryMix {
    /// Creates a mix from generated query specs. `anchor` is the
    /// `t_now` the specs were generated for: at serve time each spec's
    /// timestamp is re-anchored to the current tick, so its horizon
    /// offset (`q_t - anchor`) is preserved as the clock advances.
    ///
    /// Mid-stream, a report may be up to `U` ticks old, so its horizon
    /// coverage `[t_report, t_report + H]` only guarantees
    /// `[now, now + W]`. Keep offsets within the prediction window `W`
    /// — offsets in `(W, H]` are answerable right after a bulk load but
    /// degrade into false negatives once the update stream ages.
    pub fn new(specs: Vec<QuerySpec>, anchor: Timestamp, per_tick: usize) -> Self {
        assert!(!specs.is_empty(), "empty query mix");
        QueryMix {
            specs,
            anchor,
            per_tick,
            measure_accuracy: false,
        }
    }

    /// Also score every answer against the brute-force ground truth
    /// (adds an exact sweep per query — fine for experiment scales).
    pub fn with_accuracy(mut self) -> Self {
        self.measure_accuracy = true;
        self
    }

    /// The underlying specs.
    pub fn specs(&self) -> &[QuerySpec] {
        &self.specs
    }
}

/// Per-engine accumulated load over a serve run.
#[derive(Clone, Debug)]
pub struct EngineLoad {
    /// Engine label (unique within the driver).
    pub label: String,
    /// Engine-reported name (`"fr"`, `"pa"`, …).
    pub engine: &'static str,
    /// Queries executed.
    pub queries: u64,
    /// Summed query CPU milliseconds.
    pub cpu_ms: f64,
    /// Summed buffer-pool I/O across queries.
    pub io: IoStats,
    /// Summed total cost (CPU + I/O charge) under the run's cost model.
    pub total_ms: f64,
    /// Milliseconds spent applying update batches.
    pub ingest_ms: f64,
    /// Summed false-positive ratio `r_fp` over the scored queries whose
    /// ratio was *bounded* (see [`unbounded_r_fp`](Self::unbounded_r_fp)).
    pub r_fp_sum: f64,
    /// Summed false-negative ratio `r_fn` (when accuracy is measured).
    pub r_fn_sum: f64,
    /// Queries that were scored against ground truth.
    pub scored: u64,
    /// Scored queries whose `r_fp` was unbounded: the ground truth was
    /// empty but the engine reported a nonempty region, so the ratio
    /// `area(D'∖D)/area(D)` is +∞. Summing those into
    /// [`r_fp_sum`](Self::r_fp_sum) would poison every later mean, so
    /// they are counted here instead and excluded from the sum.
    pub unbounded_r_fp: u64,
    /// Final engine stats snapshot.
    pub stats: EngineStats,
    /// Per-query CPU latency distribution over the run.
    pub latency: HistogramSnapshot,
    /// Final engine instrumentation snapshot (stage latencies, internal
    /// counters); empty for engines without instrumentation.
    pub obs: ObsReport,
}

impl EngineLoad {
    fn new(label: String, engine: &'static str) -> Self {
        EngineLoad {
            label,
            engine,
            queries: 0,
            cpu_ms: 0.0,
            io: IoStats::default(),
            total_ms: 0.0,
            ingest_ms: 0.0,
            r_fp_sum: 0.0,
            r_fn_sum: 0.0,
            scored: 0,
            unbounded_r_fp: 0,
            stats: EngineStats::default(),
            latency: HistogramSnapshot::default(),
            obs: ObsReport::default(),
        }
    }

    /// Mean total query cost in milliseconds.
    pub fn mean_total_ms(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.total_ms / self.queries as f64
        }
    }

    /// Mean false-positive ratio over the scored queries with a
    /// *bounded* ratio — always finite. Queries whose truth was empty
    /// while the engine reported something are excluded from the mean
    /// and counted in [`unbounded_r_fp`](Self::unbounded_r_fp); report
    /// that count alongside the mean when it is nonzero.
    pub fn mean_r_fp(&self) -> f64 {
        let bounded = self.scored - self.unbounded_r_fp;
        if bounded == 0 {
            0.0
        } else {
            self.r_fp_sum / bounded as f64
        }
    }

    /// Mean false-negative ratio over scored queries.
    pub fn mean_r_fn(&self) -> f64 {
        if self.scored == 0 {
            0.0
        } else {
            self.r_fn_sum / self.scored as f64
        }
    }
}

/// Result of a serve run.
#[derive(Clone, Debug)]
pub struct ServeReport {
    /// Ticks driven.
    pub ticks: u64,
    /// Protocol updates the simulator emitted (and every engine
    /// applied).
    pub updates: u64,
    /// Per-tick ingest time (horizon advance + batch apply across all
    /// engines) distribution.
    pub tick_ingest: HistogramSnapshot,
    /// Per-tick query-slice time (the whole mix slice across all
    /// engines, including ground-truth computation when scoring).
    pub tick_query: HistogramSnapshot,
    /// Per-engine accumulated load, in registration order.
    pub engines: Vec<EngineLoad>,
}

/// Escapes a string for embedding in a JSON document.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn io_json(io: &IoStats) -> String {
    format!(
        "{{\"logical_reads\":{},\"misses\":{},\"evictions\":{},\"writebacks\":{},\"physical_ios\":{}}}",
        io.logical_reads,
        io.misses,
        io.evictions,
        io.writebacks,
        io.physical_ios()
    )
}

impl ServeReport {
    /// Serializes the whole report as a JSON document (no external
    /// dependencies — see `pdr_core::obs`). The schema is documented in
    /// `EXPERIMENTS.md`; `pdrcli serve --metrics <path>` writes exactly
    /// this string, and the benches and experiment binaries reuse it.
    pub fn to_json(&self) -> String {
        let engines = self
            .engines
            .iter()
            .map(|e| {
                format!(
                    "{{\"label\":{},\"engine\":{},\"queries\":{},\"cpu_ms\":{},\"total_ms\":{},\
                     \"ingest_ms\":{},\"scored\":{},\"unbounded_r_fp\":{},\"mean_r_fp\":{},\
                     \"mean_r_fn\":{},\"io\":{},\"latency_us\":{},\"stats\":{{\
                     \"updates_applied\":{},\"missed_deletes\":{},\"memory_bytes\":{},\
                     \"objects\":{},\"queries_served\":{}}},\"obs\":{}}}",
                    json_str(&e.label),
                    json_str(e.engine),
                    e.queries,
                    json_f64(e.cpu_ms),
                    json_f64(e.total_ms),
                    json_f64(e.ingest_ms),
                    e.scored,
                    e.unbounded_r_fp,
                    json_f64(e.mean_r_fp()),
                    json_f64(e.mean_r_fn()),
                    io_json(&e.io),
                    e.latency.to_json(),
                    e.stats.updates_applied,
                    e.stats.missed_deletes,
                    e.stats.memory_bytes,
                    e.stats.objects,
                    e.stats.queries_served,
                    e.obs.to_json(),
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "{{\"ticks\":{},\"updates\":{},\"tick_ingest_us\":{},\"tick_query_us\":{},\"engines\":[{}]}}",
            self.ticks,
            self.updates,
            self.tick_ingest.to_json(),
            self.tick_query.to_json(),
            engines
        )
    }
}

struct Served {
    label: String,
    engine: Box<dyn DensityEngine>,
    load: EngineLoad,
    latency: Histogram,
}

/// Owns a [`TrafficSimulator`] and any number of boxed engines; drives
/// ingest and queries through the [`DensityEngine`] contract only.
pub struct ServeDriver {
    sim: TrafficSimulator,
    engines: Vec<Served>,
    model: CostModel,
    cursor: usize,
    tick_ingest: Histogram,
    tick_query: Histogram,
}

impl ServeDriver {
    /// Creates a driver around a simulator; costs are charged under
    /// `model`.
    pub fn new(sim: TrafficSimulator, model: CostModel) -> Self {
        ServeDriver {
            sim,
            engines: Vec::new(),
            model,
            cursor: 0,
            tick_ingest: Histogram::new(),
            tick_query: Histogram::new(),
        }
    }

    /// Registers an engine under `label` (builder style).
    pub fn with_engine(mut self, label: &str, engine: Box<dyn DensityEngine>) -> Self {
        self.add_engine(label, engine);
        self
    }

    /// Registers an engine under `label`.
    pub fn add_engine(&mut self, label: &str, engine: Box<dyn DensityEngine>) {
        assert!(
            self.engines.iter().all(|s| s.label != label),
            "duplicate engine label {label:?}"
        );
        let name = engine.name();
        self.engines.push(Served {
            label: label.to_string(),
            engine,
            load: EngineLoad::new(label.to_string(), name),
            latency: Histogram::new(),
        });
    }

    /// The simulator (read access: population, positions, time).
    pub fn simulator(&self) -> &TrafficSimulator {
        &self.sim
    }

    /// The engine registered under `label`, if any.
    pub fn engine(&self, label: &str) -> Option<&dyn DensityEngine> {
        self.engines
            .iter()
            .find(|s| s.label == label)
            .map(|s| s.engine.as_ref())
    }

    /// The monitored region (the simulator network's square extent).
    pub fn bounds(&self) -> Rect {
        let extent = self.sim.network().extent();
        Rect::new(0.0, 0.0, extent, extent)
    }

    /// Bulk-loads the simulator's current population into every engine.
    /// Call once, before ticking.
    pub fn bootstrap(&mut self) {
        let pop = self.sim.population();
        let t = self.sim.t_now();
        for s in &mut self.engines {
            let start = Instant::now();
            s.engine.bulk_load(&pop, t);
            s.load.ingest_ms += start.elapsed().as_secs_f64() * 1e3;
        }
    }

    /// Drives one simulator tick through every engine: advances each
    /// horizon to the new timestamp, then applies the tick's updates.
    /// Returns the number of protocol updates applied.
    pub fn tick(&mut self) -> usize {
        let t_next = self.sim.t_now() + 1;
        for s in &mut self.engines {
            let start = Instant::now();
            s.engine.advance_to(t_next);
            s.load.ingest_ms += start.elapsed().as_secs_f64() * 1e3;
        }
        let updates = self.sim.tick();
        for s in &mut self.engines {
            let start = Instant::now();
            s.engine.apply_batch(&updates);
            s.load.ingest_ms += start.elapsed().as_secs_f64() * 1e3;
        }
        updates.len()
    }

    /// Brute-force ground truth for `q` from the simulator's own table.
    pub fn ground_truth(&self, q: &PdrQuery) -> RegionSet {
        exact_dense_regions(&self.sim.positions_at(q.q_t), &self.bounds(), q)
    }

    /// Executes one query against every engine, accumulating load (and
    /// accuracy when `truth` is given). Returns the answers in engine
    /// registration order.
    pub fn query_all(&mut self, q: &PdrQuery, truth: Option<&RegionSet>) -> Vec<RegionSet> {
        let model = self.model;
        let mut answers = Vec::with_capacity(self.engines.len());
        for s in &mut self.engines {
            let a = s.engine.query(q);
            s.load.queries += 1;
            s.load.cpu_ms += a.cpu.as_secs_f64() * 1e3;
            s.load.io += a.io;
            s.load.total_ms += a.total_ms(&model);
            s.latency.record(a.cpu);
            if let Some(truth) = truth {
                let acc = accuracy(truth, &a.regions);
                // An empty truth with a nonempty report makes r_fp +∞
                // (`pdr_core::accuracy`). One such query must not poison
                // the running sum — count it separately instead.
                if acc.r_fp.is_finite() {
                    s.load.r_fp_sum += acc.r_fp;
                } else {
                    s.load.unbounded_r_fp += 1;
                }
                s.load.r_fn_sum += acc.r_fn;
                s.load.scored += 1;
            }
            answers.push(a.regions);
        }
        answers
    }

    /// The serve loop: `ticks` simulator ticks, executing
    /// `mix.per_tick` queries from the mix after each tick (cycling
    /// through the mix, re-anchored to the current clock). Returns the
    /// accumulated report; the driver can keep running afterwards.
    pub fn run(&mut self, ticks: u64, mix: &QueryMix) -> ServeReport {
        let mut updates = 0u64;
        for _ in 0..ticks {
            let ingest_start = Instant::now();
            updates += self.tick() as u64;
            self.tick_ingest.record(ingest_start.elapsed());
            let now = self.sim.t_now();
            let query_start = Instant::now();
            for _ in 0..mix.per_tick {
                let spec = mix.specs[self.cursor % mix.specs.len()];
                self.cursor += 1;
                let q_t = now + spec.q_t.saturating_sub(mix.anchor);
                let q = PdrQuery::new(spec.rho, spec.l, q_t);
                let truth = mix.measure_accuracy.then(|| self.ground_truth(&q));
                self.query_all(&q, truth.as_ref());
            }
            self.tick_query.record(query_start.elapsed());
        }
        self.report(ticks, updates)
    }

    fn report(&self, ticks: u64, updates: u64) -> ServeReport {
        ServeReport {
            ticks,
            updates,
            tick_ingest: self.tick_ingest.snapshot(),
            tick_query: self.tick_query.snapshot(),
            engines: self
                .engines
                .iter()
                .map(|s| {
                    let mut load = s.load.clone();
                    load.stats = s.engine.stats();
                    load.latency = s.latency.snapshot();
                    load.obs = s.engine.obs();
                    load
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NetworkConfig, RoadNetwork};
    use pdr_core::{EngineAnswer, EngineSpec, FrConfig, PaConfig};
    use pdr_mobject::{TimeHorizon, Update};
    use std::time::Duration;

    fn driver(n: usize) -> ServeDriver {
        let net = RoadNetwork::generate(
            &NetworkConfig {
                extent: 200.0,
                nodes: 150,
                hotspots: 3,
                spread: 0.05,
                background: 0.2,
                degree: 3,
            },
            13,
        );
        let sim = TrafficSimulator::new(net, n, 17, 4, 0);
        let horizon = TimeHorizon::new(4, 4);
        let fr = FrConfig {
            extent: 200.0,
            m: 40,
            horizon,
            buffer_pages: 64,
            threads: 1,
        };
        let pa = PaConfig {
            extent: 200.0,
            g: 5,
            degree: 4,
            l: 20.0,
            horizon,
            m_d: 100,
        };
        ServeDriver::new(sim, CostModel::PAPER_DEFAULT)
            .with_engine("fr", EngineSpec::Fr(fr).build(0))
            .with_engine("pa", EngineSpec::Pa(pa).build(0))
    }

    fn mix() -> QueryMix {
        let specs: Vec<QuerySpec> = (0..4)
            .map(|i| QuerySpec {
                rho: 6.0 / 400.0,
                varrho: 1.0,
                l: 20.0,
                q_t: i % 4,
            })
            .collect();
        QueryMix::new(specs, 0, 2)
    }

    #[test]
    fn serve_loop_feeds_every_engine_identically() {
        let mut d = driver(300);
        d.bootstrap();
        let report = d.run(5, &mix());
        assert_eq!(report.ticks, 5);
        assert!(report.updates > 0, "5 ticks with U=4 must emit reports");
        assert_eq!(report.engines.len(), 2);
        let expected_updates = 300 + report.updates;
        for load in &report.engines {
            assert_eq!(
                load.stats.updates_applied, expected_updates,
                "{}: every engine must see bootstrap + all tick updates",
                load.label
            );
            assert_eq!(load.stats.missed_deletes, 0, "{}", load.label);
            assert_eq!(load.queries, 10, "{}", load.label);
            assert!(load.ingest_ms >= 0.0 && load.total_ms >= 0.0);
        }
        assert_eq!(report.engines[0].engine, "fr");
        assert_eq!(report.engines[1].engine, "pa");
    }

    #[test]
    fn accuracy_scoring_favors_the_exact_engine() {
        let mut d = driver(400);
        d.bootstrap();
        let report = d.run(3, &mix().with_accuracy());
        let fr = &report.engines[0];
        let pa = &report.engines[1];
        assert_eq!(fr.scored, 6);
        assert_eq!(pa.scored, 6);
        // FR is exact: both error ratios are (numerically) zero.
        assert!(
            fr.mean_r_fp() < 1e-9 && fr.mean_r_fn() < 1e-9,
            "FR must match ground truth exactly (r_fp {}, r_fn {})",
            fr.mean_r_fp(),
            fr.mean_r_fn()
        );
        // PA is approximate: finite, typically nonzero error.
        assert!(pa.mean_r_fp().is_finite() && pa.mean_r_fn().is_finite());
    }

    #[test]
    fn query_all_preserves_registration_order_and_truth_is_exact() {
        let mut d = driver(200);
        d.bootstrap();
        d.tick();
        let q = PdrQuery::new(6.0 / 400.0, 20.0, d.simulator().t_now());
        let truth = d.ground_truth(&q);
        let answers = d.query_all(&q, Some(&truth));
        assert_eq!(answers.len(), 2);
        // FR (registered first) equals the ground truth region.
        assert!(answers[0].symmetric_difference_area(&truth) < 1e-9);
    }

    /// A deterministic engine that always reports one fixed rectangle,
    /// so the empty-truth / nonempty-report case is exercised without
    /// depending on an approximate engine's numerical wiggle.
    struct StubEngine {
        rect: Rect,
        updates: u64,
    }

    impl DensityEngine for StubEngine {
        fn name(&self) -> &'static str {
            "stub"
        }
        fn apply_batch(&mut self, updates: &[Update]) {
            self.updates += updates.len() as u64;
        }
        fn advance_to(&mut self, _t_now: Timestamp) {}
        fn query(&self, _q: &PdrQuery) -> EngineAnswer {
            EngineAnswer {
                regions: RegionSet::from_rects([self.rect]),
                cpu: Duration::from_micros(1),
                io: IoStats::default(),
                exact: false,
            }
        }
        fn stats(&self) -> EngineStats {
            EngineStats {
                updates_applied: self.updates,
                ..EngineStats::default()
            }
        }
    }

    /// Regression: a scored query with empty ground truth and a
    /// nonempty report has `r_fp = +∞`. The serve loop used to add it
    /// straight into `r_fp_sum`, turning every subsequent `mean_r_fp`
    /// into +∞ for the rest of the run. It must instead be counted in
    /// `unbounded_r_fp` and excluded from the (finite) mean.
    #[test]
    fn empty_truth_queries_do_not_poison_mean_r_fp() {
        let net = RoadNetwork::generate(&NetworkConfig::metro(200.0), 5);
        let sim = TrafficSimulator::new(net, 50, 23, 4, 0);
        let mut d = ServeDriver::new(sim, CostModel::PAPER_DEFAULT)
            .with_engine(
                "stub",
                Box::new(StubEngine {
                    rect: Rect::new(10.0, 10.0, 30.0, 30.0),
                    updates: 0,
                }),
            )
            .with_engine(
                "fr",
                EngineSpec::Fr(FrConfig {
                    extent: 200.0,
                    m: 40,
                    horizon: TimeHorizon::new(4, 4),
                    buffer_pages: 64,
                    threads: 1,
                })
                .build(0),
            );
        d.bootstrap();
        // ρ = 10 objects per unit² is unreachable with 50 objects on a
        // 200×200 plane: ground truth is empty at every query.
        let specs = vec![QuerySpec {
            rho: 10.0,
            varrho: 1.0,
            l: 20.0,
            q_t: 0,
        }];
        let report = d.run(4, &QueryMix::new(specs, 0, 2).with_accuracy());
        let stub = &report.engines[0];
        assert_eq!(stub.scored, 8);
        assert_eq!(
            stub.unbounded_r_fp, 8,
            "every scored stub query has empty truth + nonempty report"
        );
        assert_eq!(stub.r_fp_sum, 0.0, "unbounded ratios must not be summed");
        assert!(
            stub.mean_r_fp().is_finite(),
            "mean_r_fp poisoned: {}",
            stub.mean_r_fp()
        );
        // FR reports empty for an empty truth: bounded, exact, zero.
        let fr = &report.engines[1];
        assert_eq!(fr.unbounded_r_fp, 0);
        assert!(fr.mean_r_fp().is_finite() && fr.mean_r_fp() < 1e-9);
        // The JSON report carries the unbounded count per engine.
        let json = report.to_json();
        assert!(json.contains("\"unbounded_r_fp\":8"));
        assert!(!json.contains("inf"), "JSON must stay parseable: {json}");
    }

    #[test]
    fn report_json_exposes_stage_timings_and_quantiles() {
        let mut d = driver(300);
        d.bootstrap();
        let report = d.run(4, &mix().with_accuracy());
        // Engine-level instrumentation made it into the report...
        let fr = &report.engines[0];
        assert_eq!(fr.latency.count, 8, "one latency sample per query");
        assert!(fr.obs.counter("queries") == Some(8));
        assert!(fr.obs.stage("classify").is_some());
        assert_eq!(fr.stats.queries_served, 8);
        let pa = &report.engines[1];
        assert!(
            pa.obs.counter("bnb_expanded").unwrap() > 0,
            "PA must report branch-and-bound node counts"
        );
        assert_eq!(report.tick_ingest.count, 4, "one ingest sample per tick");
        assert_eq!(report.tick_query.count, 4);
        // ...and the JSON schema carries every required key.
        let json = report.to_json();
        for key in [
            "\"ticks\":4",
            "\"engines\":[",
            "\"tick_ingest_us\":",
            "\"tick_query_us\":",
            "\"latency_us\":",
            "\"p99_us\":",
            "\"unbounded_r_fp\":",
            "\"classify\":",
            "\"bnb_expanded\":",
            "\"queries_served\":",
            "\"physical_ios\":",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert!(!json.contains("inf") && !json.contains("NaN"));
    }

    #[test]
    #[should_panic(expected = "duplicate engine label")]
    fn duplicate_labels_are_rejected() {
        let net = RoadNetwork::generate(&NetworkConfig::metro(100.0), 1);
        let sim = TrafficSimulator::new(net, 10, 1, 4, 0);
        let horizon = TimeHorizon::new(2, 2);
        let cfg = FrConfig {
            extent: 100.0,
            m: 20,
            horizon,
            buffer_pages: 16,
            threads: 1,
        };
        let _ = ServeDriver::new(sim, CostModel::PAPER_DEFAULT)
            .with_engine("fr", EngineSpec::Fr(cfg).build(0))
            .with_engine("fr", EngineSpec::Fr(cfg).build(0));
    }
}
