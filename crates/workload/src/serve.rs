//! The shared ingest/serve driver: one loop that pumps simulator
//! ticks into any set of [`DensityEngine`]s and runs a query mix
//! against them.
//!
//! Before this module every consumer — `pdrcli`, the benches, the
//! experiment binaries — hand-wired its own advance/apply/query loop
//! per engine. [`ServeDriver`] is that loop, written once:
//!
//! ```text
//!   TrafficSimulator ──tick()──► Vec<Update> ──apply_batch──► engine 1
//!            │                                      ├────────► engine 2
//!            │                                      └────────► …
//!            └──positions_at(q_t)──► ground truth ──accuracy──┘
//! ```
//!
//! Per tick the driver advances every engine's horizon *first*, then
//! applies the tick's updates (which are stamped with the new
//! timestamp), then executes the next slice of the query mix against
//! every engine through `&self` — the engines' shared-read contract.
//! Optionally each answer is scored against the brute-force ground
//! truth computed from the simulator's own object table.

use crate::simulator::TrafficSimulator;
use crate::QuerySpec;
use pdr_core::obs::{json_f64, Histogram, HistogramSnapshot, ObsReport};
use pdr_core::{
    accuracy, exact_dense_regions, replay, AnswerDelta, DensityEngine, EngineAnswer, EngineStats,
    Executor, PdrQuery, QtPolicy, Scoreboard, StorageError, SubError, SubId, Subscription,
    SubscriptionTable, Wal, WalCodec, WalRecord,
};
use pdr_geometry::{Rect, RegionSet};
use pdr_mobject::Timestamp;
use pdr_storage::{CostModel, FaultPlan, FaultStats, IoStats};
use std::time::{Duration, Instant};

/// The query side of a serve run: which queries to execute, how many
/// per tick, and whether to score answers against ground truth.
#[derive(Clone, Debug)]
pub struct QueryMix {
    specs: Vec<QuerySpec>,
    anchor: Timestamp,
    per_tick: usize,
    measure_accuracy: bool,
    clients: usize,
    subs: Option<SubMix>,
}

/// The standing-subscription side of a serve run: how many
/// subscriptions each engine carries, how often they churn, and whether
/// the maintained answers are verified against from-scratch queries.
#[derive(Clone, Copy, Debug)]
pub struct SubMix {
    /// Standing subscriptions registered on every engine.
    pub count: usize,
    /// Every this many ticks the oldest subscription is unregistered
    /// and a fresh one registered (0 = no churn).
    pub churn_every: u64,
    /// Check every maintained answer each tick against a from-scratch
    /// query clipped to the region — exact rect equality. Leave off
    /// when benchmarking maintenance cost (the checks recompute what
    /// the incremental path is there to avoid).
    pub verify: bool,
}

impl QueryMix {
    /// Creates a mix from generated query specs. `anchor` is the
    /// `t_now` the specs were generated for: at serve time each spec's
    /// timestamp is re-anchored to the current tick, so its horizon
    /// offset (`q_t - anchor`) is preserved as the clock advances.
    ///
    /// Mid-stream, a report may be up to `U` ticks old, so its horizon
    /// coverage `[t_report, t_report + H]` only guarantees
    /// `[now, now + W]`. Keep offsets within the prediction window `W`
    /// — offsets in `(W, H]` are answerable right after a bulk load but
    /// degrade into false negatives once the update stream ages.
    pub fn new(specs: Vec<QuerySpec>, anchor: Timestamp, per_tick: usize) -> Self {
        assert!(!specs.is_empty(), "empty query mix");
        QueryMix {
            specs,
            anchor,
            per_tick,
            measure_accuracy: false,
            clients: 1,
            subs: None,
        }
    }

    /// Also score every answer against the brute-force ground truth
    /// (adds an exact sweep per query — fine for experiment scales).
    pub fn with_accuracy(mut self) -> Self {
        self.measure_accuracy = true;
        self
    }

    /// Serves the per-tick query slice from `n` concurrent clients
    /// instead of one. Each client issues its own `per_tick` queries
    /// (total load scales with `n`) against the shared engines through
    /// the read-only [`DensityEngine::try_query`] contract, so client
    /// concurrency composes with the intra-query parallelism running on
    /// the shared [`Executor`]. Query assignment stays a pure function
    /// of the mix cursor, and fault handling runs on the exclusive
    /// serial path after the concurrent phase joins — answers are
    /// bit-identical to a single-client run over the same assignments.
    ///
    /// `n == 1` (the default) keeps the original single-threaded slice.
    pub fn with_clients(mut self, n: usize) -> Self {
        assert!(n > 0, "at least one client");
        self.clients = n;
        self
    }

    /// Also carry `count` standing subscriptions per engine, drawn from
    /// the mix's specs (region of interest and `q_t` policy derived
    /// deterministically), churned every `churn_every` ticks (0 = no
    /// churn). With `verify`, each maintained answer is checked against
    /// a from-scratch query every tick — exact rect equality.
    pub fn with_subscriptions(mut self, count: usize, churn_every: u64, verify: bool) -> Self {
        assert!(count > 0, "at least one subscription");
        self.subs = Some(SubMix {
            count,
            churn_every,
            verify,
        });
        self
    }

    /// The subscription side of the mix, if enabled.
    pub fn subscriptions(&self) -> Option<SubMix> {
        self.subs
    }

    /// The underlying specs.
    pub fn specs(&self) -> &[QuerySpec] {
        &self.specs
    }

    /// Concurrent clients serving the per-tick slice.
    pub fn clients(&self) -> usize {
        self.clients
    }
}

/// How the serve loop reacts to storage faults: bounded retry with
/// seeded jittered backoff for transient faults, checkpoint+WAL
/// recovery for detected corruption, graceful degradation otherwise,
/// all under an optional per-query deadline.
#[derive(Clone, Copy, Debug)]
pub struct FaultPolicy {
    /// Query attempts before giving up on transient faults (counting
    /// the first try).
    pub max_attempts: u32,
    /// Base backoff before the first retry, in microseconds; doubles
    /// per attempt.
    pub backoff_base_us: u64,
    /// Backoff ceiling in microseconds.
    pub backoff_cap_us: u64,
    /// Seed of the jitter generator — runs with the same seed, plan
    /// and workload retry at identical points.
    pub seed: u64,
    /// Per-query deadline: when retries/recovery would exceed it, the
    /// query degrades immediately and the miss is counted.
    pub deadline: Option<Duration>,
}

/// The default per-query deadline, scaled to the host: the 250 ms
/// budget assumes at least 8 cores' worth of refinement parallelism.
/// Below that, concurrent clients queue on the smaller shared executor
/// and wall-clock latency grows roughly inversely with the core count,
/// so the budget is scaled by `8 / n_cpu` — with a 5 s floor at 1 CPU,
/// where queueing dominates outright. Without the scaling, a 1-CPU host
/// reports 100% deadline misses in `BENCH_serve_concurrency` that are a
/// policy artifact, not a serving regression.
pub fn default_deadline() -> Duration {
    let ncpu = std::thread::available_parallelism().map_or(1, |n| n.get());
    if ncpu >= 8 {
        Duration::from_millis(250)
    } else if ncpu == 1 {
        Duration::from_secs(5)
    } else {
        Duration::from_millis(250 * 8 / ncpu as u64)
    }
}

impl Default for FaultPolicy {
    fn default() -> Self {
        FaultPolicy {
            max_attempts: 4,
            backoff_base_us: 50,
            backoff_cap_us: 2_000,
            seed: 0x5EED,
            deadline: Some(default_deadline()),
        }
    }
}

/// Per-engine accumulated load over a serve run.
#[derive(Clone, Debug)]
pub struct EngineLoad {
    /// Engine label (unique within the driver).
    pub label: String,
    /// Engine-reported name (`"fr"`, `"pa"`, …).
    pub engine: &'static str,
    /// Per-query cost and accuracy rollup (executed/scored counts,
    /// summed cost, bounded/unbounded `r_fp` bookkeeping) — the shared
    /// [`Scoreboard`] used by the bench scorecards too.
    pub score: Scoreboard,
    /// Milliseconds spent applying update batches.
    pub ingest_ms: f64,
    /// Query attempts repeated after a transient storage fault.
    pub retries: u64,
    /// Checkpoint+WAL recoveries performed after detected corruption.
    pub recoveries: u64,
    /// Queries answered by the filter-only degraded path after
    /// retries/recovery could not produce an exact answer.
    pub degraded_queries: u64,
    /// Queries that produced no answer at all (fault persisted and the
    /// engine has no degraded mode).
    pub failed_queries: u64,
    /// Queries whose deadline expired during retries/recovery.
    pub deadline_misses: u64,
    /// Injected-fault / checksum-failure counters from the engine's
    /// storage plane.
    pub faults: FaultStats,
    /// Recovery-time distribution (restore + WAL tail replay).
    pub recovery_us: HistogramSnapshot,
    /// Final engine stats snapshot.
    pub stats: EngineStats,
    /// Per-query CPU latency distribution over the run.
    pub latency: HistogramSnapshot,
    /// Final engine instrumentation snapshot (stage latencies, internal
    /// counters); empty for engines without instrumentation.
    pub obs: ObsReport,
    /// Per-shard metrics block (raw JSON array) for sharded engines;
    /// `None` for unsharded ones. See
    /// `pdr_core::DensityEngine::shard_metrics_json`.
    pub shards: Option<String>,
    /// Standing subscriptions registered on the engine at report time.
    pub subs: u64,
    /// Answer deltas consumed from the engine's maintenance path.
    pub sub_deltas: u64,
    /// Delta-replay / from-scratch oracle checks performed.
    pub sub_checks: u64,
    /// Checks where a delta-maintained answer diverged from the
    /// from-scratch one (an exactness bug — must stay 0).
    pub sub_divergence: u64,
}

impl EngineLoad {
    fn new(label: String, engine: &'static str) -> Self {
        EngineLoad {
            label,
            engine,
            score: Scoreboard::default(),
            ingest_ms: 0.0,
            retries: 0,
            recoveries: 0,
            degraded_queries: 0,
            failed_queries: 0,
            deadline_misses: 0,
            faults: FaultStats::default(),
            recovery_us: HistogramSnapshot::default(),
            stats: EngineStats::default(),
            latency: HistogramSnapshot::default(),
            obs: ObsReport::default(),
            shards: None,
            subs: 0,
            sub_deltas: 0,
            sub_checks: 0,
            sub_divergence: 0,
        }
    }

    /// Mean total query cost in milliseconds.
    pub fn mean_total_ms(&self) -> f64 {
        self.score.mean_total_ms()
    }

    /// Mean false-positive ratio over the scored queries with a
    /// *bounded* ratio — always finite (0 when nothing qualified).
    /// Queries whose truth was empty while the engine reported
    /// something are excluded from the mean and counted in
    /// [`Scoreboard::unbounded_r_fp`]; report that count alongside the
    /// mean when it is nonzero.
    pub fn mean_r_fp(&self) -> f64 {
        self.score.mean_r_fp().unwrap_or(0.0)
    }

    /// Mean false-negative ratio over scored queries (0 when none).
    pub fn mean_r_fn(&self) -> f64 {
        self.score.mean_r_fn().unwrap_or(0.0)
    }
}

/// Per-client accumulated load over a concurrent serve run (empty for
/// single-client runs, which keep the original serial slice).
#[derive(Clone, Debug)]
pub struct ClientLoad {
    /// Client index, `0..clients`.
    pub client: usize,
    /// Requests this client issued (one per engine per query).
    pub queries: u64,
    /// Requests whose wall-clock latency exceeded the policy deadline
    /// as observed by the client (includes queueing on the shared
    /// executor, unlike the engine-side CPU latency).
    pub deadline_misses: u64,
    /// Client-observed wall-clock latency distribution.
    pub latency: HistogramSnapshot,
}

impl ClientLoad {
    fn to_json(&self) -> String {
        format!(
            "{{\"client\":{},\"queries\":{},\"deadline_misses\":{},\"latency_us\":{}}}",
            self.client,
            self.queries,
            self.deadline_misses,
            self.latency.to_json()
        )
    }
}

/// Result of a serve run.
#[derive(Clone, Debug)]
pub struct ServeReport {
    /// Ticks driven.
    pub ticks: u64,
    /// Protocol updates the simulator emitted (and every engine
    /// applied).
    pub updates: u64,
    /// Per-tick ingest time (horizon advance + batch apply across all
    /// engines) distribution.
    pub tick_ingest: HistogramSnapshot,
    /// Per-tick query-slice time (the whole mix slice across all
    /// engines, including ground-truth computation when scoring).
    pub tick_query: HistogramSnapshot,
    /// Per-engine accumulated load, in registration order.
    pub engines: Vec<EngineLoad>,
    /// Per-client load for concurrent-client runs (empty otherwise).
    pub clients: Vec<ClientLoad>,
    /// Worker threads in the shared process-wide executor.
    pub pool_workers: usize,
    /// Executor counters (queue depth, steals, parked time, …) sampled
    /// when the report was built.
    pub exec: ObsReport,
}

/// Escapes a string for embedding in a JSON document.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn faults_json(f: &FaultStats) -> String {
    format!(
        "{{\"read_faults\":{},\"write_faults\":{},\"torn_writes\":{},\"crc_failures\":{},\"injected\":{}}}",
        f.read_faults,
        f.write_faults,
        f.torn_writes,
        f.crc_failures,
        f.injected()
    )
}

fn io_json(io: &IoStats) -> String {
    format!(
        "{{\"logical_reads\":{},\"misses\":{},\"evictions\":{},\"writebacks\":{},\"physical_ios\":{}}}",
        io.logical_reads,
        io.misses,
        io.evictions,
        io.writebacks,
        io.physical_ios()
    )
}

impl ServeReport {
    /// Serializes the whole report as a JSON document (no external
    /// dependencies — see `pdr_core::obs`). The schema is documented in
    /// `EXPERIMENTS.md`; `pdrcli serve --metrics <path>` writes exactly
    /// this string, and the benches and experiment binaries reuse it.
    pub fn to_json(&self) -> String {
        let engines = self
            .engines
            .iter()
            .map(|e| {
                let shards = e
                    .shards
                    .as_ref()
                    .map(|s| format!(",\"shards\":{s}"))
                    .unwrap_or_default();
                format!(
                    "{{\"label\":{},\"engine\":{},\"queries\":{},\"cpu_ms\":{},\"total_ms\":{},\
                     \"ingest_ms\":{},\"scored\":{},\"unbounded_r_fp\":{},\"mean_r_fp\":{},\
                     \"mean_r_fn\":{},\"io\":{},\"latency_us\":{},\
                     \"retries\":{},\"recoveries\":{},\"degraded_queries\":{},\
                     \"failed_queries\":{},\"deadline_misses\":{},\
                     \"subs\":{},\"sub_deltas\":{},\"sub_checks\":{},\
                     \"sub_divergence\":{},\"faults\":{},\
                     \"recovery_us\":{},\"stats\":{{\
                     \"updates_applied\":{},\"missed_deletes\":{},\"rejected_updates\":{},\
                     \"memory_bytes\":{},\"objects\":{},\"queries_served\":{}}},\"obs\":{}{}}}",
                    json_str(&e.label),
                    json_str(e.engine),
                    e.score.queries,
                    json_f64(e.score.cpu_ms),
                    json_f64(e.score.total_ms),
                    json_f64(e.ingest_ms),
                    e.score.scored,
                    e.score.unbounded_r_fp,
                    json_f64(e.mean_r_fp()),
                    json_f64(e.mean_r_fn()),
                    io_json(&e.score.io),
                    e.latency.to_json(),
                    e.retries,
                    e.recoveries,
                    e.degraded_queries,
                    e.failed_queries,
                    e.deadline_misses,
                    e.subs,
                    e.sub_deltas,
                    e.sub_checks,
                    e.sub_divergence,
                    faults_json(&e.faults),
                    e.recovery_us.to_json(),
                    e.stats.updates_applied,
                    e.stats.missed_deletes,
                    e.stats.rejected_updates,
                    e.stats.memory_bytes,
                    e.stats.objects,
                    e.stats.queries_served,
                    e.obs.to_json(),
                    shards,
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        let faults_injected: u64 = self.engines.iter().map(|e| e.faults.injected()).sum();
        let clients = self
            .clients
            .iter()
            .map(ClientLoad::to_json)
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "{{\"ticks\":{},\"updates\":{},\"faults_injected\":{},\"tick_ingest_us\":{},\
             \"tick_query_us\":{},\"pool_workers\":{},\"exec\":{},\"clients\":[{}],\
             \"engines\":[{}]}}",
            self.ticks,
            self.updates,
            faults_injected,
            self.tick_ingest.to_json(),
            self.tick_query.to_json(),
            self.pool_workers,
            self.exec.to_json(),
            clients,
            engines
        )
    }
}

struct Served {
    label: String,
    engine: Box<dyn DensityEngine>,
    load: EngineLoad,
    latency: Histogram,
    recovery: Histogram,
    /// Latest sealed checkpoint and the WAL offset it replays from.
    checkpoint: Option<(usize, Vec<u8>)>,
    /// Set when the engine's device failed persistently and could not
    /// be recovered: ingest stops (the device is unusable) and every
    /// query is answered by the filter-only degraded path from the
    /// last consistent in-memory density surface.
    degraded_mode: bool,
    /// One delta-replayed answer mirror per standing subscription, in
    /// registration order — reconstructed *only* from consumed
    /// [`pdr_core::AnswerDelta`]s, so comparing it against the engine's
    /// table (and, under `SubMix::verify`, a from-scratch query) proves
    /// the incremental path end to end.
    sub_mirrors: Vec<(SubId, Vec<Rect>)>,
}

impl Served {
    /// Re-seeds every mirror from the engine's committed answers —
    /// after a crash recovery the tick's deltas are lost mid-flight, so
    /// the consumer resynchronizes exactly like a reconnecting client.
    fn resync_mirrors(&mut self) {
        if let Some(table) = self.engine.subscriptions() {
            for (id, mirror) in &mut self.sub_mirrors {
                *mirror = table.answer(*id).map(<[Rect]>::to_vec).unwrap_or_default();
            }
        }
    }
}

/// The journal a fault-tolerant serve run keeps: protocol records are
/// appended *before* each engine mutation, engine checkpoints are taken
/// every `every` ticks.
struct Journal {
    wal: Wal,
    every: u64,
    ticks_since_checkpoint: u64,
}

/// Owns a [`TrafficSimulator`] and any number of boxed engines; drives
/// ingest and queries through the [`DensityEngine`] contract only.
pub struct ServeDriver {
    sim: TrafficSimulator,
    engines: Vec<Served>,
    model: CostModel,
    cursor: usize,
    tick_ingest: Histogram,
    tick_query: Histogram,
    policy: FaultPolicy,
    journal: Option<Journal>,
    rng: u64,
    clients: Vec<ClientStats>,
    /// Deterministic generator for subscription regions (xorshift64*,
    /// seeded from the fault-policy seed so runs replay identically).
    sub_rng: u64,
    /// Subscriptions created so far — cycles the mix specs so every
    /// engine registers the identical sequence.
    sub_seq: u64,
    /// Deltas emitted since the last [`drain_pending_deltas`]
    /// (ServeDriver::drain_pending_deltas) call, labelled with the
    /// emitting engine — the feed the TCP front-end routes to
    /// subscriber connections. Only collected once
    /// [`enable_delta_feed`](ServeDriver::enable_delta_feed) is on, so
    /// drain-less library runs don't accumulate unboundedly.
    pending_deltas: Vec<(String, AnswerDelta)>,
    delta_feed: bool,
}

/// Mutable per-client accumulators (snapshotted into [`ClientLoad`]).
struct ClientStats {
    queries: u64,
    deadline_misses: u64,
    latency: Histogram,
}

impl ServeDriver {
    /// Creates a driver around a simulator; costs are charged under
    /// `model`.
    pub fn new(sim: TrafficSimulator, model: CostModel) -> Self {
        let policy = FaultPolicy::default();
        ServeDriver {
            sim,
            engines: Vec::new(),
            model,
            cursor: 0,
            tick_ingest: Histogram::new(),
            tick_query: Histogram::new(),
            policy,
            journal: None,
            rng: policy.seed | 1,
            clients: Vec::new(),
            sub_rng: (policy.seed ^ 0x5B5C_9A71) | 1,
            sub_seq: 0,
            pending_deltas: Vec::new(),
            delta_feed: false,
        }
    }

    /// Turns on the labelled delta feed consumed through
    /// [`drain_pending_deltas`](ServeDriver::drain_pending_deltas).
    /// Off by default so drivers nobody drains don't buffer forever.
    pub fn enable_delta_feed(&mut self) {
        self.delta_feed = true;
    }

    /// Sets the fault-handling policy (builder style).
    pub fn with_policy(mut self, policy: FaultPolicy) -> Self {
        self.policy = policy;
        self.rng = policy.seed | 1;
        self
    }

    /// Turns on write-ahead journaling with an engine checkpoint every
    /// `every` ticks. Checkpoint-capable engines become recoverable:
    /// when a query hits detected corruption, the driver restores the
    /// latest checkpoint, replays the WAL tail and retries. Engines
    /// without checkpoint support keep degrading instead.
    ///
    /// New journals use the columnar codec2 record format; recovery
    /// replays either codec, so logs written by older drivers remain
    /// readable.
    pub fn enable_journal(&mut self, every: u64) {
        assert!(every > 0, "checkpoint cadence must be positive");
        self.journal = Some(Journal {
            wal: Wal::with_codec(WalCodec::V2),
            every,
            ticks_since_checkpoint: 0,
        });
        self.checkpoint_engines();
    }

    /// Installs a fault-injection plan beneath the storage plane of the
    /// engine registered under `label`. `false` when no such engine.
    pub fn install_fault_plan(&self, label: &str, plan: FaultPlan) -> bool {
        match self.engines.iter().find(|s| s.label == label) {
            Some(s) => {
                s.engine.set_fault_plan(plan);
                true
            }
            None => false,
        }
    }

    /// Takes a fresh checkpoint of every checkpoint-capable engine,
    /// anchored at the current WAL offset. No-op without a journal.
    fn checkpoint_engines(&mut self) {
        let Some(j) = self.journal.as_ref() else {
            return;
        };
        let offset = j.wal.offset();
        for s in &mut self.engines {
            if let Some(bytes) = s.engine.checkpoint() {
                s.checkpoint = Some((offset, bytes));
            }
        }
    }

    /// Registers an engine under `label` (builder style).
    pub fn with_engine(mut self, label: &str, engine: Box<dyn DensityEngine>) -> Self {
        self.add_engine(label, engine);
        self
    }

    /// Registers an engine under `label`.
    pub fn add_engine(&mut self, label: &str, engine: Box<dyn DensityEngine>) {
        assert!(
            self.engines.iter().all(|s| s.label != label),
            "duplicate engine label {label:?}"
        );
        let name = engine.name();
        self.engines.push(Served {
            label: label.to_string(),
            engine,
            load: EngineLoad::new(label.to_string(), name),
            latency: Histogram::new(),
            recovery: Histogram::new(),
            checkpoint: None,
            degraded_mode: false,
            sub_mirrors: Vec::new(),
        });
    }

    /// The simulator (read access: population, positions, time).
    pub fn simulator(&self) -> &TrafficSimulator {
        &self.sim
    }

    /// Labels of the registered engines, in registration order.
    pub fn labels(&self) -> Vec<String> {
        self.engines.iter().map(|s| s.label.clone()).collect()
    }

    /// The engine registered under `label`, if any.
    pub fn engine(&self, label: &str) -> Option<&dyn DensityEngine> {
        self.engines
            .iter()
            .find(|s| s.label == label)
            .map(|s| s.engine.as_ref())
    }

    /// Mutable access to the engine registered under `label` (the
    /// replica sync path ingests shipments through this).
    pub fn engine_mut(&mut self, label: &str) -> Option<&mut dyn DensityEngine> {
        let s = self.engines.iter_mut().find(|s| s.label == label)?;
        Some(s.engine.as_mut())
    }

    /// The monitored region (the simulator network's square extent).
    pub fn bounds(&self) -> Rect {
        let extent = self.sim.network().extent();
        Rect::new(0.0, 0.0, extent, extent)
    }

    /// Bulk-loads the simulator's current population into every engine.
    /// Call once, before ticking.
    pub fn bootstrap(&mut self) {
        let pop = self.sim.population();
        let t = self.sim.t_now();
        for s in &mut self.engines {
            let start = Instant::now();
            s.engine.bulk_load(&pop, t);
            s.load.ingest_ms += start.elapsed().as_secs_f64() * 1e3;
        }
        // The bulk load is not WAL-recorded (it would dwarf the log);
        // a post-bootstrap checkpoint makes it recoverable instead.
        self.checkpoint_engines();
    }

    /// Promotes the replica registered under `label` into a writable
    /// primary and returns its new replication epoch plus the applied
    /// protocol time it was sealed at.
    ///
    /// The driver's local simulator never ticked while the engine was
    /// a replica (the replicated stream was the clock), so after the
    /// engine flips to primary the simulator is fast-forwarded to the
    /// applied timestamp. Both sides of a failover pair are launched
    /// from the same `--objects/--seed/--extent`, and the simulator is
    /// deterministic, so the fast-forwarded population is exactly the
    /// one the replicated updates described — ground truth and `q_t`
    /// resolution stay exact across the promotion.
    pub fn promote_replica(&mut self, label: &str) -> Result<(u64, Timestamp), String> {
        let s = self
            .engines
            .iter_mut()
            .find(|s| s.label == label)
            .ok_or_else(|| format!("no such engine {label:?}"))?;
        let (epoch, applied_t) = if let Some(rep) = s.engine.as_replica_mut() {
            let t = rep.applied_t();
            (rep.promote(), t)
        } else if let Some(plane) = s.engine.as_sharded() {
            // Already promoted (or a born primary): idempotent
            // re-answer; the simulator is already current.
            (plane.repl_epoch(), self.sim.t_now())
        } else {
            return Err(format!("engine {label:?} is neither replica nor primary"));
        };
        while self.sim.t_now() < applied_t {
            let _ = self.sim.tick();
        }
        Ok((epoch, applied_t))
    }

    /// Drives one simulator tick through every engine: advances each
    /// horizon to the new timestamp, then applies the tick's updates.
    /// Returns the number of protocol updates applied.
    pub fn tick(&mut self) -> usize {
        let t_next = self.sim.t_now() + 1;
        if let Some(j) = self.journal.as_mut() {
            j.wal.append_advance(t_next);
        }
        let wal = self.journal.as_ref().map(|j| &j.wal);
        for s in &mut self.engines {
            let start = Instant::now();
            ingest_or_recover(s, wal, |e| e.advance_to(t_next));
            s.load.ingest_ms += start.elapsed().as_secs_f64() * 1e3;
        }
        let updates = self.sim.tick();
        if let Some(j) = self.journal.as_mut() {
            j.wal.append_batch(&updates);
        }
        let wal = self.journal.as_ref().map(|j| &j.wal);
        let mut emitted: Vec<(String, AnswerDelta)> = Vec::new();
        for s in &mut self.engines {
            let start = Instant::now();
            let recoveries_before = s.load.recoveries;
            let mut deltas = Vec::new();
            ingest_or_recover(s, wal, |e| {
                deltas = e.apply_batch_with_deltas(&updates, t_next);
            });
            s.load.ingest_ms += start.elapsed().as_secs_f64() * 1e3;
            let has_subs = !s.sub_mirrors.is_empty()
                || s.engine.subscriptions().is_some_and(|t| !t.is_empty());
            if !has_subs {
                continue;
            }
            if s.load.recoveries != recoveries_before || s.degraded_mode {
                // The tick's deltas were lost mid-crash (or the engine
                // went offline). After a successful recovery the engine
                // is consistent again but unmaintained for this tick:
                // run one maintenance pass, then resynchronize the
                // mirrors from the committed answers. External
                // consumers cannot resync, so they get a degraded
                // marker per subscription instead — their replayed
                // answer can no longer be trusted until re-seeded.
                if !s.degraded_mode {
                    let _ = s.engine.maintain_subscriptions(t_next);
                }
                s.resync_mirrors();
                deltas = s
                    .engine
                    .subscriptions()
                    .map(|t| {
                        t.subs()
                            .map(|sub| AnswerDelta {
                                id: sub.id,
                                now: t_next,
                                q_t: sub.policy.resolve(t_next),
                                added: Vec::new(),
                                removed: Vec::new(),
                                degraded: true,
                                resync: false,
                            })
                            .collect()
                    })
                    .unwrap_or_default();
            } else {
                s.load.sub_deltas += deltas.len() as u64;
                for d in &deltas {
                    if let Some((_, mirror)) = s.sub_mirrors.iter_mut().find(|(id, _)| *id == d.id)
                    {
                        d.apply_to(mirror);
                    }
                }
            }
            if self.delta_feed {
                emitted.extend(deltas.into_iter().map(|d| (s.label.clone(), d)));
            }
        }
        self.pending_deltas.append(&mut emitted);
        let checkpoint_due = match self.journal.as_mut() {
            Some(j) => {
                j.ticks_since_checkpoint += 1;
                if j.ticks_since_checkpoint >= j.every {
                    j.ticks_since_checkpoint = 0;
                    true
                } else {
                    false
                }
            }
            None => false,
        };
        if checkpoint_due {
            self.checkpoint_engines();
        }
        updates.len()
    }

    /// Brute-force ground truth for `q` from the simulator's own table.
    pub fn ground_truth(&self, q: &PdrQuery) -> RegionSet {
        exact_dense_regions(&self.sim.positions_at(q.q_t), &self.bounds(), q)
    }

    /// Registers a standing subscription on the engine under `label`
    /// (region defaults to the monitored bounds) and immediately brings
    /// it up to date: the initial answer is emitted as the
    /// subscription's first pending delta (everything `added`), so a
    /// consumer draining [`drain_pending_deltas`]
    /// (ServeDriver::drain_pending_deltas) reconstructs the answer from
    /// the delta stream alone.
    pub fn subscribe_on(
        &mut self,
        label: &str,
        rho: f64,
        l: f64,
        region: Option<Rect>,
        policy: QtPolicy,
    ) -> Result<SubId, SubError> {
        let bounds = self.bounds();
        let now = self.sim.t_now();
        let Some(s) = self.engines.iter_mut().find(|s| s.label == label) else {
            return Err(SubError::Unsupported);
        };
        let id = s
            .engine
            .register_subscription(rho, l, region.unwrap_or(bounds), policy)?;
        s.load.subs += 1;
        let deltas = s.engine.maintain_subscriptions(now);
        s.load.sub_deltas += deltas.len() as u64;
        for d in &deltas {
            if let Some((_, m)) = s.sub_mirrors.iter_mut().find(|(i, _)| *i == d.id) {
                d.apply_to(m);
            }
        }
        if self.delta_feed {
            let label = s.label.clone();
            self.pending_deltas
                .extend(deltas.into_iter().map(|d| (label.clone(), d)));
        }
        Ok(id)
    }

    /// Unregisters a subscription created by [`subscribe_on`]
    /// (ServeDriver::subscribe_on) (or the subscription mix). `false`
    /// when no such engine or subscription.
    pub fn unsubscribe_on(&mut self, label: &str, id: SubId) -> bool {
        let Some(s) = self.engines.iter_mut().find(|s| s.label == label) else {
            return false;
        };
        let removed = s.engine.unregister_subscription(id);
        if removed {
            s.load.subs -= 1;
            s.sub_mirrors.retain(|(i, _)| *i != id);
        }
        removed
    }

    /// Takes the deltas emitted since the last drain, labelled with the
    /// emitting engine. The TCP front-end calls this after every tick
    /// and routes each delta to the connection that owns the
    /// subscription.
    pub fn drain_pending_deltas(&mut self) -> Vec<(String, AnswerDelta)> {
        std::mem::take(&mut self.pending_deltas)
    }

    /// The next deterministic subscription spec: `(ρ, l)` cycle the
    /// mix's query specs, the horizon offset becomes a sliding
    /// [`QtPolicy::NowPlus`], and the region of interest is a seeded
    /// random sub-rectangle of the monitored domain (every third one
    /// covers the whole domain).
    fn next_sub_spec(&mut self, mix: &QueryMix) -> (f64, f64, Rect, QtPolicy) {
        let spec = mix.specs[self.sub_seq as usize % mix.specs.len()];
        let offset = spec.q_t.saturating_sub(mix.anchor);
        self.sub_seq += 1;
        let bounds = self.bounds();
        let mut draw = || {
            self.sub_rng ^= self.sub_rng << 13;
            self.sub_rng ^= self.sub_rng >> 7;
            self.sub_rng ^= self.sub_rng << 17;
            (self.sub_rng.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 33) as f64 / (1u64 << 31) as f64
        };
        let region = if self.sub_seq.is_multiple_of(3) {
            bounds
        } else {
            let w = bounds.width() * (0.25 + 0.6 * draw());
            let h = bounds.height() * (0.25 + 0.6 * draw());
            let x_lo = bounds.x_lo + (bounds.width() - w) * draw();
            let y_lo = bounds.y_lo + (bounds.height() - h) * draw();
            Rect::new(x_lo, y_lo, x_lo + w, y_lo + h)
        };
        (spec.rho, spec.l, region, QtPolicy::NowPlus(offset))
    }

    /// Registers one identical subscription on every engine and brings
    /// its committed answer up to date (so the first tick's check does
    /// not compare an unmaintained empty answer).
    fn register_subscription_everywhere(&mut self, mix: &QueryMix) {
        let (rho, l, region, policy) = self.next_sub_spec(mix);
        let now = self.sim.t_now();
        for s in &mut self.engines {
            if s.degraded_mode {
                continue;
            }
            let id = s
                .engine
                .register_subscription(rho, l, region, policy)
                .unwrap_or_else(|e| panic!("{}: subscription rejected: {e}", s.label));
            s.load.subs += 1;
            let deltas = s.engine.maintain_subscriptions(now);
            s.load.sub_deltas += deltas.len() as u64;
            let mut mirror = Vec::new();
            for d in deltas {
                if d.id == id {
                    d.apply_to(&mut mirror);
                } else if let Some((_, m)) = s.sub_mirrors.iter_mut().find(|(i, _)| *i == d.id) {
                    d.apply_to(m);
                }
            }
            s.sub_mirrors.push((id, mirror));
        }
    }

    /// Unregisters the oldest subscription and registers a fresh one —
    /// the churn half of the subscription mix.
    fn churn_subscriptions(&mut self, mix: &QueryMix) {
        for s in &mut self.engines {
            if s.degraded_mode || s.sub_mirrors.is_empty() {
                continue;
            }
            let (id, _) = s.sub_mirrors.remove(0);
            assert!(
                s.engine.unregister_subscription(id),
                "{}: churned subscription {id:?} was not registered",
                s.label
            );
            s.load.subs -= 1;
        }
        self.register_subscription_everywhere(mix);
    }

    /// Per-tick subscription checks: every mirror (rebuilt purely from
    /// deltas) must equal the engine's committed answer bit-for-bit;
    /// with `verify`, both must equal a from-scratch query clipped to
    /// the region. Degraded subscriptions are skipped — their stored
    /// answer is stale by contract until the first clean commit.
    fn check_subscriptions(&mut self, verify: bool, now: Timestamp) {
        for s in &mut self.engines {
            if s.degraded_mode {
                continue;
            }
            let Some(table) = s.engine.subscriptions() else {
                continue;
            };
            let specs: Vec<Subscription> = table.subs().copied().collect();
            for sub in specs {
                let table = s.engine.subscriptions().expect("table just read");
                if table.is_degraded(sub.id) == Some(true) {
                    continue;
                }
                let committed = table.answer(sub.id).expect("registered").to_vec();
                s.load.sub_checks += 1;
                let mirrored = s
                    .sub_mirrors
                    .iter()
                    .find(|(id, _)| *id == sub.id)
                    .map(|(_, m)| m.as_slice());
                if mirrored != Some(committed.as_slice()) {
                    s.load.sub_divergence += 1;
                    continue;
                }
                if !verify {
                    continue;
                }
                let q = PdrQuery::new(sub.rho, sub.l, sub.policy.resolve(now));
                let Ok(answer) = s.engine.try_query(&q) else {
                    // A faulting verification query proves nothing
                    // either way; the fault path has its own counters.
                    s.load.sub_checks -= 1;
                    continue;
                };
                let reference = SubscriptionTable::clip(&answer.regions, sub.region);
                if reference.rects() != committed.as_slice() {
                    s.load.sub_divergence += 1;
                }
            }
        }
    }

    /// Executes one query against every engine, accumulating load (and
    /// accuracy when `truth` is given). Returns the answers in engine
    /// registration order.
    pub fn query_all(&mut self, q: &PdrQuery, truth: Option<&RegionSet>) -> Vec<RegionSet> {
        let model = self.model;
        let policy = self.policy;
        let wal = self.journal.as_ref().map(|j| &j.wal);
        let rng = &mut self.rng;
        let mut answers = Vec::with_capacity(self.engines.len());
        for s in &mut self.engines {
            let a = serve_with_faults(s, q, &policy, wal, rng);
            s.load
                .score
                .record_cost(a.cpu.as_secs_f64() * 1e3, a.total_ms(&model), a.io);
            s.latency.record(a.cpu);
            if let Some(truth) = truth {
                s.load.score.record_accuracy(accuracy(truth, &a.regions));
            }
            answers.push(a.regions);
        }
        answers
    }

    /// The serve loop: `ticks` simulator ticks, executing
    /// `mix.per_tick` queries from the mix after each tick (cycling
    /// through the mix, re-anchored to the current clock; with
    /// [`QueryMix::with_clients`], every client issues its own
    /// `per_tick` queries concurrently). Returns the accumulated
    /// report; the driver can keep running afterwards.
    pub fn run(&mut self, ticks: u64, mix: &QueryMix) -> ServeReport {
        if mix.clients > 1 {
            while self.clients.len() < mix.clients {
                self.clients.push(ClientStats {
                    queries: 0,
                    deadline_misses: 0,
                    latency: Histogram::new(),
                });
            }
        }
        if let Some(sm) = mix.subscriptions() {
            let missing = sm.count.saturating_sub(
                self.engines
                    .iter()
                    .map(|s| s.sub_mirrors.len())
                    .max()
                    .unwrap_or(0),
            );
            for _ in 0..missing {
                self.register_subscription_everywhere(mix);
            }
        }
        let mut updates = 0u64;
        for tick_no in 0..ticks {
            let ingest_start = Instant::now();
            updates += self.tick() as u64;
            self.tick_ingest.record(ingest_start.elapsed());
            let now = self.sim.t_now();
            if let Some(sm) = mix.subscriptions() {
                self.check_subscriptions(sm.verify, now);
                if sm.churn_every > 0 && (tick_no + 1) % sm.churn_every == 0 {
                    self.churn_subscriptions(mix);
                }
            }
            let query_start = Instant::now();
            if mix.clients > 1 {
                self.concurrent_query_slice(mix, now);
            } else {
                for _ in 0..mix.per_tick {
                    let (q, truth) = self.next_query(mix, now);
                    self.query_all(&q, truth.as_ref());
                }
            }
            self.tick_query.record(query_start.elapsed());
        }
        self.report(ticks, updates)
    }

    /// Pulls the next query off the mix cursor, re-anchored to `now`.
    fn next_query(&mut self, mix: &QueryMix, now: Timestamp) -> (PdrQuery, Option<RegionSet>) {
        let spec = mix.specs[self.cursor % mix.specs.len()];
        self.cursor += 1;
        let q_t = now + spec.q_t.saturating_sub(mix.anchor);
        let q = PdrQuery::new(spec.rho, spec.l, q_t);
        let truth = mix.measure_accuracy.then(|| self.ground_truth(&q));
        (q, truth)
    }

    /// One tick's query slice under `mix.clients` concurrent clients.
    ///
    /// Assignment is deterministic: client `c` takes the next
    /// `per_tick` queries off the shared mix cursor (ground truths are
    /// precomputed serially). The concurrent phase then runs one OS
    /// thread per client, each issuing its queries against the shared
    /// engine through `try_query(&self)` — the engines' shared-read
    /// contract — so nested intra-query parallelism lands on the same
    /// process-wide [`Executor`]. All bookkeeping, and the full fault
    /// policy for any request that errored concurrently, runs serially
    /// after the join; since retry/recovery mutates the engine it needs
    /// the exclusive path, and replaying in client order keeps counters
    /// and fault schedules deterministic.
    fn concurrent_query_slice(&mut self, mix: &QueryMix, now: Timestamp) {
        let mut assignments: Vec<Vec<(PdrQuery, Option<RegionSet>)>> =
            Vec::with_capacity(mix.clients);
        for _ in 0..mix.clients {
            let mut qs = Vec::with_capacity(mix.per_tick);
            for _ in 0..mix.per_tick {
                qs.push(self.next_query(mix, now));
            }
            assignments.push(qs);
        }
        let deadline = self.policy.deadline;
        let model = self.model;
        for ei in 0..self.engines.len() {
            type ClientRow = Vec<(Result<EngineAnswer, StorageError>, Duration)>;
            let rows: Vec<ClientRow> = {
                let engine = &*self.engines[ei].engine;
                std::thread::scope(|scope| {
                    let handles: Vec<_> = assignments
                        .iter()
                        .map(|qs| {
                            scope.spawn(move || {
                                qs.iter()
                                    .map(|(q, _)| {
                                        let start = Instant::now();
                                        let r = engine.try_query(q);
                                        (r, start.elapsed())
                                    })
                                    .collect::<ClientRow>()
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("client thread panicked"))
                        .collect()
                })
            };
            for (ci, row) in rows.into_iter().enumerate() {
                for (qi, (r, lat)) in row.into_iter().enumerate() {
                    let (q, truth) = &assignments[ci][qi];
                    let stats = &mut self.clients[ci];
                    stats.queries += 1;
                    stats.latency.record(lat);
                    if deadline.is_some_and(|d| lat > d) {
                        stats.deadline_misses += 1;
                    }
                    let a = match r {
                        Ok(a) => a,
                        Err(_) => {
                            let policy = self.policy;
                            let wal = self.journal.as_ref().map(|j| &j.wal);
                            serve_with_faults(&mut self.engines[ei], q, &policy, wal, &mut self.rng)
                        }
                    };
                    let s = &mut self.engines[ei];
                    s.load
                        .score
                        .record_cost(a.cpu.as_secs_f64() * 1e3, a.total_ms(&model), a.io);
                    s.latency.record(a.cpu);
                    if let Some(truth) = truth {
                        s.load.score.record_accuracy(accuracy(truth, &a.regions));
                    }
                }
            }
        }
    }

    fn report(&self, ticks: u64, updates: u64) -> ServeReport {
        let exec = Executor::global().obs_report();
        ServeReport {
            ticks,
            updates,
            tick_ingest: self.tick_ingest.snapshot(),
            tick_query: self.tick_query.snapshot(),
            clients: self
                .clients
                .iter()
                .enumerate()
                .map(|(i, c)| ClientLoad {
                    client: i,
                    queries: c.queries,
                    deadline_misses: c.deadline_misses,
                    latency: c.latency.snapshot(),
                })
                .collect(),
            pool_workers: Executor::global().workers(),
            exec,
            engines: self
                .engines
                .iter()
                .map(|s| {
                    let mut load = s.load.clone();
                    load.stats = s.engine.stats();
                    load.latency = s.latency.snapshot();
                    load.recovery_us = s.recovery.snapshot();
                    // `load.faults` already holds counters banked from
                    // devices replaced by recovery; add the live one.
                    load.faults += s.engine.fault_stats();
                    load.obs = s.engine.obs();
                    load.shards = s.engine.shard_metrics_json();
                    load
                })
                .collect(),
        }
    }
}

/// Seeded jittered exponential backoff before retry `attempt`
/// (xorshift64*, the same generator family the fault plan uses).
fn backoff(policy: &FaultPolicy, attempt: u32, rng: &mut u64) {
    let base = policy
        .backoff_base_us
        .saturating_mul(1u64 << attempt.min(16));
    let delay = base.min(policy.backoff_cap_us.max(policy.backoff_base_us));
    if delay == 0 {
        return;
    }
    *rng ^= *rng << 13;
    *rng ^= *rng >> 7;
    *rng ^= *rng << 17;
    let x = rng.wrapping_mul(0x2545_F491_4F6C_DD1D);
    let jittered = delay / 2 + x % (delay / 2 + 1);
    std::thread::sleep(Duration::from_micros(jittered));
}

/// Restores `s` from its latest checkpoint and replays the WAL tail,
/// banking the failed device's fault counters first (the restore
/// replaces the device, and its counters with it). Returns `false`
/// when the engine has no checkpoint or the checkpoint fails to
/// verify; the recovery counter and time histogram record successes.
fn recover_engine(s: &mut Served, wal: &Wal) -> bool {
    let Some((offset, bytes)) = s.checkpoint.clone() else {
        return false;
    };
    let rec_start = Instant::now();
    s.load.faults += s.engine.fault_stats();
    if s.engine.restore_from(&bytes).is_err() {
        return false;
    }
    let tail = replay(&wal.bytes()[offset..]).expect("in-memory WAL cannot tear");
    for r in &tail.records {
        match r {
            WalRecord::Advance(t) => s.engine.advance_to(*t),
            WalRecord::Batch(b) => s.engine.apply_batch(b),
        }
    }
    s.load.recoveries += 1;
    s.recovery.record(rec_start.elapsed());
    true
}

/// Runs one ingest mutation, treating an engine panic as a simulated
/// crash. The ingest path reads through the infallible pool API, so an
/// injected fault surfaces as a panic mid-mutation; the WAL record for
/// the mutation was appended *before* it ran, so restoring the
/// checkpoint and replaying the tail lands the engine exactly where a
/// clean apply would have. Without a journal (or without a checkpoint)
/// the panic propagates unchanged. The caught engine may hold broken
/// invariants, but recovery discards its entire state, so none can be
/// observed — which is what makes the `AssertUnwindSafe` sound.
fn ingest_or_recover(
    s: &mut Served,
    wal: Option<&Wal>,
    apply: impl FnOnce(&mut dyn DensityEngine),
) {
    if s.degraded_mode {
        return;
    }
    let before = s.engine.fault_stats();
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        apply(s.engine.as_mut());
    }));
    if let Err(payload) = outcome {
        if s.engine.fault_stats() == before {
            // Not our injection: a genuine bug must stay loud.
            std::panic::resume_unwind(payload);
        }
        if !wal.is_some_and(|w| recover_engine(s, w)) {
            // Fault-caused but unrecoverable (no journal, or the
            // checkpoint failed to verify): take the engine offline and
            // keep serving degraded instead of dropping the tick.
            s.degraded_mode = true;
        }
    }
}

/// Answers the query by the degraded path, or fails it: a filter-only
/// superset answer when the engine has one, an empty region otherwise.
fn degrade(s: &mut Served, q: &PdrQuery) -> EngineAnswer {
    match s.engine.degraded_query(q) {
        Some(a) => {
            s.load.degraded_queries += 1;
            a
        }
        None => {
            s.load.failed_queries += 1;
            EngineAnswer {
                regions: RegionSet::new(),
                cpu: Duration::ZERO,
                io: IoStats::default(),
                exact: false,
            }
        }
    }
}

/// One query under the fault policy: retry transient faults with
/// backoff, recover from detected corruption via checkpoint + WAL tail
/// (once per query), degrade otherwise — all bounded by the deadline.
fn serve_with_faults(
    s: &mut Served,
    q: &PdrQuery,
    policy: &FaultPolicy,
    wal: Option<&Wal>,
    rng: &mut u64,
) -> EngineAnswer {
    if s.degraded_mode {
        return degrade(s, q);
    }
    let start = Instant::now();
    let mut attempts = 1u32;
    let mut recovered = false;
    loop {
        let err = match s.engine.try_query(q) {
            Ok(a) => return a,
            Err(e) => e,
        };
        if policy.deadline.is_some_and(|d| start.elapsed() >= d) {
            s.load.deadline_misses += 1;
            return degrade(s, q);
        }
        if err.is_transient() && attempts < policy.max_attempts {
            attempts += 1;
            s.load.retries += 1;
            backoff(policy, attempts, rng);
            continue;
        }
        if err.is_corruption() && !recovered {
            // Corruption is repairable by rewriting the data; a device
            // refusing reads is not — those degrade below. The restored
            // index lives on a fresh simulated device, so the fault
            // plan (a schedule for the *failed* device) is gone.
            if wal.is_some_and(|w| recover_engine(s, w)) {
                recovered = true;
                continue;
            }
        }
        if !err.is_transient() {
            // A device refusing service permanently (or corruption
            // with no checkpoint to restore) won't heal between
            // queries: go offline-degraded instead of re-probing it.
            s.degraded_mode = true;
        }
        return degrade(s, q);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NetworkConfig, RoadNetwork};
    use pdr_core::{EngineAnswer, EngineSpec, FrConfig, PaConfig};
    use pdr_mobject::{TimeHorizon, Update};
    use std::time::Duration;

    fn driver(n: usize) -> ServeDriver {
        let net = RoadNetwork::generate(
            &NetworkConfig {
                extent: 200.0,
                nodes: 150,
                hotspots: 3,
                spread: 0.05,
                background: 0.2,
                degree: 3,
            },
            13,
        );
        let sim = TrafficSimulator::new(net, n, 17, 4, 0);
        let horizon = TimeHorizon::new(4, 4);
        let fr = FrConfig {
            extent: 200.0,
            m: 40,
            horizon,
            buffer_pages: 64,
            threads: 1,
        };
        let pa = PaConfig {
            extent: 200.0,
            g: 5,
            degree: 4,
            l: 20.0,
            horizon,
            m_d: 100,
        };
        ServeDriver::new(sim, CostModel::PAPER_DEFAULT)
            .with_engine("fr", EngineSpec::Fr(fr).build(0))
            .with_engine("pa", EngineSpec::Pa(pa).build(0))
    }

    fn mix() -> QueryMix {
        let specs: Vec<QuerySpec> = (0..4)
            .map(|i| QuerySpec {
                rho: 6.0 / 400.0,
                varrho: 1.0,
                l: 20.0,
                q_t: i % 4,
            })
            .collect();
        QueryMix::new(specs, 0, 2)
    }

    #[test]
    fn serve_loop_feeds_every_engine_identically() {
        let mut d = driver(300);
        d.bootstrap();
        let report = d.run(5, &mix());
        assert_eq!(report.ticks, 5);
        assert!(report.updates > 0, "5 ticks with U=4 must emit reports");
        assert_eq!(report.engines.len(), 2);
        let expected_updates = 300 + report.updates;
        for load in &report.engines {
            assert_eq!(
                load.stats.updates_applied, expected_updates,
                "{}: every engine must see bootstrap + all tick updates",
                load.label
            );
            assert_eq!(load.stats.missed_deletes, 0, "{}", load.label);
            assert_eq!(load.score.queries, 10, "{}", load.label);
            assert!(load.ingest_ms >= 0.0 && load.score.total_ms >= 0.0);
        }
        assert_eq!(report.engines[0].engine, "fr");
        assert_eq!(report.engines[1].engine, "pa");
    }

    /// `clients = n` with `per_tick = p` issues exactly the queries a
    /// single client with `per_tick = n*p` would, in cursor order, and
    /// the accuracy rollups must come out bit-identical — the
    /// concurrent phase only moves `try_query` onto client threads.
    #[test]
    fn concurrent_clients_score_identically_to_one_client() {
        let run = |clients: usize, per_tick: usize| {
            let mut d = driver(300);
            d.bootstrap();
            let m = QueryMix::new(mix().specs().to_vec(), 0, per_tick)
                .with_accuracy()
                .with_clients(clients);
            d.run(3, &m)
        };
        let conc = run(3, 2);
        let serial = run(1, 6);
        assert_eq!(conc.clients.len(), 3);
        for (i, c) in conc.clients.iter().enumerate() {
            assert_eq!(c.client, i);
            // ticks * per_tick * engines requests per client.
            assert_eq!(c.queries, 3 * 2 * 2, "client {i}");
            assert_eq!(c.latency.count, c.queries);
        }
        assert!(
            serial.clients.is_empty(),
            "single-client runs keep the serial slice and report no per-client load"
        );
        for (a, b) in conc.engines.iter().zip(&serial.engines) {
            assert_eq!(a.score.queries, b.score.queries, "{}", a.label);
            assert_eq!(a.score.scored, b.score.scored, "{}", a.label);
            assert_eq!(
                a.score.unbounded_r_fp, b.score.unbounded_r_fp,
                "{}",
                a.label
            );
            assert_eq!(
                a.mean_r_fp().to_bits(),
                b.mean_r_fp().to_bits(),
                "{}: concurrent clients must not change any answer",
                a.label
            );
            assert_eq!(
                a.mean_r_fn().to_bits(),
                b.mean_r_fn().to_bits(),
                "{}",
                a.label
            );
            assert_eq!(a.failed_queries, 0, "{}", a.label);
        }
        let json = conc.to_json();
        for key in [
            "\"clients\":[",
            "\"pool_workers\":",
            "\"exec\":{",
            "\"deadline_misses\":",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    fn accuracy_scoring_favors_the_exact_engine() {
        let mut d = driver(400);
        d.bootstrap();
        let report = d.run(3, &mix().with_accuracy());
        let fr = &report.engines[0];
        let pa = &report.engines[1];
        assert_eq!(fr.score.scored, 6);
        assert_eq!(pa.score.scored, 6);
        // FR is exact: both error ratios are (numerically) zero.
        assert!(
            fr.mean_r_fp() < 1e-9 && fr.mean_r_fn() < 1e-9,
            "FR must match ground truth exactly (r_fp {}, r_fn {})",
            fr.mean_r_fp(),
            fr.mean_r_fn()
        );
        // PA is approximate: finite, typically nonzero error.
        assert!(pa.mean_r_fp().is_finite() && pa.mean_r_fn().is_finite());
    }

    #[test]
    fn query_all_preserves_registration_order_and_truth_is_exact() {
        let mut d = driver(200);
        d.bootstrap();
        d.tick();
        let q = PdrQuery::new(6.0 / 400.0, 20.0, d.simulator().t_now());
        let truth = d.ground_truth(&q);
        let answers = d.query_all(&q, Some(&truth));
        assert_eq!(answers.len(), 2);
        // FR (registered first) equals the ground truth region.
        assert!(answers[0].symmetric_difference_area(&truth) < 1e-9);
    }

    /// A deterministic engine that always reports one fixed rectangle,
    /// so the empty-truth / nonempty-report case is exercised without
    /// depending on an approximate engine's numerical wiggle.
    struct StubEngine {
        rect: Rect,
        updates: u64,
    }

    impl DensityEngine for StubEngine {
        fn name(&self) -> &'static str {
            "stub"
        }
        fn apply_batch(&mut self, updates: &[Update]) {
            self.updates += updates.len() as u64;
        }
        fn advance_to(&mut self, _t_now: Timestamp) {}
        fn query(&self, _q: &PdrQuery) -> EngineAnswer {
            EngineAnswer {
                regions: RegionSet::from_rects([self.rect]),
                cpu: Duration::from_micros(1),
                io: IoStats::default(),
                exact: false,
            }
        }
        fn stats(&self) -> EngineStats {
            EngineStats {
                updates_applied: self.updates,
                ..EngineStats::default()
            }
        }
    }

    /// Regression: a scored query with empty ground truth and a
    /// nonempty report has `r_fp = +∞`. The serve loop used to add it
    /// straight into `r_fp_sum`, turning every subsequent `mean_r_fp`
    /// into +∞ for the rest of the run. It must instead be counted in
    /// `unbounded_r_fp` and excluded from the (finite) mean.
    #[test]
    fn empty_truth_queries_do_not_poison_mean_r_fp() {
        let net = RoadNetwork::generate(&NetworkConfig::metro(200.0), 5);
        let sim = TrafficSimulator::new(net, 50, 23, 4, 0);
        let mut d = ServeDriver::new(sim, CostModel::PAPER_DEFAULT)
            .with_engine(
                "stub",
                Box::new(StubEngine {
                    rect: Rect::new(10.0, 10.0, 30.0, 30.0),
                    updates: 0,
                }),
            )
            .with_engine(
                "fr",
                EngineSpec::Fr(FrConfig {
                    extent: 200.0,
                    m: 40,
                    horizon: TimeHorizon::new(4, 4),
                    buffer_pages: 64,
                    threads: 1,
                })
                .build(0),
            );
        d.bootstrap();
        // ρ = 10 objects per unit² is unreachable with 50 objects on a
        // 200×200 plane: ground truth is empty at every query.
        let specs = vec![QuerySpec {
            rho: 10.0,
            varrho: 1.0,
            l: 20.0,
            q_t: 0,
        }];
        let report = d.run(4, &QueryMix::new(specs, 0, 2).with_accuracy());
        let stub = &report.engines[0];
        assert_eq!(stub.score.scored, 8);
        assert_eq!(
            stub.score.unbounded_r_fp, 8,
            "every scored stub query has empty truth + nonempty report"
        );
        assert_eq!(
            stub.score.r_fp_sum, 0.0,
            "unbounded ratios must not be summed"
        );
        assert!(
            stub.mean_r_fp().is_finite(),
            "mean_r_fp poisoned: {}",
            stub.mean_r_fp()
        );
        // FR reports empty for an empty truth: bounded, exact, zero.
        let fr = &report.engines[1];
        assert_eq!(fr.score.unbounded_r_fp, 0);
        assert!(fr.mean_r_fp().is_finite() && fr.mean_r_fp() < 1e-9);
        // The JSON report carries the unbounded count per engine.
        let json = report.to_json();
        assert!(json.contains("\"unbounded_r_fp\":8"));
        assert!(!json.contains("inf"), "JSON must stay parseable: {json}");
    }

    #[test]
    fn report_json_exposes_stage_timings_and_quantiles() {
        let mut d = driver(300);
        d.bootstrap();
        let report = d.run(4, &mix().with_accuracy());
        // Engine-level instrumentation made it into the report...
        let fr = &report.engines[0];
        assert_eq!(fr.latency.count, 8, "one latency sample per query");
        assert!(fr.obs.counter("queries") == Some(8));
        assert!(fr.obs.stage("classify").is_some());
        assert_eq!(fr.stats.queries_served, 8);
        let pa = &report.engines[1];
        assert!(
            pa.obs.counter("bnb_expanded").unwrap() > 0,
            "PA must report branch-and-bound node counts"
        );
        assert_eq!(report.tick_ingest.count, 4, "one ingest sample per tick");
        assert_eq!(report.tick_query.count, 4);
        // ...and the JSON schema carries every required key.
        let json = report.to_json();
        for key in [
            "\"ticks\":4",
            "\"engines\":[",
            "\"tick_ingest_us\":",
            "\"tick_query_us\":",
            "\"latency_us\":",
            "\"p99_us\":",
            "\"unbounded_r_fp\":",
            "\"classify\":",
            "\"bnb_expanded\":",
            "\"queries_served\":",
            "\"physical_ios\":",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert!(!json.contains("inf") && !json.contains("NaN"));
    }

    #[test]
    fn default_deadline_scales_with_available_parallelism() {
        let ncpu = std::thread::available_parallelism().map_or(1, |n| n.get());
        let expected = if ncpu >= 8 {
            Duration::from_millis(250)
        } else if ncpu == 1 {
            Duration::from_secs(5)
        } else {
            Duration::from_millis(250 * 8 / ncpu as u64)
        };
        assert_eq!(default_deadline(), expected);
        assert_eq!(FaultPolicy::default().deadline, Some(expected));
        assert!(
            default_deadline() >= Duration::from_millis(250),
            "scaling must never tighten the 8-core budget"
        );
    }

    /// The subscription mix end to end: standing queries registered on
    /// every engine, maintained incrementally through
    /// `apply_batch_with_deltas`, churned, delta-replayed into mirrors,
    /// and verified against from-scratch queries every tick — with zero
    /// divergence.
    #[test]
    fn subscription_mix_maintains_exact_answers_through_churn() {
        let mut d = driver(300);
        d.bootstrap();
        let m = QueryMix::new(mix().specs().to_vec(), 0, 1).with_subscriptions(3, 2, true);
        let report = d.run(6, &m);
        for load in &report.engines {
            assert_eq!(load.subs, 3, "{}: churn must keep the count", load.label);
            assert!(
                load.sub_checks > 0,
                "{}: every tick checks every live subscription",
                load.label
            );
            assert_eq!(
                load.sub_divergence, 0,
                "{}: delta-maintained answers must be bit-identical to \
                 from-scratch queries",
                load.label
            );
            assert!(
                load.sub_deltas > 0,
                "{}: a churning mix over live traffic must emit deltas",
                load.label
            );
        }
        // FR's incremental path reports its dirty-cell counters.
        let fr = &report.engines[0];
        assert!(
            fr.obs.counter("deltas_emitted").unwrap_or(0) > 0,
            "FR must count emitted deltas"
        );
        let json = report.to_json();
        for key in [
            "\"subs\":3",
            "\"sub_deltas\":",
            "\"sub_checks\":",
            "\"sub_divergence\":0",
            "\"dirty_cells\":",
            "\"sub_latency\":",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    #[should_panic(expected = "duplicate engine label")]
    fn duplicate_labels_are_rejected() {
        let net = RoadNetwork::generate(&NetworkConfig::metro(100.0), 1);
        let sim = TrafficSimulator::new(net, 10, 1, 4, 0);
        let horizon = TimeHorizon::new(2, 2);
        let cfg = FrConfig {
            extent: 100.0,
            m: 20,
            horizon,
            buffer_pages: 16,
            threads: 1,
        };
        let _ = ServeDriver::new(sim, CostModel::PAPER_DEFAULT)
            .with_engine("fr", EngineSpec::Fr(cfg).build(0))
            .with_engine("fr", EngineSpec::Fr(cfg).build(0));
    }

    /// FR-only driver on a tiny 4-page buffer pool, so queries do real
    /// physical I/O. Fault plans only fire on physical reads and
    /// write-backs; a pool that fits the working set never faults.
    fn faulty_driver(n: usize) -> ServeDriver {
        let net = RoadNetwork::generate(&NetworkConfig::metro(200.0), 29);
        let sim = TrafficSimulator::new(net, n, 31, 4, 0);
        let fr = FrConfig {
            extent: 200.0,
            m: 40,
            horizon: TimeHorizon::new(4, 4),
            buffer_pages: 4,
            threads: 1,
        };
        ServeDriver::new(sim, CostModel::PAPER_DEFAULT)
            .with_engine("fr", EngineSpec::Fr(fr).build(0))
    }

    #[test]
    fn transient_read_faults_are_retried_to_an_exact_answer() {
        let mut d = faulty_driver(800);
        d.bootstrap();
        d.tick();
        d.tick();
        assert!(d.install_fault_plan("fr", FaultPlan::new(7).with_read_fault(1, 2)));
        let q = PdrQuery::new(6.0 / 400.0, 20.0, d.simulator().t_now());
        let truth = d.ground_truth(&q);
        let answers = d.query_all(&q, None);
        let load = &d.engines[0].load;
        assert!(load.retries >= 1, "transient faults must be retried");
        assert_eq!(load.degraded_queries, 0);
        assert_eq!(load.failed_queries, 0);
        assert!(d.engines[0].engine.fault_stats().read_faults >= 1);
        assert!(
            answers[0].symmetric_difference_area(&truth) < 1e-9,
            "a retried query must still be exact"
        );
    }

    #[test]
    fn persistent_read_faults_degrade_to_a_filter_only_answer() {
        let mut d = faulty_driver(800);
        d.bootstrap();
        d.tick();
        assert!(d.install_fault_plan("fr", FaultPlan::new(7).with_permanent_read_fault(1)));
        let q = PdrQuery::new(6.0 / 400.0, 20.0, d.simulator().t_now());
        let answers = d.query_all(&q, None);
        let load = &d.engines[0].load;
        assert!(
            load.degraded_queries >= 1,
            "a persistent fault must degrade, not panic or hang"
        );
        assert_eq!(load.failed_queries, 0, "FR has a DH filter-only fallback");
        // The degraded answer is the DH optimistic superset — possibly
        // empty, never a crash.
        assert_eq!(answers.len(), 1);
        // Every fault-plane key makes it into the metrics JSON.
        let json = d.run(0, &mix()).to_json();
        for key in [
            "\"retries\":",
            "\"recoveries\":",
            "\"degraded_queries\":",
            "\"failed_queries\":",
            "\"deadline_misses\":",
            "\"faults\":",
            "\"read_faults\":",
            "\"faults_injected\":",
            "\"recovery_us\":",
            "\"rejected_updates\":",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    fn torn_write_corruption_triggers_checkpoint_recovery() {
        let mut d = faulty_driver(800);
        d.bootstrap();
        d.enable_journal(1);
        d.tick();
        d.tick();
        assert!(d.install_fault_plan("fr", FaultPlan::new(7).with_torn_write(1, None)));
        // Queries page the tree through the tiny pool: a dirty eviction
        // writes back, the write is torn, and a later read of that page
        // fails its checksum. The serve loop must restore the latest
        // checkpoint, replay the WAL tail, and still answer exactly.
        let q = PdrQuery::new(6.0 / 400.0, 20.0, d.simulator().t_now());
        let mut recovered = false;
        for _ in 0..50 {
            let truth = d.ground_truth(&q);
            let answers = d.query_all(&q, None);
            assert!(
                answers[0].symmetric_difference_area(&truth) < 1e-9,
                "answers must stay exact through the recovery"
            );
            if d.engines[0].load.recoveries > 0 {
                recovered = true;
                break;
            }
        }
        assert!(recovered, "the torn write never surfaced as a recovery");
        let load = &d.engines[0].load;
        assert_eq!(load.degraded_queries, 0, "recovery must beat degradation");
        assert_eq!(load.failed_queries, 0);
        assert!(d.engines[0].recovery.snapshot().count >= 1);
        // The failed device's counters were banked before recovery
        // replaced it, so the report still shows what went wrong.
        let mut faults = d.engines[0].load.faults;
        faults += d.engines[0].engine.fault_stats();
        assert!(faults.crc_failures >= 1);
        assert!(faults.torn_writes >= 1);
    }

    #[test]
    fn ingest_crash_under_permanent_faults_recovers_from_the_journal() {
        let mut d = faulty_driver(800);
        d.bootstrap();
        d.enable_journal(1);
        d.tick();
        assert!(d.install_fault_plan("fr", FaultPlan::new(7).with_permanent_read_fault(1)));
        // Ingest reads through the infallible pool API, so the fault
        // surfaces as a panic mid-mutation — a simulated crash. The WAL
        // record was appended before the mutation ran, so the driver
        // must recover to exactly the state a clean apply would reach.
        let n = d.tick();
        assert!(n > 0, "the tick itself must still make progress");
        assert!(
            d.engines[0].load.recoveries >= 1,
            "the crashed ingest must recover from checkpoint + WAL"
        );
        // The restored engine is on a fresh device (no fault plan):
        // serving continues exactly.
        let q = PdrQuery::new(6.0 / 400.0, 20.0, d.simulator().t_now());
        let truth = d.ground_truth(&q);
        let answers = d.query_all(&q, None);
        assert!(answers[0].symmetric_difference_area(&truth) < 1e-9);
        assert_eq!(d.engines[0].load.degraded_queries, 0);
    }
}
