#!/usr/bin/env bash
# Repo verification: format, lints (best-effort offline), tier-1 build+test.
#
#   scripts/verify.sh                # everything
#   scripts/verify.sh --fast         # skip the release build
#   scripts/verify.sh --fault-matrix # only the fault-injection serve matrix
#   scripts/verify.sh --sharded-smoke # only the sharded serve smokes
#   scripts/verify.sh --serve-tcp-smoke # only the TCP front-end smoke
#   scripts/verify.sh --sub-smoke    # only the standing-subscription smoke
#   scripts/verify.sh --replica-smoke # only the log-shipping replica smoke
#   scripts/verify.sh --chaos-smoke  # only the failover/netfault chaos smoke
#   scripts/verify.sh --adaptive-smoke # only the adaptive-sharding smoke
#
# Clippy is best-effort: on a fully offline container a missing
# component must not mask real test failures, so its absence is
# reported but not fatal. Everything else is strict.
set -uo pipefail
cd "$(dirname "$0")/.."

fast=0
only_faults=0
only_sharded=0
only_tcp=0
only_sub=0
only_replica=0
only_chaos=0
only_adaptive=0
[ "${1:-}" = "--fast" ] && fast=1
[ "${1:-}" = "--fault-matrix" ] && only_faults=1
[ "${1:-}" = "--sharded-smoke" ] && only_sharded=1
[ "${1:-}" = "--serve-tcp-smoke" ] && only_tcp=1
[ "${1:-}" = "--sub-smoke" ] && only_sub=1
[ "${1:-}" = "--replica-smoke" ] && only_replica=1
[ "${1:-}" = "--chaos-smoke" ] && only_chaos=1
[ "${1:-}" = "--adaptive-smoke" ] && only_adaptive=1
fail=0

step() { printf '\n==> %s\n' "$*"; }

# 10-tick serve smoke under one canned fault plan. Fails on a nonzero
# exit (an unhandled panic aborts the process), on missing fault-plane
# keys in the metrics JSON, and on any extra per-plan grep assertions
# passed as "must-match regex" / "!forbidden regex" arguments.
fault_case() {
    plan="$1"; shift
    journal_flags=""
    case "$plan" in persistent-read) journal_flags="--journal 0";; esac
    out="$(mktemp /tmp/pdr-fault.XXXXXX.json)"
    # shellcheck disable=SC2086
    if ! target/release/pdrcli serve --objects 2000 --extent 500 --ticks 10 \
            --l 30 --count 12 --seed 11 --buffer-pages 8 $journal_flags \
            --fault-plan "plans/$plan.plan" --metrics "$out" >/dev/null 2>&1; then
        echo "FAIL: fault plan $plan: serve exited nonzero (panic?)"
        fail=1
        rm -f "$out"
        return
    fi
    for key in '"degraded_queries":' '"recoveries":' '"retries":' \
               '"failed_queries":' '"deadline_misses":' '"faults":' \
               '"recovery_us":' '"faults_injected":'; do
        if ! grep -qF "$key" "$out"; then
            echo "FAIL: fault plan $plan: metrics JSON lacks $key"
            fail=1
        fi
    done
    for assertion in "$@"; do
        case "$assertion" in
            '!'*)
                if grep -qE "${assertion#!}" "$out"; then
                    echo "FAIL: fault plan $plan: metrics match forbidden ${assertion#!}"
                    fail=1
                fi
                ;;
            *)
                if ! grep -qE "$assertion" "$out"; then
                    echo "FAIL: fault plan $plan: metrics lack $assertion"
                    fail=1
                fi
                ;;
        esac
    done
    rm -f "$out"
}

fault_matrix() {
    step "fault-injection serve matrix (plans/*.plan, 10 ticks each)"
    if ! cargo build --release -p pdr-cli; then
        echo "FAIL: pdr-cli release build"
        fail=1
        return
    fi
    # Clean plan: nothing injected, nothing degraded.
    fault_case clean '"faults_injected":0' '!"degraded_queries":[1-9]'
    # Transient reads: retried to exact answers, never degraded.
    fault_case transient-reads '!"degraded_queries":[1-9]'
    # Torn write: detected via CRC and recovered from checkpoint + WAL.
    fault_case torn-write '"recoveries":[1-9]' '!"degraded_queries":[1-9]'
    # Persistent device failure without a journal: degraded, not dead.
    fault_case persistent-read '"degraded_queries":[1-9]'
}

# Sharded serve plane: a clean 2x2 run must emit the per-shard metrics
# block (one entry per shard, private WAL segments, no degradation),
# and a persistent fault — scoped to shard 0 by the router — must stay
# confined to that shard while the plane keeps serving every query.
# (A plan armed before the serve loop fires on the ingest path and is
# handled by the driver's crash protocol before any query runs, so the
# query-path "exactly one shard degrades" invariant is pinned by the
# crates/core/tests/shard_faults.rs integration test instead.)
sharded_smoke() {
    step "sharded serve smoke (--shards 2x2, 10 ticks)"
    if ! cargo build --release -p pdr-cli; then
        echo "FAIL: pdr-cli release build"
        fail=1
        return
    fi
    out="$(mktemp /tmp/pdr-sharded.XXXXXX.json)"
    if ! target/release/pdrcli serve --objects 800 --extent 400 --ticks 10 \
            --l 20 --count 8 --seed 11 --shards 2x2 --metrics "$out" >/dev/null; then
        echo "FAIL: sharded serve exited nonzero"
        fail=1
    else
        for key in '"shards":[' '"shard":0' '"shard":3' \
                   '"segment":"journal.seg0003.wal"' '"tile":[' \
                   '"wal_records":' '"updates_applied":'; do
            if ! grep -qF "$key" "$out"; then
                echo "FAIL: sharded metrics JSON lacks $key"
                fail=1
            fi
        done
        if grep -qF '"degraded":true' "$out"; then
            echo "FAIL: clean sharded run reports a degraded shard"
            fail=1
        fi
    fi
    rm -f "$out"

    step "sharded fault smoke (persistent fault confined to one shard)"
    out="$(mktemp /tmp/pdr-sharded-fault.XXXXXX.json)"
    if ! target/release/pdrcli serve --objects 2000 --extent 500 --ticks 10 \
            --l 30 --count 12 --seed 11 --buffer-pages 8 --journal 0 \
            --shards 2x2 --fault-plan plans/persistent-read.plan \
            --metrics "$out" >/dev/null 2>&1; then
        echo "FAIL: sharded fault serve exited nonzero (panic?)"
        fail=1
    else
        # Exactly one shard (fr's shard 0) absorbs the injected fault;
        # every other per-shard "faults" counter stays 0.
        faulted="$(grep -oE '"faults":[0-9]+' "$out" | grep -cv '"faults":0')"
        if [ "$faulted" != "1" ]; then
            echo "FAIL: expected the fault confined to 1 shard, got $faulted"
            fail=1
        fi
        # The plane degrades gracefully and never drops a query.
        if ! grep -qE '"degraded_queries":[1-9]' "$out"; then
            echo "FAIL: persistent sharded fault did not degrade serving"
            fail=1
        fi
        if grep -qE '"failed_queries":[1-9]' "$out"; then
            echo "FAIL: sharded fault run dropped queries"
            fail=1
        fi
    fi
    rm -f "$out"
}

# TCP front-end smoke: bind an ephemeral port, drive 10 ticks of
# oracle-checked queries through a scripted client, then shut down via
# the protocol op. Fails on a non-exact answer (the client asserts),
# missing metrics keys, failed queries, a dirty exit, or any leaked
# connection/executor worker thread in the closing summary.
serve_tcp_smoke() {
    step "TCP serve smoke (serve --listen + scripted client, 10 ticks)"
    if ! cargo build --release -p pdr-cli; then
        echo "FAIL: pdr-cli release build"
        fail=1
        return
    fi
    portfile="$(mktemp /tmp/pdr-port.XXXXXX)"
    serverlog="$(mktemp /tmp/pdr-tcp-server.XXXXXX.log)"
    clientlog="$(mktemp /tmp/pdr-tcp-client.XXXXXX.log)"
    rm -f "$portfile"
    # --deadline-ms 5000: the 250 ms default budget assumes a multi-core
    # host; the smoke pins correctness and clean shutdown, not latency.
    # --ticks is unused in listen mode (clients drive ticks over the
    # wire) but still validated, so pass the minimum.
    target/release/pdrcli serve --objects 800 --extent 400 --ticks 1 \
        --l 20 --count 8 --seed 11 \
        --listen 127.0.0.1:0 --port-file "$portfile" --deadline-ms 5000 \
        >"$serverlog" 2>&1 &
    server=$!
    for _ in $(seq 1 150); do
        [ -s "$portfile" ] && break
        sleep 0.1
    done
    if [ ! -s "$portfile" ]; then
        echo "FAIL: TCP serve never wrote its port file"
        fail=1
        kill "$server" 2>/dev/null
        wait "$server" 2>/dev/null
        rm -f "$portfile" "$serverlog" "$clientlog"
        return
    fi
    if ! target/release/pdrcli client --connect "$(cat "$portfile")" \
            --ticks 10 --queries 4 --l 20 --count 8 >"$clientlog" 2>&1; then
        echo "FAIL: TCP client exited nonzero"
        sed 's/^/  client: /' "$clientlog"
        fail=1
    else
        if ! grep -qF 'all exact' "$clientlog"; then
            echo "FAIL: TCP client did not confirm exact answers"
            fail=1
        fi
        # The client relays the server's metrics op verbatim; the dump
        # must carry the executor and admission-queue telemetry.
        for key in '"pool_workers":' '"queue_depth":' '"served":' \
                   '"rejected_admissions":' '"deadline_misses":' \
                   '"exec":' '"steals":' '"parked_us":'; do
            if ! grep -qF "$key" "$clientlog"; then
                echo "FAIL: TCP metrics relay lacks $key"
                fail=1
            fi
        done
    fi
    # The client's shutdown op must bring the server down by itself.
    server_alive=1
    for _ in $(seq 1 150); do
        if ! kill -0 "$server" 2>/dev/null; then
            server_alive=0
            break
        fi
        sleep 0.1
    done
    if [ "$server_alive" -eq 1 ]; then
        echo "FAIL: TCP server still running after protocol shutdown"
        kill -9 "$server" 2>/dev/null
        fail=1
    fi
    wait "$server" 2>/dev/null
    rc=$?
    if [ "$rc" -ne 0 ]; then
        echo "FAIL: TCP server exited nonzero ($rc)"
        sed 's/^/  server: /' "$serverlog"
        fail=1
    fi
    for key in '"shutdown":true' '"leaked_workers":0' '"failed_queries":0'; do
        if ! grep -qF "$key" "$serverlog"; then
            echo "FAIL: TCP shutdown summary lacks $key"
            fail=1
        fi
    done
    rm -f "$portfile" "$serverlog" "$clientlog"
}

# Standing-subscription smoke: a 10-tick TCP serve with 8 standing
# subscriptions registered over the wire. The client reconstructs each
# subscription's answer purely by replaying polled deltas and checks it
# bit-identically against a from-scratch query (clipped client-side)
# after every tick; the closing summary must report zero leaked
# workers. Fails on a lost/degraded delta stream, any divergence, a
# dirty exit, or a leaked thread.
sub_smoke() {
    step "subscription smoke (serve --listen + client --subs 8, 10 ticks)"
    if ! cargo build --release -p pdr-cli; then
        echo "FAIL: pdr-cli release build"
        fail=1
        return
    fi
    portfile="$(mktemp /tmp/pdr-sub-port.XXXXXX)"
    serverlog="$(mktemp /tmp/pdr-sub-server.XXXXXX.log)"
    clientlog="$(mktemp /tmp/pdr-sub-client.XXXXXX.log)"
    rm -f "$portfile"
    target/release/pdrcli serve --objects 600 --extent 400 --ticks 1 \
        --l 25 --count 8 --seed 11 \
        --listen 127.0.0.1:0 --port-file "$portfile" --deadline-ms 5000 \
        >"$serverlog" 2>&1 &
    server=$!
    for _ in $(seq 1 150); do
        [ -s "$portfile" ] && break
        sleep 0.1
    done
    if [ ! -s "$portfile" ]; then
        echo "FAIL: subscription serve never wrote its port file"
        fail=1
        kill "$server" 2>/dev/null
        wait "$server" 2>/dev/null
        rm -f "$portfile" "$serverlog" "$clientlog"
        return
    fi
    if ! target/release/pdrcli client --connect "$(cat "$portfile")" \
            --ticks 10 --queries 2 --subs 8 --extent 400 --l 25 --count 8 \
            >"$clientlog" 2>&1; then
        echo "FAIL: subscription client exited nonzero"
        sed 's/^/  client: /' "$clientlog"
        fail=1
    else
        if ! grep -qF '"subs_exact":true' "$clientlog"; then
            echo "FAIL: replayed deltas diverged from from-scratch answers"
            sed 's/^/  client: /' "$clientlog"
            fail=1
        fi
        if ! grep -qF 'all exact' "$clientlog"; then
            echo "FAIL: subscription client did not confirm exact queries"
            fail=1
        fi
        if ! grep -qE '"wire_subs":[0-9]' "$clientlog"; then
            echo "FAIL: metrics relay lacks the wire_subs gauge"
            fail=1
        fi
    fi
    server_alive=1
    for _ in $(seq 1 150); do
        if ! kill -0 "$server" 2>/dev/null; then
            server_alive=0
            break
        fi
        sleep 0.1
    done
    if [ "$server_alive" -eq 1 ]; then
        echo "FAIL: subscription server still running after shutdown"
        kill -9 "$server" 2>/dev/null
        fail=1
    fi
    wait "$server" 2>/dev/null
    rc=$?
    if [ "$rc" -ne 0 ]; then
        echo "FAIL: subscription server exited nonzero ($rc)"
        sed 's/^/  server: /' "$serverlog"
        fail=1
    fi
    for key in '"shutdown":true' '"leaked_workers":0' '"failed_queries":0'; do
        if ! grep -qF "$key" "$serverlog"; then
            echo "FAIL: subscription shutdown summary lacks $key"
            fail=1
        fi
    done
    rm -f "$portfile" "$serverlog" "$clientlog"
}

# Log-shipping replica smoke: a 2x2 sharded primary plus a read
# replica front-end (`serve --replica-of`), both on ephemeral ports.
# The client drives 10 ticks against the primary and, after every
# tick, issues `sync` on the replica and cross-checks timestamps and
# full region rectangles of identical probes on both planes — any
# divergence aborts the client. Fails on a divergent answer, a missing
# replica metrics block, a dirty exit, or a leaked thread on either
# server.
replica_smoke() {
    step "replica smoke (primary --shards 2x2 + serve --replica-of, 10 ticks)"
    if ! cargo build --release -p pdr-cli; then
        echo "FAIL: pdr-cli release build"
        fail=1
        return
    fi
    pport="$(mktemp /tmp/pdr-primary-port.XXXXXX)"
    rport="$(mktemp /tmp/pdr-replica-port.XXXXXX)"
    plog="$(mktemp /tmp/pdr-primary.XXXXXX.log)"
    rlog="$(mktemp /tmp/pdr-replica.XXXXXX.log)"
    clientlog="$(mktemp /tmp/pdr-replica-client.XXXXXX.log)"
    rm -f "$pport" "$rport"
    target/release/pdrcli serve --objects 800 --extent 400 --ticks 1 \
        --l 20 --count 8 --seed 11 --shards 2x2 \
        --listen 127.0.0.1:0 --port-file "$pport" --deadline-ms 5000 \
        >"$plog" 2>&1 &
    primary=$!
    for _ in $(seq 1 150); do
        [ -s "$pport" ] && break
        sleep 0.1
    done
    if [ ! -s "$pport" ]; then
        echo "FAIL: replica smoke: primary never wrote its port file"
        fail=1
        kill "$primary" 2>/dev/null
        wait "$primary" 2>/dev/null
        rm -f "$pport" "$rport" "$plog" "$rlog" "$clientlog"
        return
    fi
    target/release/pdrcli serve --objects 800 --extent 400 --ticks 1 \
        --l 20 --count 8 --seed 11 --shards 2x2 \
        --replica-of "$(cat "$pport")" \
        --listen 127.0.0.1:0 --port-file "$rport" --deadline-ms 5000 \
        >"$rlog" 2>&1 &
    replica=$!
    for _ in $(seq 1 150); do
        [ -s "$rport" ] && break
        sleep 0.1
    done
    if [ ! -s "$rport" ]; then
        echo "FAIL: replica smoke: replica never wrote its port file"
        sed 's/^/  replica: /' "$rlog"
        fail=1
        kill "$primary" "$replica" 2>/dev/null
        wait "$primary" "$replica" 2>/dev/null
        rm -f "$pport" "$rport" "$plog" "$rlog" "$clientlog"
        return
    fi
    if ! target/release/pdrcli client --connect "$(cat "$pport")" \
            --replica "$(cat "$rport")" \
            --ticks 10 --queries 4 --l 20 --count 8 >"$clientlog" 2>&1; then
        echo "FAIL: replica client exited nonzero"
        sed 's/^/  client: /' "$clientlog"
        fail=1
    else
        if ! grep -qF '"replica_exact":true' "$clientlog"; then
            echo "FAIL: client did not confirm bit-identical replica answers"
            sed 's/^/  client: /' "$clientlog"
            fail=1
        fi
        # The relayed replica metrics must show a caught-up replica
        # that bootstrapped exactly once.
        for key in '"replica_lag":0' '"bootstraps":1'; do
            if ! grep -qF "$key" "$clientlog"; then
                echo "FAIL: replica metrics relay lacks $key"
                fail=1
            fi
        done
    fi
    # The client shuts down the replica first, then the primary.
    for pair in "replica:$replica:$rlog" "primary:$primary:$plog"; do
        name="${pair%%:*}"; rest="${pair#*:}"
        pid="${rest%%:*}"; log="${rest#*:}"
        alive=1
        for _ in $(seq 1 150); do
            if ! kill -0 "$pid" 2>/dev/null; then
                alive=0
                break
            fi
            sleep 0.1
        done
        if [ "$alive" -eq 1 ]; then
            echo "FAIL: $name still running after protocol shutdown"
            kill -9 "$pid" 2>/dev/null
            fail=1
        fi
        wait "$pid" 2>/dev/null
        rc=$?
        if [ "$rc" -ne 0 ]; then
            echo "FAIL: $name exited nonzero ($rc)"
            sed "s/^/  $name: /" "$log"
            fail=1
        fi
        for key in '"shutdown":true' '"leaked_workers":0'; do
            if ! grep -qF "$key" "$log"; then
                echo "FAIL: $name shutdown summary lacks $key"
                fail=1
            fi
        done
    done
    rm -f "$pport" "$rport" "$plog" "$rlog" "$clientlog"
}

# Chaos smoke: primary + replica under the lossy-net fault plan. Phase
# 1 drives 5 ticks with per-tick replica syncs and bit-identical
# cross-checks, leaving both servers open. The primary is then killed
# with SIGKILL (no shutdown protocol, no flush) and phase 2 reconnects
# with `--failover`: the client walks to the replica, promotes it, and
# keeps getting exact answers from the new primary — every update
# acknowledged before the crash survives, under duplicated and delayed
# frames the whole time. Fails on a divergent or inexact answer, a
# client that cannot fail over, missing netfault counters, a dirty
# replica exit, or a leaked thread on the survivor.
chaos_smoke() {
    step "chaos smoke (lossy net, SIGKILL primary, failover to promoted replica)"
    if ! cargo build --release -p pdr-cli; then
        echo "FAIL: pdr-cli release build"
        fail=1
        return
    fi
    pport="$(mktemp /tmp/pdr-chaos-pport.XXXXXX)"
    rport="$(mktemp /tmp/pdr-chaos-rport.XXXXXX)"
    plog="$(mktemp /tmp/pdr-chaos-primary.XXXXXX.log)"
    rlog="$(mktemp /tmp/pdr-chaos-replica.XXXXXX.log)"
    c1log="$(mktemp /tmp/pdr-chaos-client1.XXXXXX.log)"
    c2log="$(mktemp /tmp/pdr-chaos-client2.XXXXXX.log)"
    rm -f "$pport" "$rport"
    target/release/pdrcli serve --objects 800 --extent 400 --ticks 1 \
        --l 20 --count 8 --seed 11 --shards 2x2 \
        --net-fault-plan plans/lossy-net.plan \
        --listen 127.0.0.1:0 --port-file "$pport" --deadline-ms 5000 \
        >"$plog" 2>&1 &
    primary=$!
    for _ in $(seq 1 150); do
        [ -s "$pport" ] && break
        sleep 0.1
    done
    if [ ! -s "$pport" ]; then
        echo "FAIL: chaos smoke: primary never wrote its port file"
        fail=1
        kill -9 "$primary" 2>/dev/null
        wait "$primary" 2>/dev/null
        rm -f "$pport" "$rport" "$plog" "$rlog" "$c1log" "$c2log"
        return
    fi
    target/release/pdrcli serve --objects 800 --extent 400 --ticks 1 \
        --l 20 --count 8 --seed 11 --shards 2x2 \
        --replica-of "$(cat "$pport")" \
        --listen 127.0.0.1:0 --port-file "$rport" --deadline-ms 5000 \
        >"$rlog" 2>&1 &
    replica=$!
    for _ in $(seq 1 150); do
        [ -s "$rport" ] && break
        sleep 0.1
    done
    if [ ! -s "$rport" ]; then
        echo "FAIL: chaos smoke: replica never wrote its port file"
        sed 's/^/  replica: /' "$rlog"
        fail=1
        kill -9 "$primary" "$replica" 2>/dev/null
        wait "$primary" "$replica" 2>/dev/null
        rm -f "$pport" "$rport" "$plog" "$rlog" "$c1log" "$c2log"
        return
    fi
    # Phase 1: ticks + per-tick replica sync under the lossy plan;
    # --keep-open leaves both servers running for the crash.
    if ! target/release/pdrcli client --connect "$(cat "$pport")" \
            --replica "$(cat "$rport")" --keep-open \
            --ticks 5 --queries 4 --l 20 --count 8 >"$c1log" 2>&1; then
        echo "FAIL: chaos phase-1 client exited nonzero"
        sed 's/^/  client: /' "$c1log"
        fail=1
    else
        if ! grep -qF '"replica_exact":true' "$c1log"; then
            echo "FAIL: chaos phase 1 lost bit-identity under the lossy net"
            fail=1
        fi
        if ! grep -qF 'all exact' "$c1log"; then
            echo "FAIL: chaos phase-1 client did not confirm exact answers"
            fail=1
        fi
        # The primary's metrics relay must show the injection plane
        # actually firing (delays and duplicates under lossy-net.plan).
        if ! grep -qE '"netfaults":\{"frames":[1-9]' "$c1log"; then
            echo "FAIL: chaos phase 1 metrics show no injected frames"
            fail=1
        fi
        if ! grep -qE '"duplicates":[1-9]' "$c1log"; then
            echo "FAIL: chaos phase 1 injected no duplicate frames"
            fail=1
        fi
        # lossy-net.plan also drops whole response frames permanently
        # (every=11): the client's bounded read-timeout-and-retry path
        # must actually have been exercised.
        if ! grep -qE '"drops":[1-9]' "$c1log"; then
            echo "FAIL: chaos phase 1 dropped no response frames"
            fail=1
        fi
    fi
    # Crash: no shutdown op, no flush — the primary just dies.
    kill -9 "$primary" 2>/dev/null
    wait "$primary" 2>/dev/null
    # Phase 2: the dead primary is still first in the target list; the
    # client must walk to the replica, promote it, and keep serving
    # exact answers (every acked pre-crash update survives).
    if ! target/release/pdrcli client --connect "$(cat "$pport")" \
            --failover "$(cat "$rport")" \
            --ticks 5 --queries 4 --l 20 --count 8 >"$c2log" 2>&1; then
        echo "FAIL: chaos phase-2 client exited nonzero"
        sed 's/^/  client: /' "$c2log"
        fail=1
    else
        if ! grep -qF 'all exact' "$c2log"; then
            echo "FAIL: promoted replica served inexact answers"
            sed 's/^/  client: /' "$c2log"
            fail=1
        fi
        if ! grep -qE '"failovers":[1-9]' "$c2log"; then
            echo "FAIL: chaos phase-2 client reports no failover"
            fail=1
        fi
        # The survivor's metrics must show the promoted role and epoch.
        if ! grep -qE '"repl_epoch":[2-9]' "$c2log"; then
            echo "FAIL: promoted replica metrics lack the bumped epoch"
            fail=1
        fi
    fi
    # Phase 2 shut the promoted replica down via the protocol op.
    alive=1
    for _ in $(seq 1 150); do
        if ! kill -0 "$replica" 2>/dev/null; then
            alive=0
            break
        fi
        sleep 0.1
    done
    if [ "$alive" -eq 1 ]; then
        echo "FAIL: promoted replica still running after protocol shutdown"
        kill -9 "$replica" 2>/dev/null
        fail=1
    fi
    wait "$replica" 2>/dev/null
    rc=$?
    if [ "$rc" -ne 0 ]; then
        echo "FAIL: promoted replica exited nonzero ($rc)"
        sed 's/^/  replica: /' "$rlog"
        fail=1
    fi
    for key in '"shutdown":true' '"leaked_workers":0'; do
        if ! grep -qF "$key" "$rlog"; then
            echo "FAIL: promoted replica shutdown summary lacks $key"
            fail=1
        fi
    done
    rm -f "$pport" "$rport" "$plog" "$rlog" "$c1log" "$c2log"
}

# Adaptive-sharding smoke: a 1x1 adaptive primary whose policy splits
# on its own (800 objects > the 200 threshold), plus a forced
# `rebalance` split and merge over the wire — answers must stay exact
# through every cutover, the partition metrics must show both
# topology-change directions, and shutdown must leak nothing.
adaptive_smoke() {
    step "adaptive smoke (serve --adaptive + client --rebalance, 10 ticks)"
    if ! cargo build --release -p pdr-cli; then
        echo "FAIL: pdr-cli release build"
        fail=1
        return
    fi
    portfile="$(mktemp /tmp/pdr-adaptive-port.XXXXXX)"
    serverlog="$(mktemp /tmp/pdr-adaptive-server.XXXXXX.log)"
    clientlog="$(mktemp /tmp/pdr-adaptive-client.XXXXXX.log)"
    rm -f "$portfile"
    target/release/pdrcli serve --objects 800 --extent 400 --ticks 1 \
        --l 20 --count 8 --seed 11 --shards 1x1 --adaptive \
        --split-threshold 200 --merge-threshold 40 \
        --listen 127.0.0.1:0 --port-file "$portfile" --deadline-ms 5000 \
        >"$serverlog" 2>&1 &
    server=$!
    for _ in $(seq 1 150); do
        [ -s "$portfile" ] && break
        sleep 0.1
    done
    if [ ! -s "$portfile" ]; then
        echo "FAIL: adaptive smoke: server never wrote its port file"
        fail=1
        kill -9 "$server" 2>/dev/null
        wait "$server" 2>/dev/null
        rm -f "$portfile" "$serverlog" "$clientlog"
        return
    fi
    if ! target/release/pdrcli client --connect "$(cat "$portfile")" \
            --rebalance --ticks 10 --queries 4 --l 20 --count 8 \
            >"$clientlog" 2>&1; then
        echo "FAIL: adaptive client exited nonzero"
        sed 's/^/  client: /' "$clientlog"
        fail=1
    else
        if ! grep -qF 'all exact' "$clientlog"; then
            echo "FAIL: adaptive client did not confirm exact answers"
            fail=1
        fi
        for key in '"rebalance":"split"' '"rebalance":"merge"'; do
            if ! grep -qF "$key" "$clientlog"; then
                echo "FAIL: adaptive client never drove $key"
                fail=1
            fi
        done
        # The metrics relay must carry the partition tree with both
        # topology-change directions counted.
        if ! grep -qF '"partition":{"epoch":' "$clientlog"; then
            echo "FAIL: adaptive metrics lack the partition block"
            fail=1
        fi
        if ! grep -qE '"splits":[1-9]' "$clientlog"; then
            echo "FAIL: adaptive metrics show no splits"
            fail=1
        fi
        if ! grep -qE '"merges":[1-9]' "$clientlog"; then
            echo "FAIL: adaptive metrics show no merges"
            fail=1
        fi
        if ! grep -qF '"adaptive":true' "$clientlog"; then
            echo "FAIL: adaptive metrics do not mark the policy"
            fail=1
        fi
    fi
    server_alive=1
    for _ in $(seq 1 150); do
        if ! kill -0 "$server" 2>/dev/null; then
            server_alive=0
            break
        fi
        sleep 0.1
    done
    if [ "$server_alive" -eq 1 ]; then
        echo "FAIL: adaptive server still running after protocol shutdown"
        kill -9 "$server" 2>/dev/null
        fail=1
    fi
    wait "$server" 2>/dev/null
    rc=$?
    if [ "$rc" -ne 0 ]; then
        echo "FAIL: adaptive server exited nonzero ($rc)"
        sed 's/^/  server: /' "$serverlog"
        fail=1
    fi
    for key in '"shutdown":true' '"leaked_workers":0' '"failed_queries":0'; do
        if ! grep -qF "$key" "$serverlog"; then
            echo "FAIL: adaptive shutdown summary lacks $key"
            fail=1
        fi
    done
    rm -f "$portfile" "$serverlog" "$clientlog"
}

if [ "$only_adaptive" -eq 1 ]; then
    adaptive_smoke
    if [ "$fail" -ne 0 ]; then
        echo
        echo "verify: FAILED"
        exit 1
    fi
    echo
    echo "verify: OK"
    exit 0
fi

if [ "$only_chaos" -eq 1 ]; then
    chaos_smoke
    if [ "$fail" -ne 0 ]; then
        echo
        echo "verify: FAILED"
        exit 1
    fi
    echo
    echo "verify: OK"
    exit 0
fi

if [ "$only_replica" -eq 1 ]; then
    replica_smoke
    if [ "$fail" -ne 0 ]; then
        echo
        echo "verify: FAILED"
        exit 1
    fi
    echo
    echo "verify: OK"
    exit 0
fi

if [ "$only_sub" -eq 1 ]; then
    sub_smoke
    if [ "$fail" -ne 0 ]; then
        echo
        echo "verify: FAILED"
        exit 1
    fi
    echo
    echo "verify: OK"
    exit 0
fi

if [ "$only_tcp" -eq 1 ]; then
    serve_tcp_smoke
    if [ "$fail" -ne 0 ]; then
        echo
        echo "verify: FAILED"
        exit 1
    fi
    echo
    echo "verify: OK"
    exit 0
fi

if [ "$only_sharded" -eq 1 ]; then
    sharded_smoke
    if [ "$fail" -ne 0 ]; then
        echo
        echo "verify: FAILED"
        exit 1
    fi
    echo
    echo "verify: OK"
    exit 0
fi

if [ "$only_faults" -eq 1 ]; then
    fault_matrix
    if [ "$fail" -ne 0 ]; then
        echo
        echo "verify: FAILED"
        exit 1
    fi
    echo
    echo "verify: OK"
    exit 0
fi

step "cargo fmt --check"
if ! cargo fmt --all -- --check; then
    echo "FAIL: formatting (run 'cargo fmt --all')"
    fail=1
fi

step "cargo clippy (best-effort)"
if cargo clippy --version >/dev/null 2>&1; then
    if ! cargo clippy --workspace --all-targets -- -D warnings; then
        echo "FAIL: clippy"
        fail=1
    fi
else
    echo "clippy unavailable in this toolchain; skipping"
fi

if [ "$fast" -eq 0 ]; then
    step "cargo build --release (tier-1)"
    if ! cargo build --release; then
        echo "FAIL: release build"
        fail=1
    fi

    step "pdrcli serve --metrics smoke (10 ticks)"
    # The root package build above does not cover pdr-cli (the root
    # manifest is the facade package); build the binary explicitly.
    if ! cargo build --release -p pdr-cli; then
        echo "FAIL: pdr-cli release build"
        fail=1
    fi
    metrics_json="$(mktemp /tmp/pdr-metrics.XXXXXX.json)"
    if ! target/release/pdrcli serve --objects 800 --extent 400 --ticks 10 \
            --l 20 --count 8 --seed 11 --metrics "$metrics_json" >/dev/null; then
        echo "FAIL: pdrcli serve --metrics exited nonzero"
        fail=1
    else
        # The dump must carry the full observability schema: driver tick
        # timings, per-engine latency quantiles, FR stage timings, PA
        # branch-and-bound counters, and the accuracy poisoning guard.
        for key in '"ticks":10' '"tick_ingest_us":' '"tick_query_us":' \
                   '"engines":[' '"latency_us":' '"p99_us":' '"stages":' \
                   '"classify":' '"bnb_expanded":' '"unbounded_r_fp":' \
                   '"queries_served":' '"physical_ios":'; do
            if ! grep -qF "$key" "$metrics_json"; then
                echo "FAIL: metrics JSON lacks $key"
                fail=1
            fi
        done
    fi
    rm -f "$metrics_json"

    sharded_smoke
    fault_matrix
    serve_tcp_smoke
    sub_smoke
    replica_smoke
    chaos_smoke
    adaptive_smoke
fi

step "cargo test -q (tier-1)"
if ! cargo test -q; then
    echo "FAIL: tier-1 tests"
    fail=1
fi

step "cargo test -q --workspace"
if ! cargo test -q --workspace; then
    echo "FAIL: workspace tests"
    fail=1
fi

if [ "$fail" -ne 0 ]; then
    echo
    echo "verify: FAILED"
    exit 1
fi
echo
echo "verify: OK"
