#!/usr/bin/env bash
# Repo verification: format, lints (best-effort offline), tier-1 build+test.
#
#   scripts/verify.sh          # everything
#   scripts/verify.sh --fast   # skip the release build
#
# Clippy is best-effort: on a fully offline container a missing
# component must not mask real test failures, so its absence is
# reported but not fatal. Everything else is strict.
set -uo pipefail
cd "$(dirname "$0")/.."

fast=0
[ "${1:-}" = "--fast" ] && fast=1
fail=0

step() { printf '\n==> %s\n' "$*"; }

step "cargo fmt --check"
if ! cargo fmt --all -- --check; then
    echo "FAIL: formatting (run 'cargo fmt --all')"
    fail=1
fi

step "cargo clippy (best-effort)"
if cargo clippy --version >/dev/null 2>&1; then
    if ! cargo clippy --workspace --all-targets -- -D warnings; then
        echo "FAIL: clippy"
        fail=1
    fi
else
    echo "clippy unavailable in this toolchain; skipping"
fi

if [ "$fast" -eq 0 ]; then
    step "cargo build --release (tier-1)"
    if ! cargo build --release; then
        echo "FAIL: release build"
        fail=1
    fi
fi

step "cargo test -q (tier-1)"
if ! cargo test -q; then
    echo "FAIL: tier-1 tests"
    fail=1
fi

step "cargo test -q --workspace"
if ! cargo test -q --workspace; then
    echo "FAIL: workspace tests"
    fail=1
fi

if [ "$fail" -ne 0 ]; then
    echo
    echo "verify: FAILED"
    exit 1
fi
echo
echo "verify: OK"
